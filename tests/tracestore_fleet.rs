//! Cross-crate contract tests for the columnar trace store: sessions and
//! fleets ingest through the platform's observer plumbing, merged fleet
//! stores are independent of how rayon sharded the replications, and the
//! store agrees with the JSONL sink it replaces on what happened.

use scan::platform::config::{ScanConfig, VariableParams};
use scan::platform::fleet::{run_fleet_replicated_with, run_fleet_with, FleetConfig};
use scan::platform::session::run_session_with;
use scan::sched::scaling::ScalingPolicy;
use scan::sim::{JsonlWriter, Merge, Observer};
use scan::tracestore::{Agg, EventKind, Query, TraceStore, TraceStoreFactory};

fn session_cfg() -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 7);
    cfg.fixed.sim_time_tu = 120.0;
    cfg
}

fn fleet_cfg(tenants: u16) -> FleetConfig {
    let mut cfg = FleetConfig::new(session_cfg(), tenants);
    cfg.jobs_per_tenant = 3;
    cfg.shared_private_cores = cfg.shared_private_cores.max(u32::from(tenants) * 2);
    cfg
}

/// The merged fleet store must be bit-identical whether the replications
/// ran through rayon or a plain sequential loop — the in-process face of
/// the CI gate that diffs `RAYON_NUM_THREADS=1` vs `8` exports.
#[test]
fn merged_fleet_store_is_schedule_invariant() {
    let cfg = fleet_cfg(3);
    let reps = 3;
    let factory = TraceStoreFactory::fleet(u64::from(cfg.tenants));

    let (par_metrics, par_store) = run_fleet_replicated_with(&cfg, reps, &factory);

    let mut seq_metrics = Vec::new();
    let mut seq_store: Option<TraceStore> = None;
    for rep in 0..reps {
        let (m, summaries) = run_fleet_with(&cfg, rep, &factory);
        seq_metrics.push(m);
        for s in summaries {
            match seq_store.as_mut() {
                None => seq_store = Some(s),
                Some(acc) => acc.merge(s),
            }
        }
    }
    let seq_store = seq_store.expect("at least one tenant session ran");

    assert_eq!(par_metrics, seq_metrics, "fleet metrics must not depend on threads");
    assert!(par_store.events() > 0, "the fleet must ingest events");
    assert_eq!(
        par_store.to_bytes(),
        seq_store.to_bytes(),
        "merged store exports must be byte-identical regardless of scheduling"
    );
    assert_eq!(par_store.digest(), seq_store.digest());
}

/// Tenant stamping survives the merge: every tenant of every repetition
/// contributes rows under its own tenant id, queryable after the fact.
#[test]
fn merged_fleet_store_stays_per_tenant_queryable() {
    let cfg = fleet_cfg(3);
    let factory = TraceStoreFactory::fleet(u64::from(cfg.tenants));
    let (_, store) = run_fleet_replicated_with(&cfg, 2, &factory);

    let per_tenant = Query::over(EventKind::JobCompleted)
        .group_by("tenant")
        .count()
        .run(&store)
        .expect("tenant is an implicit column on every kind");
    assert_eq!(per_tenant.len(), 3, "all three tenants must complete jobs");
    for (i, row) in per_tenant.iter().enumerate() {
        assert_eq!(row.group.as_deref(), Some(i.to_string().as_str()));
        assert!(row.value > 0.0);
    }
}

/// The store and the JSONL sink observe the same stream: same event
/// count, and the store's aggregate answers match scalar math over the
/// session's JSONL lines.
#[test]
fn store_agrees_with_the_jsonl_sink() {
    struct Both {
        store: TraceStore,
        jsonl: JsonlWriter<Vec<u8>>,
    }
    impl Observer for Both {
        fn on_event(&mut self, at: scan::sim::SimTime, event: &scan::sim::TraceEvent) {
            self.store.on_event(at, event);
            self.jsonl.on_event(at, event);
        }
    }

    let cfg = session_cfg();
    let both = Both { store: TraceStore::new(), jsonl: JsonlWriter::new(Vec::new()) };
    let (_, both) = run_session_with(&cfg, 0, both);
    let lines: Vec<&str> = {
        let bytes = both.jsonl.into_inner();
        let text = Box::leak(String::from_utf8(bytes).expect("JSONL is UTF-8").into_boxed_str());
        text.lines().collect()
    };
    assert_eq!(both.store.events(), lines.len() as u64, "one JSONL line per stored event");

    let dispatched = lines.iter().filter(|l| l.contains("\"kind\":\"subtask_dispatched\"")).count();
    let rows = Query::over(EventKind::SubtaskDispatched)
        .count()
        .run(&both.store)
        .expect("count needs no declared columns");
    assert_eq!(rows[0].value, dispatched as f64);

    // The export is dramatically smaller than the JSONL for the same
    // stream (the full ≥5x criterion is measured on fig4 artefacts by
    // scripts/bench.sh; this is the in-process sanity floor).
    let jsonl_len: usize = lines.iter().map(|l| l.len() + 1).sum();
    let scts_len = both.store.to_bytes().len();
    assert!(
        scts_len * 3 < jsonl_len,
        "SCTS export ({scts_len} B) should be well under a third of the JSONL ({jsonl_len} B)"
    );
}

/// A queryable assertion that previously required log scraping: p95 queue
/// wait per tier, straight off a session's store.
#[test]
fn p95_queue_wait_per_tier_is_queryable_in_process() {
    let (_, store) = run_session_with(&session_cfg(), 0, TraceStore::new());
    let rows = Query::over(EventKind::SubtaskDispatched)
        .group_by("tier")
        .aggregate(Agg::P95, "waited_tu")
        .run(&store)
        .expect("tier and waited_tu are declared subtask_dispatched columns");
    assert!(!rows.is_empty(), "the session must dispatch subtasks");
    for row in &rows {
        let tier = row.group.as_deref().expect("grouped rows carry their tier label");
        assert!(
            ["private", "public", "tier2+"].contains(&tier),
            "dispatches attribute to a known hired tier, got {tier:?}"
        );
        assert!(row.value >= 0.0, "waits are non-negative");
    }
}
