//! Integration: reduced-horizon versions of the paper's figure-level
//! *shape* claims, kept cheap enough for the normal test run. The real
//! experiments live in `scan-bench` (`fig4`, `fig5`, `sweep`).

use scan::platform::config::{RewardKind, ScanConfig, VariableParams};
use scan::platform::sweep::run_replicated;
use scan::sched::scaling::ScalingPolicy;

fn fig4_cfg(scaling: ScalingPolicy, interval: f64) -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), 2015);
    cfg.fixed.sim_time_tu = 500.0;
    cfg
}

/// Fig. 4's light-load end: the three policies converge (the private tier
/// absorbs everything), and profit is positive.
#[test]
fn fig4_light_load_convergence() {
    let profits: Vec<f64> = ScalingPolicy::all()
        .iter()
        .map(|&s| run_replicated(&fig4_cfg(s, 1.4), 3).profit_per_run.mean())
        .collect();
    for p in &profits {
        assert!(*p > 0.0, "light-load profit should be positive: {profits:?}");
    }
    let spread = profits.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - profits.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 100.0, "policies should converge at light load: {profits:?}");
}

/// Fig. 4's busy end: never-scale collapses; predictive stays closest to
/// the best.
#[test]
fn fig4_heavy_load_separation() {
    let pred = run_replicated(&fig4_cfg(ScalingPolicy::Predictive, 0.45), 2);
    let always = run_replicated(&fig4_cfg(ScalingPolicy::AlwaysScale, 0.45), 2);
    let never = run_replicated(&fig4_cfg(ScalingPolicy::NeverScale, 0.45), 2);
    let (p, a, n) =
        (pred.profit_per_run.mean(), always.profit_per_run.mean(), never.profit_per_run.mean());
    assert!(
        p >= a.max(n) - 25.0,
        "predictive ({p:.0}) must track the better baseline (always {a:.0}, never {n:.0})"
    );
    assert!(n < p, "never-scale must trail under saturation (never {n:.0} vs pred {p:.0})");
    // Collapse: the busy end must be dramatically below the quiet end.
    let quiet = run_replicated(&fig4_cfg(ScalingPolicy::NeverScale, 1.4), 3);
    assert!(
        n < quiet.profit_per_run.mean() - 100.0,
        "never-scale busy {n:.0} vs quiet {:.0}",
        quiet.profit_per_run.mean()
    );
}

/// Fig. 5's shape: on the plan-size ladder, the reward-to-cost ratio
/// rises from the serial plan to a sweet spot and falls again for
/// over-provisioned plans.
#[test]
fn fig5_ratio_rises_then_falls() {
    let plans: [(u32, Vec<(u32, u32)>); 3] = [
        (7, vec![(1, 1); 7]),
        // A mid-size plan: shard the a-heavy stages, thread stage 5.
        (22, vec![(1, 2), (4, 1), (1, 2), (4, 1), (1, 8), (1, 1), (1, 1)]),
        // An over-provisioned plan: heavy threading everywhere.
        (67, vec![(1, 8), (6, 1), (2, 8), (6, 2), (1, 16), (1, 8), (1, 1)]),
    ];
    let mut ratios = Vec::new();
    for (cs, stages) in plans {
        let mut cfg = ScanConfig::new(
            VariableParams {
                allocation: scan::sched::alloc::AllocationPolicy::BestConstant,
                scaling: ScalingPolicy::Predictive,
                mean_interval: 2.0,
                reward: RewardKind::ThroughputBased,
                public_core_cost: 50.0,
            },
            2015,
        );
        cfg.fixed.sim_time_tu = 700.0;
        cfg.allow_reshape = true;
        cfg.forced_plan = Some(stages.clone());
        let plan_cs: u32 = stages.iter().map(|&(s, t)| s * t).sum();
        assert_eq!(plan_cs, cs);
        ratios.push(run_replicated(&cfg, 2).reward_to_cost.mean());
    }
    assert!(ratios[1] > ratios[0], "mid-size plan must beat serial: {ratios:?}");
    assert!(ratios[1] > ratios[2], "over-provisioned plan must fall off the peak: {ratios:?}");
}
