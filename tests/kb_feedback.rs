//! Integration: the knowledge-base feedback loop (§III-A.1's "the
//! knowledge base will be expanded by using information from logs of each
//! task running on the SCAN platform").

use scan::kb::{KnowledgeBase, ProfileRecord};
use scan::platform::broker::DataBroker;
use scan::sim::SimRng;
use scan::workload::gatk::{PipelineModel, StageFactors};
use scan::workload::profiletrace::generate_profile_trace;

#[test]
fn offline_trace_to_learned_model_to_planner() {
    // Bootstrap a broker from a noisy profiling study…
    let truth = PipelineModel::paper();
    let mut rng = SimRng::from_seed_u64(100);
    let broker = DataBroker::bootstrap(&truth, 0.05, &mut rng);

    // …and verify the plan optimiser on the *learned* model still makes
    // the structurally-correct choices (shard stage 2, thread stage 5).
    let plan = scan::sched::plan::best_plan(
        broker.learned_model(),
        5.0,
        &scan::sched::plan::PlanObjective {
            reward: scan::workload::reward::RewardFn::paper_time_based(),
            price_per_core_tu: 5.0,
            overhead_tu: 1.0,
        },
    );
    let (s2_shards, _) = plan.stage(1);
    let (_, s5_threads) = plan.stage(4);
    assert!(s2_shards >= 3, "learned model must still shard stage 2 (got {s2_shards})");
    assert!(s5_threads >= 4, "learned model must still thread stage 5 (got {s5_threads})");
}

#[test]
fn live_logs_shift_the_learned_model() {
    let truth = PipelineModel::paper();
    let mut rng = SimRng::from_seed_u64(101);
    let mut broker = DataBroker::bootstrap(&truth, 0.0, &mut rng);
    let before = broker.learned_model().stages[4].a;

    // The world drifts: stage 5 becomes 50% slower per GB. Stream task
    // logs in and refresh.
    let drifted = StageFactors { a: 1.03 * 1.5, b: 17.86, c: 0.91 };
    for d in [1.0, 3.0, 5.0, 7.0, 9.0] {
        for t in [1u32, 2, 4, 8, 16] {
            for _ in 0..12 {
                broker.ingest_log(&ProfileRecord {
                    application: "GATK".into(),
                    stage: 5,
                    input_gb: d,
                    threads: t,
                    ram_gb: 4.0,
                    e_time: drifted.threaded_time(t, d),
                });
            }
        }
    }
    broker.refresh_model();
    let after = broker.learned_model().stages[4].a;
    assert!(
        after > before * 1.15,
        "refresh must move a5 toward the drifted 1.545 (before {before}, after {after})"
    );
    // Other stages undisturbed.
    let s1 = broker.learned_model().stages[0];
    assert!((s1.a - 0.35).abs() < 1e-6);
}

#[test]
fn trace_grid_supports_all_stage_models() {
    let truth = PipelineModel::paper();
    let mut rng = SimRng::from_seed_u64(102);
    let trace = generate_profile_trace(&truth, "GATK", 2, 0.01, &mut rng);
    let mut kb = KnowledgeBase::new();
    for r in &trace {
        kb.ingest(r);
    }
    let models = kb.stage_models("GATK", 7);
    assert_eq!(models.len(), 7, "every stage learnable from the standard grid");
    for (stage, m) in models {
        // r² is only meaningful where the slope dominates the noise
        // (stages 6/7 are nearly flat in d); coefficient accuracy is the
        // robust criterion.
        let truth = scan::workload::gatk::PAPER_STAGE_FACTORS[(stage - 1) as usize];
        assert!(
            (m.a - truth.a).abs() < 0.1 * truth.a.abs().max(1.0),
            "stage {stage} a {} vs {}",
            m.a,
            truth.a
        );
        assert!(
            (m.b - truth.b).abs() < 0.1 * truth.b.abs().max(1.0),
            "stage {stage} b {} vs {}",
            m.b,
            truth.b
        );
        assert!((m.c - truth.c).abs() < 0.05, "stage {stage} c {} vs {}", m.c, truth.c);
    }
}

#[test]
fn chunk_advice_flows_from_ingested_logs() {
    let mut kb = KnowledgeBase::new();
    // A fresh platform defaults to the 2 GB chunk rule…
    assert_eq!(kb.advise_chunk("GATK", 40.0).chunk_gb, 2.0);
    // …until profiling shows 4 GB inputs are the most time-efficient.
    for (gb, t) in [(4.0, 30.0), (8.0, 90.0), (2.0, 25.0)] {
        kb.ingest(&ProfileRecord {
            application: "GATK".into(),
            stage: 1,
            input_gb: gb,
            threads: 8,
            ram_gb: 4.0,
            e_time: t,
        });
    }
    let advice = kb.advise_chunk("GATK", 40.0);
    assert!(advice.informed);
    assert_eq!(advice.chunk_gb, 4.0, "4 GB at 7.5 TU/GB beats 2 GB at 12.5");
    assert_eq!(advice.shards, 10);
}
