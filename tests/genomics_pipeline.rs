//! Integration: the functional genomics substrate end to end — the path
//! the `gatk_pipeline` example takes, with assertions.

use scan::genomics::fastq::{parse_fastq, write_fastq};
use scan::genomics::pipeline::GatkLikePipeline;
use scan::genomics::shard::{merge_fastq, shard_fastq};
use scan::genomics::variant::{merge_vcf, parse_vcf, write_vcf};
use scan::genomics::{AlignStats, KmerIndex, ReadSimulator, ReferenceGenome};
use scan::sim::SimRng;

#[test]
fn sequencing_to_vcf_recovers_planted_truth() {
    let mut rng = SimRng::from_seed_u64(7_001);
    let reference = ReferenceGenome::generate(&mut rng, 2, 6_000);
    let (sample, planted) = reference.plant_variants(&mut rng, 15);

    let sim = ReadSimulator { read_len: 100, error_rate: 0.002, reverse_prob: 0.5 };
    let reads = sim.simulate(&mut rng, &sample, 3_600); // ~30x

    // Through the FASTQ byte-level round trip, as the broker would see it.
    let fastq = write_fastq(&reads);
    let shards = shard_fastq(&fastq, 64 * 1024).expect("valid FASTQ");
    assert!(shards.len() > 1);
    assert_eq!(merge_fastq(&shards), fastq, "sharding must be lossless");

    let index = KmerIndex::build(&reference, 17);
    let mut aligned_shards = Vec::new();
    for shard in &shards {
        let shard_reads = parse_fastq(shard).expect("each shard parses alone");
        aligned_shards.push(index.align_batch(&reference, &shard_reads));
    }
    let all: Vec<_> = aligned_shards.iter().flatten().cloned().collect();
    let stats = AlignStats::score(&all);
    assert!(stats.accuracy() > 0.95, "alignment accuracy {}", stats.accuracy());

    let result = GatkLikePipeline::default().run(&reference, aligned_shards);
    let called: std::collections::HashSet<(u32, u32, char)> =
        result.variants.iter().map(|v| (v.chrom, v.pos, v.alt_base)).collect();
    let found =
        planted.iter().filter(|v| called.contains(&(v.chrom, v.pos, v.alt_base as char))).count();
    assert!(found >= 13, "recovered {found}/15 planted variants");

    // The VCF output round-trips as text.
    let text = write_vcf(&result.variants);
    let back = parse_vcf(&text).expect("well-formed VCF");
    assert_eq!(back.len(), result.variants.len());
}

#[test]
fn per_shard_vcfs_merge_like_variants_to_vcf() {
    let mut rng = SimRng::from_seed_u64(7_002);
    let reference = ReferenceGenome::generate(&mut rng, 1, 4_000);
    let (sample, _) = reference.plant_variants(&mut rng, 8);
    let sim = ReadSimulator { read_len: 100, error_rate: 0.001, reverse_prob: 0.5 };
    let reads = sim.simulate(&mut rng, &sample, 1_600);
    let index = KmerIndex::build(&reference, 17);
    let alignments = index.align_batch(&reference, &reads);

    // Call per shard, then gather with the VariantsToVCF-style merge.
    let caller = scan::genomics::variant::VariantCaller { min_depth: 2, ..Default::default() };
    let shard_calls: Vec<Vec<_>> =
        alignments.chunks(400).map(|c| caller.call(&reference, c)).collect();
    let merged = merge_vcf(&shard_calls);

    // Sorted, and each site unique per alt allele.
    let mut seen = std::collections::HashSet::new();
    let mut last = (0u32, 0u32);
    for v in &merged {
        assert!((v.chrom, v.pos) >= last, "merge output must be coordinate-sorted");
        last = (v.chrom, v.pos);
        assert!(seen.insert((v.chrom, v.pos, v.alt_base)), "duplicate site after merge");
    }
    // Depth in the merge is the sum over shards.
    let whole = caller.call(&reference, &alignments);
    for v in &whole {
        if let Some(m) =
            merged.iter().find(|m| (m.chrom, m.pos, m.alt_base) == (v.chrom, v.pos, v.alt_base))
        {
            assert!(m.depth >= v.depth.min(2), "merged depth must reflect shard evidence");
        }
    }
}
