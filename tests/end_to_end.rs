//! Cross-crate integration: full platform sessions driven through the
//! public facade, checking paper-level invariants.

use scan::platform::config::{RewardKind, ScanConfig, VariableParams};
use scan::platform::session::run_session;
use scan::platform::sweep::run_replicated;
use scan::sched::alloc::AllocationPolicy;
use scan::sched::scaling::ScalingPolicy;

fn cfg(scaling: ScalingPolicy, interval: f64, seed: u64) -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), seed);
    cfg.fixed.sim_time_tu = 500.0;
    cfg
}

#[test]
fn accounting_identity_holds() {
    // profit/run × completed == total reward − total cost.
    let m = run_session(&cfg(ScalingPolicy::Predictive, 2.4, 1), 0);
    assert!(m.jobs_completed > 0);
    let lhs = m.profit_per_run * m.jobs_completed as f64;
    let rhs = m.total_reward - m.total_cost;
    assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0), "{lhs} vs {rhs}");
    // Reward-to-cost consistent with the same totals.
    assert!((m.reward_to_cost - m.total_reward / m.total_cost).abs() < 1e-9);
}

#[test]
fn latency_beats_serial_baseline() {
    // The whole point of SCAN: parallelised pipelines complete much
    // faster than the serial execution of the same mean job (~31 TU for
    // d = 5 units at the paper's coefficients).
    let m = run_session(&cfg(ScalingPolicy::Predictive, 2.5, 2), 0);
    let serial = scan::workload::gatk::PipelineModel::paper().serial_latency(5.0);
    assert!(
        m.mean_latency < 0.7 * serial,
        "mean latency {} should be well under the serial {}",
        m.mean_latency,
        serial
    );
}

#[test]
fn never_scale_never_pays_public_prices() {
    for interval in [0.8, 2.0, 3.0] {
        let m = run_session(&cfg(ScalingPolicy::NeverScale, interval, 3), 0);
        assert_eq!(m.public_core_tu_share, 0.0, "interval {interval}");
    }
}

#[test]
fn saturation_hurts_never_scale_most() {
    // At a saturating load the never-scale baseline must do strictly
    // worse than predictive scaling (the Fig. 4 busy end).
    // Kept short: saturated sessions are expensive in debug builds, and
    // the policy gap is already decisive within 350 TU.
    let mut never = cfg(ScalingPolicy::NeverScale, 0.5, 4);
    let mut pred = cfg(ScalingPolicy::Predictive, 0.5, 4);
    never.fixed.sim_time_tu = 350.0;
    pred.fixed.sim_time_tu = 350.0;
    let mn = run_replicated(&never, 2);
    let mp = run_replicated(&pred, 2);
    assert!(
        mp.profit_per_run.mean() > mn.profit_per_run.mean(),
        "predictive {} should beat never-scale {} under saturation",
        mp.profit_per_run.mean(),
        mn.profit_per_run.mean()
    );
}

#[test]
fn always_scale_pays_premium_under_load() {
    let mut always = cfg(ScalingPolicy::AlwaysScale, 0.8, 5);
    let mut pred = cfg(ScalingPolicy::Predictive, 0.8, 5);
    always.fixed.sim_time_tu = 350.0;
    pred.fixed.sim_time_tu = 350.0;
    let ma = run_replicated(&always, 2);
    let mp = run_replicated(&pred, 2);
    assert!(ma.sessions.iter().any(|s| s.public_core_tu_share > 0.0));
    assert!(
        mp.profit_per_run.mean() >= ma.profit_per_run.mean(),
        "predictive {} vs always {}",
        mp.profit_per_run.mean(),
        ma.profit_per_run.mean()
    );
}

#[test]
fn throughput_reward_prefers_fast_plans() {
    let mut slow = cfg(ScalingPolicy::Predictive, 2.5, 6);
    slow.variable.reward = RewardKind::ThroughputBased;
    slow.forced_plan = Some(vec![(1, 1); 7]);
    let mut fast = slow.clone();
    fast.forced_plan = Some(vec![(1, 4), (6, 1), (1, 4), (4, 1), (1, 8), (1, 1), (1, 1)]);
    let ms = run_session(&slow, 0);
    let mf = run_session(&fast, 0);
    assert!(mf.mean_latency < ms.mean_latency);
    assert!(mf.total_reward > ms.total_reward);
}

#[test]
fn every_policy_pairing_completes_work() {
    for allocation in AllocationPolicy::all() {
        for scaling in ScalingPolicy::all() {
            let mut c = cfg(scaling, 2.6, 7);
            c.variable.allocation = allocation;
            c.fixed.sim_time_tu = 300.0;
            let m = run_session(&c, 0);
            assert!(
                m.completion_rate() > 0.5,
                "{}/{} completed only {:.0}%",
                allocation.name(),
                scaling.name(),
                100.0 * m.completion_rate()
            );
        }
    }
}

#[test]
fn replication_is_deterministic_and_varied() {
    let c = cfg(ScalingPolicy::Predictive, 2.5, 8);
    let a = run_replicated(&c, 4);
    let b = run_replicated(&c, 4);
    assert_eq!(a.sessions, b.sessions, "same seeds, same results");
    // Distinct repetitions genuinely differ (different streams).
    assert!(a.profit_per_run.stddev() > 0.0);
}

#[test]
fn reshape_mode_changes_behaviour() {
    let mut base = cfg(ScalingPolicy::NeverScale, 2.3, 9);
    base.variable.allocation = AllocationPolicy::Greedy;
    let plain = run_session(&base, 0);
    let mut reshaped = base.clone();
    reshaped.allow_reshape = true;
    let m = run_session(&reshaped, 0);
    assert_eq!(plain.reshapes, 0);
    assert!(m.reshapes > 0, "heterogeneous mode should reshape workers");
}
