//! RDF terms and the node interner.
//!
//! Every term that appears in a triple — IRI, literal or blank node — is
//! interned once and addressed by a dense [`NodeId`], so the store's
//! indexes are `BTreeSet<(u32, u32, u32)>` and pattern matching never
//! touches strings. Literals are normalised before interning (integers and
//! floats with equal value intern separately: RDF distinguishes
//! `"5"^^xsd:integer` from `"5.0"^^xsd:double`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A literal value: the leaves of the ontology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// A plain string literal.
    Str(String),
    /// An `xsd:integer`-style literal.
    Int(i64),
    /// An `xsd:double`-style literal. NaN is rejected at interning.
    Float(f64),
    /// An `xsd:boolean` literal.
    Bool(bool),
}

impl Literal {
    /// Numeric view used by FILTER comparisons: integers and floats
    /// compare on the number line, other types return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view (only `Str` literals).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Literal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonical key used for interning. Floats are keyed by bit pattern
    /// (NaN was rejected earlier, so equal values have equal bits except
    /// for ±0.0, which we normalise).
    fn intern_key(&self) -> LiteralKey {
        match self {
            Literal::Str(s) => LiteralKey::Str(s.clone()),
            Literal::Int(i) => LiteralKey::Int(*i),
            Literal::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                LiteralKey::Float(f.to_bits())
            }
            Literal::Bool(b) => LiteralKey::Bool(*b),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum LiteralKey {
    Str(String),
    Int(i64),
    Float(u64),
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A resolved RDF term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// A named resource, stored as its full IRI string.
    Iri(String),
    /// A literal value.
    Literal(Literal),
    /// An anonymous node (used for OWL restriction bookkeeping).
    Blank(u32),
}

impl Term {
    /// Convenience constructor for IRI terms.
    pub fn iri(s: impl Into<String>) -> Term {
        Term::Iri(s.into())
    }

    /// Convenience constructor for string literals.
    pub fn str(s: impl Into<String>) -> Term {
        Term::Literal(Literal::Str(s.into()))
    }

    /// Convenience constructor for integer literals.
    pub fn int(i: i64) -> Term {
        Term::Literal(Literal::Int(i))
    }

    /// Convenience constructor for float literals.
    pub fn float(f: f64) -> Term {
        Term::Literal(Literal::Float(f))
    }

    /// Convenience constructor for boolean literals.
    pub fn bool(b: bool) -> Term {
        Term::Literal(Literal::Bool(b))
    }

    /// The IRI string if this is an IRI term.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal if this is a literal term.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// Numeric view for literals.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_literal().and_then(Literal::as_f64)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(l) => write!(f, "{l}"),
            Term::Blank(i) => write!(f, "_:b{i}"),
        }
    }
}

/// Interner mapping [`Term`]s to dense [`NodeId`]s and back.
#[derive(Debug, Default, Clone)]
pub struct NodeTable {
    terms: Vec<Term>,
    iris: HashMap<String, NodeId>,
    literals: HashMap<LiteralKey, NodeId>,
    blanks: HashMap<u32, NodeId>,
    next_blank: u32,
}

impl NodeTable {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id (existing id if already interned).
    ///
    /// # Panics
    /// Panics on NaN float literals — they would break FILTER ordering.
    pub fn intern(&mut self, term: Term) -> NodeId {
        match &term {
            Term::Iri(s) => {
                if let Some(&id) = self.iris.get(s) {
                    return id;
                }
                let id = NodeId(self.terms.len() as u32);
                self.iris.insert(s.clone(), id);
                self.terms.push(term);
                id
            }
            Term::Literal(l) => {
                if let Literal::Float(f) = l {
                    assert!(!f.is_nan(), "NaN literals are not permitted in the knowledge base");
                }
                let key = l.intern_key();
                if let Some(&id) = self.literals.get(&key) {
                    return id;
                }
                let id = NodeId(self.terms.len() as u32);
                self.literals.insert(key, id);
                self.terms.push(term);
                id
            }
            Term::Blank(b) => {
                if let Some(&id) = self.blanks.get(b) {
                    return id;
                }
                let id = NodeId(self.terms.len() as u32);
                self.blanks.insert(*b, id);
                self.next_blank = self.next_blank.max(*b + 1);
                self.terms.push(term);
                id
            }
        }
    }

    /// Creates a fresh blank node.
    pub fn fresh_blank(&mut self) -> NodeId {
        let b = self.next_blank;
        self.next_blank += 1;
        self.intern(Term::Blank(b))
    }

    /// Looks up an already-interned IRI without creating it.
    pub fn lookup_iri(&self, iri: &str) -> Option<NodeId> {
        self.iris.get(iri).copied()
    }

    /// Looks up an already-interned literal without creating it.
    pub fn lookup_literal(&self, lit: &Literal) -> Option<NodeId> {
        self.literals.get(&lit.intern_key()).copied()
    }

    /// Resolves an id back to its term.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: NodeId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = NodeTable::new();
        let a = t.intern(Term::iri("http://x/a"));
        let b = t.intern(Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut t = NodeTable::new();
        let ids = [
            t.intern(Term::iri("http://x/a")),
            t.intern(Term::str("a")),
            t.intern(Term::int(5)),
            t.intern(Term::float(5.0)),
            t.intern(Term::bool(true)),
        ];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = NodeTable::new();
        let id = t.intern(Term::float(2.5));
        assert_eq!(t.resolve(id), &Term::float(2.5));
    }

    #[test]
    fn negative_zero_normalised() {
        let mut t = NodeTable::new();
        let a = t.intern(Term::float(0.0));
        let b = t.intern(Term::float(-0.0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut t = NodeTable::new();
        t.intern(Term::float(f64::NAN));
    }

    #[test]
    fn fresh_blanks_are_unique() {
        let mut t = NodeTable::new();
        let a = t.fresh_blank();
        let b = t.fresh_blank();
        assert_ne!(a, b);
        // And explicit blanks do not collide with fresh ones afterwards.
        let c = t.intern(Term::Blank(100));
        let d = t.fresh_blank();
        assert_ne!(c, d);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut t = NodeTable::new();
        assert_eq!(t.lookup_iri("http://x/missing"), None);
        let id = t.intern(Term::iri("http://x/present"));
        assert_eq!(t.lookup_iri("http://x/present"), Some(id));
        assert_eq!(t.lookup_literal(&Literal::Int(9)), None);
        let lid = t.intern(Term::int(9));
        assert_eq!(t.lookup_literal(&Literal::Int(9)), Some(lid));
    }

    #[test]
    fn literal_numeric_views() {
        assert_eq!(Literal::Int(3).as_f64(), Some(3.0));
        assert_eq!(Literal::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Literal::Str("x".into()).as_f64(), None);
        assert_eq!(Literal::Bool(true).as_f64(), None);
        assert_eq!(Literal::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::iri("http://a").to_string(), "<http://a>");
        assert_eq!(Term::str("hi").to_string(), "\"hi\"");
        assert_eq!(Term::int(-2).to_string(), "-2");
        assert_eq!(Term::Blank(3).to_string(), "_:b3");
    }

    proptest! {
        #[test]
        fn prop_intern_resolve_roundtrip(strings in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
            let mut t = NodeTable::new();
            let ids: Vec<NodeId> = strings.iter().map(|s| t.intern(Term::iri(format!("http://x/{s}")))).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(t.resolve(*id).as_iri().unwrap(), format!("http://x/{s}"));
            }
            // Interning the same strings again yields the same ids.
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(t.intern(Term::iri(format!("http://x/{s}"))), *id);
            }
        }
    }
}
