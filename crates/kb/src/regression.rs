//! Least-squares fits recovering the paper's performance models.
//!
//! §III-A.1: "we profiled GATK performance under different hardware
//! configurations and with different inputs … total execution time linearly
//! increases with the input file size". §IV-1: "The values of a_i, b_i and
//! c_i were determined for each pipeline stage by linear regression of
//! offline profiling data."
//!
//! Two fits are needed:
//!
//! * [`linear_fit`] — ordinary least squares `y = a·x + b` over
//!   `(input size, single-threaded time)` pairs, recovering `a_i, b_i`.
//! * [`amdahl_fit`] — the paper's threading model
//!   `T(t) = E·c/t + E·(1−c)` is linear in `1/t`, so OLS over
//!   `(1/t, time)` recovers `α = E·c` (slope) and `β = E·(1−c)`
//!   (intercept), giving `c = α / (α + β)` and `E = α + β`.

use serde::{Deserialize, Serialize};

/// Result of an ordinary least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when all variance in y
    /// is explained; 1 for a perfect fit on non-degenerate data).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// Returns `None` with fewer than two points or zero variance in `x`
/// (a vertical line has no OLS solution).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // y is constant; the flat line explains everything.
    } else {
        (sxy * sxy / (sxx * syy)).clamp(0.0, 1.0)
    };
    Some(LinearFit { slope, intercept, r_squared, n })
}

/// Result of an Amdahl's-law fit of the paper's threading model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmdahlFit {
    /// The parallelisable fraction `c ∈ [0, 1]`.
    pub c: f64,
    /// The single-threaded execution time `E` implied by the fit.
    pub single_thread_time: f64,
    /// Goodness of the underlying linear fit in `1/t`.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl AmdahlFit {
    /// Predicted execution time with `t` threads.
    pub fn predict(&self, threads: u32) -> f64 {
        assert!(threads >= 1);
        let e = self.single_thread_time;
        self.c * e / threads as f64 + (1.0 - self.c) * e
    }

    /// Maximum speedup achievable with unbounded threads: `1 / (1 − c)`.
    pub fn max_speedup(&self) -> f64 {
        if self.c >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.c)
        }
    }
}

/// Fits the paper's threading model to `(threads, time)` observations at a
/// fixed input size. Returns `None` when fewer than two distinct thread
/// counts are present or the fit degenerates (negative `E`).
///
/// The recovered `c` is clamped to `[0, 1]`: measurement noise can push the
/// raw estimate slightly outside, and downstream consumers (the scheduler's
/// plan optimiser) require a valid Amdahl fraction.
pub fn amdahl_fit(points: &[(u32, f64)]) -> Option<AmdahlFit> {
    let transformed: Vec<(f64, f64)> =
        points.iter().filter(|p| p.0 >= 1).map(|&(t, y)| (1.0 / t as f64, y)).collect();
    let fit = linear_fit(&transformed)?;
    let alpha = fit.slope; // E·c
    let beta = fit.intercept; // E·(1−c)
    let e = alpha + beta;
    if !(e.is_finite() && e > 0.0) {
        return None;
    }
    let c = (alpha / e).clamp(0.0, 1.0);
    Some(AmdahlFit { c, single_thread_time: e, r_squared: fit.r_squared, n: transformed.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 2.7 * i as f64 - 0.53)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.7).abs() < 1e-12);
        assert!((fit.intercept + 0.53).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovered_approximately() {
        // Deterministic pseudo-noise.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = ((i * 2654435761u64 % 1000) as f64 / 1000.0 - 0.5) * 0.2;
                (x, 1.03 * x + 17.86 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 1.03).abs() < 0.02, "slope {}", fit.slope);
        assert!((fit.intercept - 17.86).abs() < 0.1, "intercept {}", fit.intercept);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(3.0, 1.0), (3.0, 2.0)]).is_none(), "vertical line");
    }

    #[test]
    fn constant_y_has_r2_one() {
        let fit = linear_fit(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn amdahl_recovers_paper_stage_5() {
        // Stage 5 of Table II: c = 0.91. Take E(d)=23.01 at d=5.
        let e = 23.01;
        let c = 0.91;
        let pts: Vec<(u32, f64)> =
            [1u32, 2, 4, 8, 16].iter().map(|&t| (t, c * e / t as f64 + (1.0 - c) * e)).collect();
        let fit = amdahl_fit(&pts).unwrap();
        assert!((fit.c - 0.91).abs() < 1e-9, "c {}", fit.c);
        assert!((fit.single_thread_time - e).abs() < 1e-9);
        assert!((fit.predict(8) - (c * e / 8.0 + (1.0 - c) * e)).abs() < 1e-9);
        assert!((fit.max_speedup() - 1.0 / 0.09).abs() < 1e-6);
    }

    #[test]
    fn amdahl_serial_stage() {
        // Stage 7: c = 0.02 — nearly flat in thread count.
        let e = 5.15;
        let pts: Vec<(u32, f64)> =
            [1u32, 2, 4, 8].iter().map(|&t| (t, 0.02 * e / t as f64 + 0.98 * e)).collect();
        let fit = amdahl_fit(&pts).unwrap();
        assert!((fit.c - 0.02).abs() < 1e-9);
        assert!(fit.max_speedup() < 1.03);
    }

    #[test]
    fn amdahl_clamps_noisy_c() {
        // Superlinear-looking noise: raw c estimate would exceed 1.
        let pts = [(1u32, 10.0), (2u32, 4.0), (4u32, 1.0)];
        let fit = amdahl_fit(&pts).unwrap();
        assert!((0.0..=1.0).contains(&fit.c));
    }

    #[test]
    fn amdahl_degenerate_rejected() {
        assert!(amdahl_fit(&[]).is_none());
        assert!(amdahl_fit(&[(4, 2.0)]).is_none());
        assert!(amdahl_fit(&[(2, 1.0), (2, 1.1)]).is_none());
        // Zero threads filtered out, leaving one point.
        assert!(amdahl_fit(&[(0, 1.0), (2, 1.1)]).is_none());
    }

    proptest! {
        /// OLS on exact lines recovers the coefficients for any slope and
        /// intercept, regardless of sample positions.
        #[test]
        fn prop_exact_line(
            a in -100.0f64..100.0,
            b in -100.0f64..100.0,
            xs in proptest::collection::btree_set(-1000i32..1000, 2..40),
        ) {
            let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x as f64, a * x as f64 + b)).collect();
            let fit = linear_fit(&pts).unwrap();
            prop_assert!((fit.slope - a).abs() < 1e-6 * a.abs().max(1.0));
            prop_assert!((fit.intercept - b).abs() < 1e-5 * b.abs().max(1.0));
        }

        /// The Amdahl fit round-trips any valid (E, c) pair.
        #[test]
        fn prop_amdahl_roundtrip(e in 0.1f64..1000.0, c in 0.0f64..1.0) {
            let pts: Vec<(u32, f64)> = [1u32, 2, 3, 4, 8, 16]
                .iter()
                .map(|&t| (t, c * e / t as f64 + (1.0 - c) * e))
                .collect();
            let fit = amdahl_fit(&pts).unwrap();
            prop_assert!((fit.c - c).abs() < 1e-6, "c: {} vs {}", fit.c, c);
            prop_assert!((fit.single_thread_time - e).abs() < 1e-6 * e.max(1.0));
        }
    }
}
