//! The indexed triple store.
//!
//! Triples are `(NodeId, NodeId, NodeId)` kept in three B-tree orderings —
//! SPO, POS and OSP — so any pattern with at least one bound position is a
//! contiguous range scan, and the fully-unbound pattern is a scan of SPO.
//! This is the classic "triple table with three covering indexes" layout
//! used by in-memory RDF engines, sufficient for the knowledge-base sizes
//! the SCAN platform handles (thousands of profiling individuals).

use crate::term::{Literal, NodeId, NodeTable, Term};
use std::collections::BTreeSet;
use std::ops::Bound;

/// One position of a triple pattern: bound to a node, or a wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSlot {
    /// Matches only this node.
    Bound(NodeId),
    /// Matches anything.
    Any,
}

/// A subject/predicate/object pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject slot.
    pub s: PatternSlot,
    /// Predicate slot.
    pub p: PatternSlot,
    /// Object slot.
    pub o: PatternSlot,
}

impl TriplePattern {
    /// A pattern matching every triple.
    pub fn any() -> Self {
        TriplePattern { s: PatternSlot::Any, p: PatternSlot::Any, o: PatternSlot::Any }
    }
}

/// A stored triple.
pub type Triple = (NodeId, NodeId, NodeId);

/// The knowledge base's triple store: interner + three covering indexes.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    nodes: NodeTable,
    spo: BTreeSet<(NodeId, NodeId, NodeId)>,
    pos: BTreeSet<(NodeId, NodeId, NodeId)>,
    osp: BTreeSet<(NodeId, NodeId, NodeId)>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the node interner.
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// Mutable access to the node interner.
    pub fn nodes_mut(&mut self) -> &mut NodeTable {
        &mut self.nodes
    }

    /// Interns a term (delegation convenience).
    pub fn intern(&mut self, term: Term) -> NodeId {
        self.nodes.intern(term)
    }

    /// Resolves a node id back to its term.
    pub fn resolve(&self, id: NodeId) -> &Term {
        self.nodes.resolve(id)
    }

    /// Inserts a triple of already-interned nodes. Returns `true` if the
    /// triple was new.
    pub fn insert(&mut self, s: NodeId, p: NodeId, o: NodeId) -> bool {
        if self.spo.insert((s, p, o)) {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
            true
        } else {
            false
        }
    }

    /// Interns three terms and inserts the triple.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.nodes.intern(s);
        let p = self.nodes.intern(p);
        let o = self.nodes.intern(o);
        self.insert(s, p, o)
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, s: NodeId, p: NodeId, o: NodeId) -> bool {
        if self.spo.remove(&(s, p, o)) {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
            true
        } else {
            false
        }
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Whether the exact triple is present.
    pub fn contains(&self, s: NodeId, p: NodeId, o: NodeId) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// Iterates over every triple matching `pattern`, in a deterministic
    /// order. Chooses the most selective index for the bound positions.
    pub fn matching<'a>(&'a self, pattern: TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        use PatternSlot::*;
        match (pattern.s, pattern.p, pattern.o) {
            (Bound(s), Bound(p), Bound(o)) => {
                let hit = self.spo.contains(&(s, p, o));
                Box::new(hit.then_some((s, p, o)).into_iter())
            }
            (Bound(s), Bound(p), Any) => {
                Box::new(range3(&self.spo, s, Some(p)).map(|&(s, p, o)| (s, p, o)))
            }
            (Bound(s), Any, Any) => {
                Box::new(range3(&self.spo, s, None).map(|&(s, p, o)| (s, p, o)))
            }
            (Bound(s), Any, Bound(o)) => {
                Box::new(range3(&self.osp, o, Some(s)).map(|&(o, s, p)| (s, p, o)))
            }
            (Any, Bound(p), Bound(o)) => {
                Box::new(range3(&self.pos, p, Some(o)).map(|&(p, o, s)| (s, p, o)))
            }
            (Any, Bound(p), Any) => {
                Box::new(range3(&self.pos, p, None).map(|&(p, o, s)| (s, p, o)))
            }
            (Any, Any, Bound(o)) => {
                Box::new(range3(&self.osp, o, None).map(|&(o, s, p)| (s, p, o)))
            }
            (Any, Any, Any) => Box::new(self.spo.iter().copied()),
        }
    }

    /// All objects for `(s, p, ?)`.
    pub fn objects(&self, s: NodeId, p: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.matching(TriplePattern {
            s: PatternSlot::Bound(s),
            p: PatternSlot::Bound(p),
            o: PatternSlot::Any,
        })
        .map(|(_, _, o)| o)
    }

    /// All subjects for `(?, p, o)`.
    pub fn subjects(&self, p: NodeId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.matching(TriplePattern {
            s: PatternSlot::Any,
            p: PatternSlot::Bound(p),
            o: PatternSlot::Bound(o),
        })
        .map(|(s, _, _)| s)
    }

    /// The single object for `(s, p, ?)` if exactly one exists.
    pub fn object(&self, s: NodeId, p: NodeId) -> Option<NodeId> {
        let mut it = self.objects(s, p);
        let first = it.next()?;
        if it.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Reads a numeric datatype property off a subject, following the
    /// paper's pattern of `<scan-ontology:eTime>180</...>` literals.
    pub fn number(&self, s: NodeId, p: NodeId) -> Option<f64> {
        self.objects(s, p).find_map(|o| self.resolve(o).as_f64())
    }

    /// Reads a string datatype property off a subject.
    pub fn string(&self, s: NodeId, p: NodeId) -> Option<&str> {
        self.objects(s, p).find_map(|o| match self.resolve(o) {
            Term::Literal(Literal::Str(s)) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Replaces the value of a functional datatype property: removes all
    /// existing `(s, p, *)` triples and inserts `(s, p, value)`.
    pub fn set_property(&mut self, s: NodeId, p: NodeId, value: Term) {
        let olds: Vec<NodeId> = self.objects(s, p).collect();
        for o in olds {
            self.remove(s, p, o);
        }
        let o = self.nodes.intern(value);
        self.insert(s, p, o);
    }
}

/// Range-scan helper over an index ordered as `(k1, k2, k3)`: yields all
/// entries with first component `k1` (and second `k2` when given).
fn range3(
    index: &BTreeSet<(NodeId, NodeId, NodeId)>,
    k1: NodeId,
    k2: Option<NodeId>,
) -> impl Iterator<Item = &(NodeId, NodeId, NodeId)> {
    let (lo, hi) = match k2 {
        Some(k2) => {
            (Bound::Included((k1, k2, NodeId(0))), Bound::Included((k1, k2, NodeId(u32::MAX))))
        }
        None => (
            Bound::Included((k1, NodeId(0), NodeId(0))),
            Bound::Included((k1, NodeId(u32::MAX), NodeId(u32::MAX))),
        ),
    };
    index.range((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn store_with(n: usize) -> (TripleStore, Vec<NodeId>) {
        let mut st = TripleStore::new();
        let ids: Vec<NodeId> =
            (0..n).map(|i| st.intern(Term::iri(format!("http://x/{i}")))).collect();
        (st, ids)
    }

    #[test]
    fn insert_and_contains() {
        let (mut st, ids) = store_with(3);
        assert!(st.insert(ids[0], ids[1], ids[2]));
        assert!(!st.insert(ids[0], ids[1], ids[2]), "duplicate insert");
        assert!(st.contains(ids[0], ids[1], ids[2]));
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn remove_cleans_all_indexes() {
        let (mut st, ids) = store_with(3);
        st.insert(ids[0], ids[1], ids[2]);
        assert!(st.remove(ids[0], ids[1], ids[2]));
        assert!(!st.remove(ids[0], ids[1], ids[2]));
        assert!(st.is_empty());
        assert_eq!(st.matching(TriplePattern::any()).count(), 0);
    }

    #[test]
    fn all_eight_pattern_shapes() {
        let (mut st, ids) = store_with(4);
        // (0,1,2), (0,1,3), (3,1,2), (0,2,2)
        st.insert(ids[0], ids[1], ids[2]);
        st.insert(ids[0], ids[1], ids[3]);
        st.insert(ids[3], ids[1], ids[2]);
        st.insert(ids[0], ids[2], ids[2]);
        use PatternSlot::*;
        let count = |s, p, o| st.matching(TriplePattern { s, p, o }).count();
        assert_eq!(count(Any, Any, Any), 4);
        assert_eq!(count(Bound(ids[0]), Any, Any), 3);
        assert_eq!(count(Any, Bound(ids[1]), Any), 3);
        assert_eq!(count(Any, Any, Bound(ids[2])), 3);
        assert_eq!(count(Bound(ids[0]), Bound(ids[1]), Any), 2);
        assert_eq!(count(Bound(ids[0]), Any, Bound(ids[2])), 2);
        assert_eq!(count(Any, Bound(ids[1]), Bound(ids[2])), 2);
        assert_eq!(count(Bound(ids[0]), Bound(ids[1]), Bound(ids[2])), 1);
        assert_eq!(count(Bound(ids[1]), Bound(ids[0]), Bound(ids[2])), 0);
    }

    #[test]
    fn object_helpers() {
        let mut st = TripleStore::new();
        let s = st.intern(Term::iri("http://x/GATK1"));
        let p = st.intern(Term::iri("http://x/eTime"));
        let o = st.intern(Term::int(180));
        st.insert(s, p, o);
        assert_eq!(st.number(s, p), Some(180.0));
        assert_eq!(st.object(s, p), Some(o));
        // Two objects → `object` is None (non-functional).
        let o2 = st.intern(Term::int(200));
        st.insert(s, p, o2);
        assert_eq!(st.object(s, p), None);
    }

    #[test]
    fn set_property_replaces() {
        let mut st = TripleStore::new();
        let s = st.intern(Term::iri("http://x/GATK1"));
        let p = st.intern(Term::iri("http://x/eTime"));
        st.set_property(s, p, Term::int(180));
        st.set_property(s, p, Term::int(200));
        assert_eq!(st.number(s, p), Some(200.0));
        assert_eq!(st.objects(s, p).count(), 1);
    }

    #[test]
    fn string_property() {
        let mut st = TripleStore::new();
        let s = st.intern(Term::iri("http://x/GATK1"));
        let p = st.intern(Term::iri("http://x/performance"));
        st.insert_terms(
            Term::iri("http://x/GATK1"),
            Term::iri("http://x/performance"),
            Term::str("good"),
        );
        assert_eq!(st.string(s, p), Some("good"));
    }

    proptest! {
        /// Matching any pattern returns exactly the subset of inserted
        /// triples that agree with the bound slots.
        #[test]
        fn prop_pattern_matches_filter(
            triples in proptest::collection::vec((0u32..6, 0u32..6, 0u32..6), 0..60),
            qs in 0u32..7, qp in 0u32..7, qo in 0u32..7,
        ) {
            let (mut st, ids) = store_with(7);
            let mut set = std::collections::BTreeSet::new();
            for (s, p, o) in &triples {
                st.insert(ids[*s as usize], ids[*p as usize], ids[*o as usize]);
                set.insert((ids[*s as usize], ids[*p as usize], ids[*o as usize]));
            }
            // Slot value 6 means Any (ids has 7 entries; index 6 unused in data).
            let slot = |v: u32| if v == 6 { PatternSlot::Any } else { PatternSlot::Bound(ids[v as usize]) };
            let pat = TriplePattern { s: slot(qs), p: slot(qp), o: slot(qo) };
            let got: std::collections::BTreeSet<Triple> = st.matching(pat).collect();
            let want: std::collections::BTreeSet<Triple> = set.iter().copied().filter(|&(s, p, o)| {
                (matches!(pat.s, PatternSlot::Any) || pat.s == PatternSlot::Bound(s))
                    && (matches!(pat.p, PatternSlot::Any) || pat.p == PatternSlot::Bound(p))
                    && (matches!(pat.o, PatternSlot::Any) || pat.o == PatternSlot::Bound(o))
            }).collect();
            prop_assert_eq!(got, want);
        }

        /// Insert-then-remove leaves the store exactly as before.
        #[test]
        fn prop_remove_restores(
            base in proptest::collection::vec((0u32..5, 0u32..5, 0u32..5), 0..30),
            extra in proptest::collection::vec((0u32..5, 0u32..5, 0u32..5), 1..10),
        ) {
            let (mut st, ids) = store_with(5);
            for (s, p, o) in &base {
                st.insert(ids[*s as usize], ids[*p as usize], ids[*o as usize]);
            }
            let before: Vec<Triple> = st.matching(TriplePattern::any()).collect();
            let mut added = vec![];
            for (s, p, o) in &extra {
                let t = (ids[*s as usize], ids[*p as usize], ids[*o as usize]);
                if st.insert(t.0, t.1, t.2) {
                    added.push(t);
                }
            }
            for (s, p, o) in added {
                st.remove(s, p, o);
            }
            let after: Vec<Triple> = st.matching(TriplePattern::any()).collect();
            prop_assert_eq!(before, after);
        }
    }
}
