//! Turtle-style serialisation of the knowledge base.
//!
//! The paper's knowledge base lives in OWL/RDF files (`scan-wxing.owl`, the
//! RDF/XML snippets in §III-A.1). This module provides the persistence
//! layer: a compact Turtle writer and reader so an ontology built in one
//! session (profiling instances included) can be saved and reloaded —
//! "the knowledge-base is initially created by profiling … After that, the
//! knowledge base will be expanded" across runs.
//!
//! Supported subset (matching what the store holds):
//!
//! ```text
//! @prefix name: <iri> .
//! <subject> <predicate> object .
//! prefixed:subject prefixed:predicate "literal" .
//! ```
//!
//! Objects may be IRIs, prefixed names, plain/integer/float/boolean
//! literals, or blank nodes (`_:bN`). Predicate lists (`;`) and object
//! lists (`,`) are emitted for compactness and accepted on input.

use crate::store::{TriplePattern, TripleStore};
use crate::term::{Literal, Term};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors from Turtle parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for TurtleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "turtle parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Serialises a store to Turtle, grouping triples by subject (`;`) and
/// predicate (`,`), with `@prefix` declarations for the given namespaces.
pub fn to_turtle(store: &TripleStore, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, iri) in prefixes {
        writeln!(out, "@prefix {name}: <{iri}> .").expect("string write");
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }

    // Group by subject, then predicate (BTreeMap for deterministic order).
    let mut by_subject: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for (s, p, o) in store.matching(TriplePattern::any()) {
        let s = render_term(store.resolve(s), prefixes);
        let p = render_term(store.resolve(p), prefixes);
        let o = render_term(store.resolve(o), prefixes);
        by_subject.entry(s).or_default().entry(p).or_default().push(o);
    }

    for (subject, preds) in by_subject {
        write!(out, "{subject}").expect("string write");
        let n_preds = preds.len();
        for (pi, (pred, objects)) in preds.into_iter().enumerate() {
            if pi == 0 {
                write!(out, " {pred} ").expect("string write");
            } else {
                write!(out, " ;\n    {pred} ").expect("string write");
            }
            write!(out, "{}", objects.join(", ")).expect("string write");
            if pi + 1 == n_preds {
                out.push_str(" .\n");
            }
        }
    }
    out
}

fn render_term(term: &Term, prefixes: &[(&str, &str)]) -> String {
    match term {
        Term::Iri(iri) => {
            for (name, base) in prefixes {
                if let Some(local) = iri.strip_prefix(base) {
                    if !local.is_empty()
                        && local.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        return format!("{name}:{local}");
                    }
                }
            }
            format!("<{iri}>")
        }
        Term::Literal(Literal::Str(s)) => {
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
        }
        Term::Literal(Literal::Int(i)) => i.to_string(),
        Term::Literal(Literal::Float(f)) => {
            // Ensure a decimal point so the reader types it as a float.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Term::Literal(Literal::Bool(b)) => b.to_string(),
        Term::Blank(n) => format!("_:b{n}"),
    }
}

/// Parses Turtle text into a fresh store.
pub fn from_turtle(text: &str) -> Result<TripleStore, TurtleError> {
    let mut store = TripleStore::new();
    merge_turtle(&mut store, text)?;
    Ok(store)
}

/// Parses Turtle text, inserting its triples into an existing store.
pub fn merge_turtle(store: &mut TripleStore, text: &str) -> Result<(), TurtleError> {
    let mut parser = TurtleParser::new(text);
    parser.run(store)
}

struct TurtleParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    prefixes: BTreeMap<String, String>,
}

impl<'a> TurtleParser<'a> {
    fn new(src: &'a str) -> Self {
        TurtleParser { src, pos: 0, line: 1, prefixes: BTreeMap::new() }
    }

    fn err(&self, message: impl Into<String>) -> TurtleError {
        TurtleError { message: message.into(), line: self.line }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let mut chars = rest.char_indices();
            match chars.next() {
                Some((_, c)) if c.is_whitespace() => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += c.len_utf8();
                }
                Some((_, '#')) => {
                    // Comment to end of line.
                    if let Some(nl) = rest.find('\n') {
                        self.pos += nl;
                    } else {
                        self.pos = self.src.len();
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn run(&mut self, store: &mut TripleStore) -> Result<(), TurtleError> {
        loop {
            self.skip_ws();
            if self.rest().is_empty() {
                return Ok(());
            }
            if self.eat("@prefix") {
                self.parse_prefix()?;
                continue;
            }
            self.parse_statement(store)?;
        }
    }

    fn parse_prefix(&mut self) -> Result<(), TurtleError> {
        self.skip_ws();
        let name_end =
            self.rest().find(':').ok_or_else(|| self.err("expected ':' in @prefix declaration"))?;
        let name = self.rest()[..name_end].trim().to_string();
        self.pos += name_end + 1;
        self.skip_ws();
        let iri = self.parse_iri_ref()?;
        self.skip_ws();
        if !self.eat(".") {
            return Err(self.err("expected '.' after @prefix declaration"));
        }
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_iri_ref(&mut self) -> Result<String, TurtleError> {
        if !self.eat("<") {
            return Err(self.err("expected '<'"));
        }
        let end = self.rest().find('>').ok_or_else(|| self.err("unterminated IRI"))?;
        let iri = self.rest()[..end].to_string();
        self.pos += end + 1;
        Ok(iri)
    }

    fn parse_statement(&mut self, store: &mut TripleStore) -> Result<(), TurtleError> {
        let subject = self.parse_term()?;
        loop {
            self.skip_ws();
            let predicate = self.parse_term()?;
            loop {
                self.skip_ws();
                let object = self.parse_term()?;
                store.insert_terms(subject.clone(), predicate.clone(), object);
                self.skip_ws();
                if self.eat(",") {
                    continue;
                }
                break;
            }
            if self.eat(";") {
                continue;
            }
            if self.eat(".") {
                return Ok(());
            }
            return Err(self.err("expected ',', ';' or '.' after object"));
        }
    }

    fn parse_term(&mut self) -> Result<Term, TurtleError> {
        self.skip_ws();
        let rest = self.rest();
        let first = rest.chars().next().ok_or_else(|| self.err("unexpected end of input"))?;
        match first {
            '<' => Ok(Term::Iri(self.parse_iri_ref()?)),
            '"' => {
                self.pos += 1;
                let mut out = String::new();
                let mut chars = self.rest().char_indices();
                loop {
                    match chars.next() {
                        None => return Err(self.err("unterminated string literal")),
                        Some((i, '"')) => {
                            self.pos += i + 1;
                            return Ok(Term::str(out));
                        }
                        Some((_, '\\')) => match chars.next() {
                            Some((_, '"')) => out.push('"'),
                            Some((_, '\\')) => out.push('\\'),
                            Some((_, 'n')) => out.push('\n'),
                            _ => return Err(self.err("bad escape in string literal")),
                        },
                        Some((_, c)) => out.push(c),
                    }
                }
            }
            '_' => {
                if !self.eat("_:b") {
                    return Err(self.err("expected blank node of the form _:bN"));
                }
                let digits: String =
                    self.rest().chars().take_while(|c| c.is_ascii_digit()).collect();
                if digits.is_empty() {
                    return Err(self.err("blank node needs a number"));
                }
                self.pos += digits.len();
                Ok(Term::Blank(digits.parse().expect("digits parse")))
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let number: String = rest
                    .chars()
                    .take_while(|&c| {
                        c.is_ascii_digit()
                            || c == '.'
                            || c == '-'
                            || c == '+'
                            || c == 'e'
                            || c == 'E'
                    })
                    .collect();
                self.pos += number.len();
                if number.contains('.') || number.contains('e') || number.contains('E') {
                    number
                        .parse::<f64>()
                        .map(Term::float)
                        .map_err(|_| self.err(format!("bad float literal '{number}'")))
                } else {
                    number
                        .parse::<i64>()
                        .map(Term::int)
                        .map_err(|_| self.err(format!("bad integer literal '{number}'")))
                }
            }
            _ => {
                // true/false, or a prefixed name.
                let word: String = rest
                    .chars()
                    .take_while(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == ':')
                    .collect();
                if word.is_empty() {
                    return Err(self.err(format!("unexpected character '{first}'")));
                }
                self.pos += word.len();
                if word == "true" {
                    return Ok(Term::bool(true));
                }
                if word == "false" {
                    return Ok(Term::bool(false));
                }
                let (prefix, local) = word
                    .split_once(':')
                    .ok_or_else(|| self.err(format!("unknown bare word '{word}'")))?;
                let base = self
                    .prefixes
                    .get(prefix)
                    .ok_or_else(|| self.err(format!("undeclared prefix '{prefix}:'")))?;
                Ok(Term::Iri(format!("{base}{local}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{iri, Ontology};
    use crate::profile::ProfileRecord;

    fn triple_set(store: &TripleStore) -> std::collections::BTreeSet<(String, String, String)> {
        store
            .matching(TriplePattern::any())
            .map(|(s, p, o)| {
                (
                    format!("{}", store.resolve(s)),
                    format!("{}", store.resolve(p)),
                    format!("{}", store.resolve(o)),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_small_graph() {
        let mut store = TripleStore::new();
        store.insert_terms(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::int(5));
        store.insert_terms(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::float(2.5));
        store.insert_terms(Term::iri("http://x/a"), Term::iri("http://x/q"), Term::str("hi \"q\""));
        store.insert_terms(Term::iri("http://x/b"), Term::iri("http://x/p"), Term::bool(true));
        store.insert_terms(Term::iri("http://x/b"), Term::iri("http://x/p"), Term::Blank(3));
        let text = to_turtle(&store, &[("x", "http://x/")]);
        let back = from_turtle(&text).expect("parses");
        assert_eq!(triple_set(&store), triple_set(&back));
    }

    #[test]
    fn roundtrip_full_scan_ontology_with_profiles() {
        let mut o = Ontology::with_scan_schema();
        for (size, etime) in [(10.0, 180.0), (5.0, 200.0), (20.0, 280.0), (4.0, 80.0)] {
            o.ingest_profile(&ProfileRecord {
                application: "GATK".into(),
                stage: 1,
                input_gb: size,
                threads: 8,
                ram_gb: 4.0,
                e_time: etime,
            });
        }
        let text = to_turtle(
            o.store(),
            &[
                ("scan", iri::SCAN_NS),
                ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
                ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
                ("owl", "http://www.w3.org/2002/07/owl#"),
            ],
        );
        assert!(text.contains("scan:GATK1"), "prefixed names used:\n{text}");
        let back = from_turtle(&text).expect("parses");
        assert_eq!(back.len(), o.store().len(), "triple counts match");
        assert_eq!(triple_set(o.store()), triple_set(&back));
    }

    #[test]
    fn predicate_and_object_lists() {
        let text = r#"
            @prefix x: <http://x/> .
            x:a x:p 1, 2, 3 ;
                x:q "v" .
        "#;
        let store = from_turtle(text).expect("parses");
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# header\n@prefix x: <http://x/> . # trailing\n\nx:a x:p 1 .\n";
        assert_eq!(from_turtle(text).expect("parses").len(), 1);
    }

    #[test]
    fn merge_into_existing_store() {
        let mut store = TripleStore::new();
        store.insert_terms(Term::iri("http://x/old"), Term::iri("http://x/p"), Term::int(1));
        merge_turtle(&mut store, "@prefix x: <http://x/> . x:new x:p 2 .").expect("parses");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let bad = "@prefix x: <http://x/> .\nx:a x:p ???\n";
        let err = from_turtle(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(from_turtle("x:a x:p 1 .").is_err(), "undeclared prefix");
        assert!(from_turtle("<http://a> <http://p> \"unterminated .").is_err());
        assert!(from_turtle("<http://a> <http://p> 1 ,").is_err());
    }

    #[test]
    fn floats_keep_their_type() {
        let mut store = TripleStore::new();
        store.insert_terms(Term::iri("http://x/a"), Term::iri("http://x/p"), Term::float(4.0));
        let text = to_turtle(&store, &[]);
        let back = from_turtle(&text).expect("parses");
        let s = back.nodes().lookup_iri("http://x/a").expect("subject");
        let p = back.nodes().lookup_iri("http://x/p").expect("predicate");
        let o = back.objects(s, p).next().expect("object");
        assert_eq!(back.resolve(o), &Term::float(4.0), "4.0 must not collapse to int 4");
    }
}
