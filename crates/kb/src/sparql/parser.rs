//! Recursive-descent parser for the SPARQL subset.
//!
//! Prefixes declared in the prologue are resolved to absolute IRIs during
//! parsing, so the evaluator never sees prefixed names.

use super::ast::{BinOp, Expr, GroupPattern, PatternElement, Query, QueryTerm, SortKey};
use super::lexer::{Lexer, Token};
use super::SparqlError;
use crate::term::Term;
use std::collections::HashMap;

const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parses a query string into a [`Query`].
pub fn parse_query(src: &str) -> Result<Query, SparqlError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0, prefixes: HashMap::new() }.parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> SparqlError {
        SparqlError::Parse(format!("{} (at token {:?})", msg.into(), self.peek()))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        match self.bump() {
            Token::Keyword(k) if k == kw => Ok(()),
            other => Err(SparqlError::Parse(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), SparqlError> {
        let got = self.bump();
        if got == tok {
            Ok(())
        } else {
            Err(SparqlError::Parse(format!("expected {tok:?}, found {got:?}")))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn parse(mut self) -> Result<Query, SparqlError> {
        // Prologue.
        while self.at_keyword("PREFIX") {
            self.bump();
            let (name, local) = match self.bump() {
                Token::Prefixed(p, l) => (p, l),
                other => {
                    return Err(SparqlError::Parse(format!(
                        "expected prefix name after PREFIX, found {other:?}"
                    )))
                }
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                Token::Iri(i) => i,
                other => {
                    return Err(SparqlError::Parse(format!(
                        "expected <iri> in PREFIX declaration, found {other:?}"
                    )))
                }
            };
            self.prefixes.insert(name, iri);
        }

        self.expect_keyword("SELECT")?;
        let distinct = if self.at_keyword("DISTINCT") {
            self.bump();
            true
        } else {
            false
        };

        // Projection: '*' or one-or-more variables.
        let projection = if *self.peek() == Token::Star {
            self.bump();
            None
        } else {
            let mut vars = Vec::new();
            while let Token::Var(v) = self.peek() {
                vars.push(v.clone());
                self.bump();
            }
            if vars.is_empty() {
                return Err(self.err("SELECT needs '*' or at least one variable"));
            }
            Some(vars)
        };

        // Optional FROM <iri> — accepted and ignored (the store is the
        // only graph), mirroring the paper's `FROM <scan-wxing.owl>`.
        if self.at_keyword("FROM") {
            self.bump();
            match self.bump() {
                Token::Iri(_) => {}
                other => {
                    return Err(SparqlError::Parse(format!(
                        "expected <iri> after FROM, found {other:?}"
                    )))
                }
            }
        }

        self.expect_keyword("WHERE")?;
        let wher = self.parse_group()?;

        // Solution modifiers.
        let mut order_by = Vec::new();
        if self.at_keyword("ORDER") {
            self.bump();
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    Token::Keyword(k) if k == "ASC" || k == "DESC" => {
                        self.bump();
                        self.expect(Token::LParen)?;
                        let expr = self.parse_expr()?;
                        self.expect(Token::RParen)?;
                        order_by.push(SortKey { expr, descending: k == "DESC" });
                    }
                    Token::Var(v) => {
                        self.bump();
                        order_by.push(SortKey { expr: Expr::Var(v), descending: false });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY needs at least one key"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        // LIMIT and OFFSET may appear in either order.
        for _ in 0..2 {
            if self.at_keyword("LIMIT") {
                self.bump();
                match self.bump() {
                    Token::Int(n) if n >= 0 => limit = Some(n as usize),
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "expected non-negative integer after LIMIT, found {other:?}"
                        )))
                    }
                }
            } else if self.at_keyword("OFFSET") {
                self.bump();
                match self.bump() {
                    Token::Int(n) if n >= 0 => offset = Some(n as usize),
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "expected non-negative integer after OFFSET, found {other:?}"
                        )))
                    }
                }
            }
        }

        if *self.peek() != Token::Eof {
            return Err(self.err("unexpected trailing input"));
        }

        Ok(Query { projection, distinct, wher, order_by, limit, offset })
    }

    fn parse_group(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect(Token::LBrace)?;
        let mut elements = Vec::new();
        loop {
            match self.peek().clone() {
                Token::RBrace => {
                    self.bump();
                    return Ok(GroupPattern { elements });
                }
                Token::Keyword(k) if k == "OPTIONAL" => {
                    self.bump();
                    let inner = self.parse_group()?;
                    elements.push(PatternElement::Optional(inner));
                }
                Token::Keyword(k) if k == "FILTER" => {
                    self.bump();
                    self.expect(Token::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(Token::RParen)?;
                    elements.push(PatternElement::Filter(expr));
                }
                Token::Eof => return Err(self.err("unterminated group (missing '}')")),
                _ => {
                    let s = self.parse_query_term()?;
                    let p = self.parse_query_term()?;
                    let o = self.parse_query_term()?;
                    elements.push(PatternElement::Triple(s, p, o));
                    // Triple terminator: '.' is required unless '}' follows.
                    match self.peek() {
                        Token::Dot => {
                            self.bump();
                        }
                        Token::RBrace => {}
                        other => {
                            return Err(SparqlError::Parse(format!(
                                "expected '.' or '}}' after triple, found {other:?}"
                            )))
                        }
                    }
                }
            }
        }
    }

    fn resolve_prefixed(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        match self.prefixes.get(prefix) {
            Some(base) => Ok(format!("{base}{local}")),
            None => Err(SparqlError::Parse(format!("unknown prefix '{prefix}:'"))),
        }
    }

    fn parse_query_term(&mut self) -> Result<QueryTerm, SparqlError> {
        match self.bump() {
            Token::Var(v) => Ok(QueryTerm::Var(v)),
            Token::Iri(i) => Ok(QueryTerm::Const(Term::Iri(i))),
            Token::Prefixed(p, l) => {
                Ok(QueryTerm::Const(Term::Iri(self.resolve_prefixed(&p, &l)?)))
            }
            Token::A => Ok(QueryTerm::Const(Term::iri(RDF_TYPE))),
            Token::Str(s) => Ok(QueryTerm::Const(Term::str(s))),
            Token::Int(i) => Ok(QueryTerm::Const(Term::int(i))),
            Token::Float(f) => Ok(QueryTerm::Const(Term::float(f))),
            Token::Bool(b) => Ok(QueryTerm::Const(Term::bool(b))),
            other => Err(SparqlError::Parse(format!("expected triple term, found {other:?}"))),
        }
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative
    // < unary < primary.
    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_cmp()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, SparqlError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek() {
            Token::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Token::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.bump() {
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(k) if k == "BOUND" => {
                self.expect(Token::LParen)?;
                let v = match self.bump() {
                    Token::Var(v) => v,
                    other => {
                        return Err(SparqlError::Parse(format!(
                            "BOUND expects a variable, found {other:?}"
                        )))
                    }
                };
                self.expect(Token::RParen)?;
                Ok(Expr::Bound(v))
            }
            Token::Var(v) => Ok(Expr::Var(v)),
            Token::Int(i) => Ok(Expr::Const(Term::int(i))),
            Token::Float(f) => Ok(Expr::Const(Term::float(f))),
            Token::Str(s) => Ok(Expr::Const(Term::str(s))),
            Token::Bool(b) => Ok(Expr::Const(Term::bool(b))),
            Token::Iri(i) => Ok(Expr::Const(Term::Iri(i))),
            Token::Prefixed(p, l) => Ok(Expr::Const(Term::Iri(self.resolve_prefixed(&p, &l)?))),
            other => Err(SparqlError::Parse(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?o . }").unwrap();
        assert_eq!(q.projection, Some(vec!["x".to_string()]));
        assert_eq!(q.wher.elements.len(), 1);
        assert!(!q.distinct);
    }

    #[test]
    fn prefixes_resolved_at_parse_time() {
        let q = parse_query("PREFIX scan: <http://x/scan#> SELECT ?a WHERE { ?a scan:eTime ?t . }")
            .unwrap();
        match &q.wher.elements[0] {
            PatternElement::Triple(_, QueryTerm::Const(Term::Iri(iri)), _) => {
                assert_eq!(iri, "http://x/scan#eTime");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn a_is_rdf_type() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://c/C> . }").unwrap();
        match &q.wher.elements[0] {
            PatternElement::Triple(_, QueryTerm::Const(Term::Iri(iri)), _) => {
                assert_eq!(iri, RDF_TYPE);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_modifier_stack() {
        let q = parse_query(
            "SELECT DISTINCT ?x ?y WHERE { ?x ?p ?y . } ORDER BY DESC(?y) ?x LIMIT 5 OFFSET 2",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn filter_precedence() {
        let q = parse_query("SELECT ?x WHERE { FILTER (?a + 2 * ?b < 10 && !(?c = 1)) }").unwrap();
        let PatternElement::Filter(e) = &q.wher.elements[0] else { panic!() };
        // Top level must be And.
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn optional_nesting() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x ?p ?y . OPTIONAL { ?y ?q ?z . OPTIONAL { ?z ?r ?w . } } }",
        )
        .unwrap();
        let PatternElement::Optional(inner) = &q.wher.elements[1] else { panic!() };
        assert!(matches!(inner.elements[1], PatternElement::Optional(_)));
    }

    #[test]
    fn from_clause_accepted() {
        let q = parse_query("SELECT ?x FROM <scan-wxing.owl> WHERE { ?x ?p ?o . }");
        assert!(q.is_ok());
    }

    #[test]
    fn last_triple_dot_optional() {
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o }").is_ok());
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("SELECT ?x WHERE { ?x ?p . }").is_err());
        assert!(parse_query("SELECT WHERE { ?x ?p ?o . }").is_err());
        assert!(parse_query("SELECT ?x { ?x ?p ?o . }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x unknown:p ?o . }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o . } LIMIT -1").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o . } garbage").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o . } ORDER BY").is_err());
    }

    #[test]
    fn bound_function() {
        let q = parse_query("SELECT ?x WHERE { FILTER (BOUND(?x)) }").unwrap();
        let PatternElement::Filter(Expr::Bound(v)) = &q.wher.elements[0] else { panic!() };
        assert_eq!(v, "x");
    }
}
