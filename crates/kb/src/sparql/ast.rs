//! Abstract syntax of the SPARQL subset.

use crate::term::Term;

/// A term position in a triple pattern: a concrete RDF term or a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryTerm {
    /// A concrete term (IRIs already resolved against the prologue's
    /// prefixes at parse time).
    Const(Term),
    /// A named variable (without the leading `?`).
    Var(String),
}

/// One element of a group graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A triple pattern `s p o .`
    Triple(QueryTerm, QueryTerm, QueryTerm),
    /// `OPTIONAL { … }` — left outer join.
    Optional(GroupPattern),
    /// `FILTER ( expr )` — solution constraint.
    Filter(Expr),
}

/// A `{ … }` group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    /// Elements in source order. Triples join left-to-right; filters apply
    /// to the group's solutions after all joins (per the SPARQL spec).
    pub elements: Vec<PatternElement>,
}

/// A filter / ORDER BY expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant literal or IRI.
    Const(Term),
    /// A variable reference.
    Var(String),
    /// `!e`
    Not(Box<Expr>),
    /// `-e`
    Neg(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `BOUND(?v)` — true if the variable is bound in the solution.
    Bound(String),
}

/// Binary operators, loosest first in the parser's precedence climb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression to sort by (usually a bare variable).
    pub expr: Expr,
    /// True for `DESC(...)`.
    pub descending: bool,
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projected variable names; `None` means `SELECT *`.
    pub projection: Option<Vec<String>>,
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// The `WHERE` group.
    pub wher: GroupPattern,
    /// `ORDER BY` keys, outermost first.
    pub order_by: Vec<SortKey>,
    /// `LIMIT`, if given.
    pub limit: Option<usize>,
    /// `OFFSET`, if given.
    pub offset: Option<usize>,
}

impl GroupPattern {
    /// Collects every variable mentioned in the group, in first-appearance
    /// order (used for `SELECT *`).
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        fn push(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
        fn walk_term(out: &mut Vec<String>, t: &QueryTerm) {
            if let QueryTerm::Var(v) = t {
                push(out, v);
            }
        }
        fn walk_group(out: &mut Vec<String>, g: &GroupPattern) {
            for el in &g.elements {
                match el {
                    PatternElement::Triple(s, p, o) => {
                        walk_term(out, s);
                        walk_term(out, p);
                        walk_term(out, o);
                    }
                    PatternElement::Optional(inner) => walk_group(out, inner),
                    PatternElement::Filter(_) => {}
                }
            }
        }
        walk_group(&mut out, self);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_in_first_appearance_order() {
        let g = GroupPattern {
            elements: vec![
                PatternElement::Triple(
                    QueryTerm::Var("b".into()),
                    QueryTerm::Const(Term::iri("http://p")),
                    QueryTerm::Var("a".into()),
                ),
                PatternElement::Optional(GroupPattern {
                    elements: vec![PatternElement::Triple(
                        QueryTerm::Var("b".into()),
                        QueryTerm::Var("c".into()),
                        QueryTerm::Const(Term::int(1)),
                    )],
                }),
            ],
        };
        assert_eq!(g.variables(), vec!["b", "a", "c"]);
    }
}
