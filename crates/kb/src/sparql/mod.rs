//! A SPARQL-subset query engine.
//!
//! The Data Broker issues `SELECT` queries with basic graph patterns,
//! `OPTIONAL` blocks, `FILTER` expressions, `ORDER BY` and `LIMIT`
//! (§III-A.1(ii) shows the prototype's GATK-instance query). This module
//! implements exactly that subset:
//!
//! ```text
//! query      := prologue SELECT [DISTINCT] (var+ | *) WHERE group modifiers
//! prologue   := (PREFIX name: <iri>)*
//! group      := '{' (triple '.' | OPTIONAL group | FILTER '(' expr ')')* '}'
//! triple     := term term term
//! term       := <iri> | prefixed:name | ?var | literal | 'a'
//! modifiers  := [ORDER BY (ASC|DESC)?(?var) ...] [LIMIT n] [OFFSET n]
//! ```
//!
//! Evaluation follows the SPARQL algebra: a basic graph pattern produces a
//! multiset of solution mappings via index nested-loop joins against the
//! [`TripleStore`](crate::store::TripleStore); `OPTIONAL` is a left outer
//! join; `FILTER` discards solutions whose expression is not
//! effective-boolean-true.

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::{Expr, GroupPattern, PatternElement, Query, QueryTerm, SortKey};
pub use eval::{Binding, QueryResults};
pub use lexer::{Lexer, Token};
pub use parser::parse_query;

use std::fmt;

/// Errors from parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error with byte offset.
    Lex(String, usize),
    /// Parse error.
    Parse(String),
    /// Evaluation error (e.g. unknown prefix).
    Eval(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex(m, at) => write!(f, "lexical error at byte {at}: {m}"),
            SparqlError::Parse(m) => write!(f, "parse error: {m}"),
            SparqlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use crate::term::Term;

    const NS: &str = "http://www.semanticweb.org/wxing/ontologies/scan-ontology#";

    /// Builds the store from the paper's §III-A.1 knowledge-base expansion
    /// example: four GATK instances with CPU / RAM / eTime /
    /// inputFileSize / steps datatype properties.
    fn paper_store() -> TripleStore {
        let mut st = TripleStore::new();
        let rows: [(&str, i64, i64, i64, i64, i64); 4] = [
            ("GATK1", 10, 1, 4, 180, 8),
            ("GATK2", 5, 1, 4, 200, 8),
            ("GATK3", 20, 1, 4, 280, 8),
            ("GATK4", 4, 1, 4, 80, 8),
        ];
        for (name, size, steps, ram, etime, cpu) in rows {
            let subj = format!("{NS}{name}");
            st.insert_terms(
                Term::iri(subj.clone()),
                Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                Term::iri(format!("{NS}Application")),
            );
            let mut prop = |p: &str, v: i64| {
                st.insert_terms(
                    Term::iri(subj.clone()),
                    Term::iri(format!("{NS}{p}")),
                    Term::int(v),
                );
            };
            prop("inputFileSize", size);
            prop("steps", steps);
            prop("RAM", ram);
            prop("eTime", etime);
            prop("CPU", cpu);
        }
        st
    }

    #[test]
    fn select_all_applications() {
        let st = paper_store();
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app WHERE { ?app a scan:Application . }",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn filter_and_order_by() {
        let st = paper_store();
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app ?t WHERE {
                 ?app a scan:Application .
                 ?app scan:eTime ?t .
                 FILTER (?t < 250)
             } ORDER BY ?t",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        let times: Vec<f64> =
            res.rows().iter().map(|r| r.get("t").unwrap().as_f64().unwrap()).collect();
        assert_eq!(times, vec![80.0, 180.0, 200.0]);
    }

    #[test]
    fn the_paper_ranking_query() {
        // The paper ranks GATK instances "according to the values of their
        // execution time and the size of input files" — i.e. per-GB time.
        let st = paper_store();
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app ?size ?t WHERE {
                 ?app a scan:Application .
                 ?app scan:inputFileSize ?size .
                 ?app scan:eTime ?t .
             } ORDER BY ASC(?t) LIMIT 2",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 2);
        let first = res.rows()[0].get("app").unwrap().as_iri().unwrap().to_string();
        assert!(first.ends_with("GATK4"));
    }

    #[test]
    fn optional_is_left_join() {
        let mut st = paper_store();
        // Give only GATK1 a "performance" annotation (as in Figure 2).
        st.insert_terms(
            Term::iri(format!("{NS}GATK1")),
            Term::iri(format!("{NS}performance")),
            Term::str("good"),
        );
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app ?perf WHERE {
                 ?app a scan:Application .
                 OPTIONAL { ?app scan:performance ?perf . }
             }",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 4, "optional must not drop unmatched rows");
        let bound = res.rows().iter().filter(|r| r.get("perf").is_some()).count();
        assert_eq!(bound, 1);
    }

    #[test]
    fn distinct_and_offset() {
        let st = paper_store();
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT DISTINCT ?ram WHERE { ?app scan:RAM ?ram . }",
        )
        .unwrap();
        assert_eq!(q.execute(&st).unwrap().len(), 1);

        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app WHERE { ?app a scan:Application . } ORDER BY ?app LIMIT 2 OFFSET 3",
        )
        .unwrap();
        assert_eq!(q.execute(&st).unwrap().len(), 1, "only one row after offset 3 of 4");
    }

    #[test]
    fn arithmetic_filter() {
        let st = paper_store();
        // Time-per-size ratio strictly under 20 → GATK1 (18) and GATK3
        // (14); GATK4 sits exactly at 20 and GATK2 at 40, both excluded.
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app WHERE {
                 ?app scan:eTime ?t .
                 ?app scan:inputFileSize ?d .
                 FILTER (?t / ?d < 20 && ?d > 1)
             } ORDER BY ?app",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res.rows()[0].get("app").unwrap().as_iri().unwrap().ends_with("GATK1"));
        assert!(res.rows()[1].get("app").unwrap().as_iri().unwrap().ends_with("GATK3"));
    }

    #[test]
    fn select_star_binds_all_vars() {
        let st = paper_store();
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT * WHERE { ?app scan:steps ?s . } LIMIT 1",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.variables(), &["app".to_string(), "s".to_string()]);
    }

    #[test]
    fn unknown_prefix_is_eval_error() {
        let q = parse_query("SELECT ?x WHERE { ?x nope:prop ?y . }");
        // Prefix resolution happens at parse time in this engine.
        assert!(matches!(q, Err(SparqlError::Parse(_))));
    }

    #[test]
    fn parse_error_reported() {
        assert!(parse_query("SELECT WHERE").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ?y }").is_err(), "triple needs 3 terms");
    }
}
