//! Query evaluation: solution mappings, joins, filters, modifiers.

use super::ast::{BinOp, Expr, GroupPattern, PatternElement, Query, QueryTerm, SortKey};
use super::SparqlError;
use crate::store::{PatternSlot, TriplePattern, TripleStore};
use crate::term::{Literal, NodeId, Term};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// One solution mapping: variable name → bound node.
pub type Solution = BTreeMap<String, NodeId>;

/// A resolved result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    vars: Vec<(String, Term)>,
}

impl Binding {
    /// The term bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.vars.iter().find(|(v, _)| v == var).map(|(_, t)| t)
    }

    /// Iterates over `(variable, term)` pairs in projection order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.vars.iter().map(|(v, t)| (v.as_str(), t))
    }
}

/// The result of executing a query: projected variables plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResults {
    variables: Vec<String>,
    rows: Vec<Binding>,
}

impl QueryResults {
    /// The projected variable names.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The result rows in final (ordered, sliced) order.
    pub fn rows(&self) -> &[Binding] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the query produced no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Convenience: the values of one column as `f64` (skipping rows where
    /// the variable is unbound or non-numeric).
    pub fn column_f64(&self, var: &str) -> Vec<f64> {
        self.rows.iter().filter_map(|r| r.get(var).and_then(Term::as_f64)).collect()
    }
}

/// Runtime value of a filter expression.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Iri(String),
    /// SPARQL type error: poisons comparisons, makes filters reject.
    Error,
}

impl Value {
    fn effective_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(x) => *x != 0.0 && !x.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Iri(_) | Value::Error => false,
        }
    }
}

impl Query {
    /// Executes the query against a store.
    pub fn execute(&self, store: &TripleStore) -> Result<QueryResults, SparqlError> {
        let solutions = eval_group(store, &self.wher, vec![Solution::new()])?;

        // Projection list: explicit or all variables in appearance order.
        let variables: Vec<String> = match &self.projection {
            Some(vars) => vars.clone(),
            None => self.wher.variables(),
        };

        // Order.
        let mut solutions = solutions;
        if !self.order_by.is_empty() {
            let keys = &self.order_by;
            solutions.sort_by(|a, b| compare_solutions(store, a, b, keys));
        }

        // Distinct (applied to the projected columns, preserving order).
        let mut rows: Vec<Binding> = Vec::with_capacity(solutions.len());
        let mut seen: std::collections::HashSet<Vec<Option<NodeId>>> =
            std::collections::HashSet::new();
        for sol in &solutions {
            let key: Vec<Option<NodeId>> = variables.iter().map(|v| sol.get(v).copied()).collect();
            if self.distinct && !seen.insert(key.clone()) {
                continue;
            }
            let vars = variables
                .iter()
                .zip(key)
                .filter_map(|(v, id)| id.map(|id| (v.clone(), store.resolve(id).clone())))
                .collect();
            rows.push(Binding { vars });
        }

        // Slice.
        let offset = self.offset.unwrap_or(0);
        let rows: Vec<Binding> =
            rows.into_iter().skip(offset).take(self.limit.unwrap_or(usize::MAX)).collect();

        Ok(QueryResults { variables, rows })
    }
}

/// Evaluates a group pattern given a set of input solutions.
fn eval_group(
    store: &TripleStore,
    group: &GroupPattern,
    input: Vec<Solution>,
) -> Result<Vec<Solution>, SparqlError> {
    let mut solutions = input;
    let mut filters: Vec<&Expr> = Vec::new();

    for el in &group.elements {
        match el {
            PatternElement::Triple(s, p, o) => {
                solutions = join_triple(store, &solutions, s, p, o);
            }
            PatternElement::Optional(inner) => {
                let mut next = Vec::with_capacity(solutions.len());
                for sol in solutions {
                    let extended = eval_group(store, inner, vec![sol.clone()])?;
                    if extended.is_empty() {
                        next.push(sol);
                    } else {
                        next.extend(extended);
                    }
                }
                solutions = next;
            }
            PatternElement::Filter(expr) => filters.push(expr),
        }
    }

    // Per SPARQL semantics, FILTERs constrain the whole group.
    for f in filters {
        solutions.retain(|sol| eval_expr(store, f, sol).effective_bool());
    }
    Ok(solutions)
}

/// Index nested-loop join of `solutions` with one triple pattern.
fn join_triple(
    store: &TripleStore,
    solutions: &[Solution],
    s: &QueryTerm,
    p: &QueryTerm,
    o: &QueryTerm,
) -> Vec<Solution> {
    let mut out = Vec::new();
    for sol in solutions {
        let slot = |qt: &QueryTerm| -> Option<PatternSlot> {
            match qt {
                QueryTerm::Var(v) => match sol.get(v) {
                    Some(&id) => Some(PatternSlot::Bound(id)),
                    None => Some(PatternSlot::Any),
                },
                QueryTerm::Const(t) => {
                    // A constant not present in the store matches nothing.
                    lookup_term(store, t).map(PatternSlot::Bound)
                }
            }
        };
        let (Some(ss), Some(ps), Some(os)) = (slot(s), slot(p), slot(o)) else {
            continue;
        };
        for (ts, tp, to) in store.matching(TriplePattern { s: ss, p: ps, o: os }) {
            let mut next = sol.clone();
            let mut ok = true;
            for (qt, id) in [(s, ts), (p, tp), (o, to)] {
                if let QueryTerm::Var(v) = qt {
                    match next.get(v) {
                        Some(&bound) if bound != id => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            next.insert(v.clone(), id);
                        }
                    }
                }
            }
            if ok {
                out.push(next);
            }
        }
    }
    out
}

fn lookup_term(store: &TripleStore, t: &Term) -> Option<NodeId> {
    match t {
        Term::Iri(s) => store.nodes().lookup_iri(s),
        Term::Literal(l) => store.nodes().lookup_literal(l),
        Term::Blank(_) => None,
    }
}

fn term_value(term: &Term) -> Value {
    match term {
        Term::Iri(s) => Value::Iri(s.clone()),
        Term::Blank(_) => Value::Error,
        Term::Literal(Literal::Str(s)) => Value::Str(s.clone()),
        Term::Literal(Literal::Int(i)) => Value::Num(*i as f64),
        Term::Literal(Literal::Float(f)) => Value::Num(*f),
        Term::Literal(Literal::Bool(b)) => Value::Bool(*b),
    }
}

fn eval_expr(store: &TripleStore, expr: &Expr, sol: &Solution) -> Value {
    match expr {
        Expr::Const(t) => term_value(t),
        Expr::Var(v) => match sol.get(v) {
            Some(&id) => term_value(store.resolve(id)),
            None => Value::Error,
        },
        Expr::Bound(v) => Value::Bool(sol.contains_key(v)),
        Expr::Not(e) => Value::Bool(!eval_expr(store, e, sol).effective_bool()),
        Expr::Neg(e) => match eval_expr(store, e, sol) {
            Value::Num(x) => Value::Num(-x),
            _ => Value::Error,
        },
        Expr::Binary(op, l, r) => {
            let lv = eval_expr(store, l, sol);
            match op {
                BinOp::And => {
                    // Short-circuit on effective boolean values.
                    if !lv.effective_bool() {
                        return Value::Bool(false);
                    }
                    Value::Bool(eval_expr(store, r, sol).effective_bool())
                }
                BinOp::Or => {
                    if lv.effective_bool() {
                        return Value::Bool(true);
                    }
                    Value::Bool(eval_expr(store, r, sol).effective_bool())
                }
                _ => {
                    let rv = eval_expr(store, r, sol);
                    eval_binary(*op, lv, rv)
                }
            }
        }
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Value {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => match (l, r) {
            (Value::Num(a), Value::Num(b)) => {
                let x = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => {
                        if b == 0.0 {
                            return Value::Error;
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                Value::Num(x)
            }
            _ => Value::Error,
        },
        Eq | Ne => {
            let eq = match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => a == b,
                (Value::Str(a), Value::Str(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                (Value::Iri(a), Value::Iri(b)) => a == b,
                (Value::Error, _) | (_, Value::Error) => return Value::Error,
                _ => false,
            };
            Value::Bool(if op == Eq { eq } else { !eq })
        }
        Lt | Le | Gt | Ge => {
            let ord = match (&l, &r) {
                (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
                (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
                _ => None,
            };
            match ord {
                None => Value::Error,
                Some(ord) => Value::Bool(match op {
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                }),
            }
        }
        And | Or => unreachable!("handled in eval_expr"),
    }
}

/// Total order over solutions for ORDER BY: unbound sorts first, then by
/// type (booleans < numbers < strings < IRIs), then by value.
fn compare_solutions(
    store: &TripleStore,
    a: &Solution,
    b: &Solution,
    keys: &[SortKey],
) -> Ordering {
    for key in keys {
        let va = eval_expr(store, &key.expr, a);
        let vb = eval_expr(store, &key.expr, b);
        let ord = compare_values(&va, &vb);
        let ord = if key.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Error => 0,
        Value::Bool(_) => 1,
        Value::Num(_) => 2,
        Value::Str(_) => 3,
        Value::Iri(_) => 4,
    }
}

fn compare_values(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (type_rank(a), type_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Num(x), Value::Num(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Iri(x), Value::Iri(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parse_query;

    fn demo_store() -> TripleStore {
        let mut st = TripleStore::new();
        for (s, age) in [("alice", 30), ("bob", 25), ("carol", 35)] {
            st.insert_terms(
                Term::iri(format!("http://p/{s}")),
                Term::iri("http://p/age"),
                Term::int(age),
            );
        }
        st.insert_terms(
            Term::iri("http://p/alice"),
            Term::iri("http://p/knows"),
            Term::iri("http://p/bob"),
        );
        st
    }

    #[test]
    fn join_shares_variables() {
        let st = demo_store();
        // Who does alice know, and how old are they?
        let q = parse_query(
            "SELECT ?who ?age WHERE {
                <http://p/alice> <http://p/knows> ?who .
                ?who <http://p/age> ?age .
            }",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res.rows()[0].get("age").unwrap().as_f64(), Some(25.0));
    }

    #[test]
    fn constant_not_in_store_matches_nothing() {
        let st = demo_store();
        let q = parse_query("SELECT ?x WHERE { ?x <http://p/missing> 1 . }").unwrap();
        assert!(q.execute(&st).unwrap().is_empty());
    }

    #[test]
    fn repeated_variable_must_agree() {
        let mut st = demo_store();
        st.insert_terms(
            Term::iri("http://p/alice"),
            Term::iri("http://p/knows"),
            Term::iri("http://p/alice"),
        );
        // ?x knows ?x — only the self-loop qualifies.
        let q = parse_query("SELECT ?x WHERE { ?x <http://p/knows> ?x . }").unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 1);
        assert!(res.rows()[0].get("x").unwrap().as_iri().unwrap().ends_with("alice"));
    }

    #[test]
    fn filter_division_by_zero_rejects() {
        let st = demo_store();
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://p/age> ?a . FILTER (?a / 0 > 1) }").unwrap();
        assert!(q.execute(&st).unwrap().is_empty());
    }

    #[test]
    fn filter_unbound_var_rejects() {
        let st = demo_store();
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://p/age> ?a . FILTER (?nope > 1) }").unwrap();
        assert!(q.execute(&st).unwrap().is_empty());
    }

    #[test]
    fn bound_in_optional() {
        let st = demo_store();
        let q = parse_query(
            "SELECT ?x WHERE {
                ?x <http://p/age> ?a .
                OPTIONAL { ?x <http://p/knows> ?k . }
                FILTER (!BOUND(?k))
            } ORDER BY ?x",
        )
        .unwrap();
        let res = q.execute(&st).unwrap();
        // bob and carol know nobody.
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn order_by_descending_and_column() {
        let st = demo_store();
        let q =
            parse_query("SELECT ?a WHERE { ?x <http://p/age> ?a . } ORDER BY DESC(?a)").unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.column_f64("a"), vec![35.0, 30.0, 25.0]);
    }

    #[test]
    fn order_by_expression() {
        let st = demo_store();
        // Sort by negated age == ascending by -age == descending by age.
        let q =
            parse_query("SELECT ?a WHERE { ?x <http://p/age> ?a . } ORDER BY ASC(0 - ?a)").unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.column_f64("a"), vec![35.0, 30.0, 25.0]);
    }

    #[test]
    fn string_comparison_filters() {
        let mut st = TripleStore::new();
        st.insert_terms(Term::iri("http://x/i"), Term::iri("http://x/perf"), Term::str("good"));
        st.insert_terms(Term::iri("http://x/j"), Term::iri("http://x/perf"), Term::str("bad"));
        let q = parse_query("SELECT ?s WHERE { ?s <http://x/perf> ?p . FILTER (?p = \"good\") }")
            .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn arithmetic_in_filters() {
        let st = demo_store();
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://p/age> ?a . FILTER (?a * 2 - 10 >= 50) }")
                .unwrap();
        let res = q.execute(&st).unwrap();
        assert_eq!(res.len(), 2); // 30 and 35
    }

    #[test]
    fn short_circuit_or() {
        let st = demo_store();
        // Left side true → right side's type error never poisons it.
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://p/age> ?a . FILTER (?a > 0 || ?nope / 0 = 1) }",
        )
        .unwrap();
        assert_eq!(q.execute(&st).unwrap().len(), 3);
    }
}
