//! Hand-rolled lexer for the SPARQL subset.

use super::SparqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword, upper-cased (`SELECT`, `WHERE`, `PREFIX`, …).
    Keyword(String),
    /// `?name` variable.
    Var(String),
    /// `<…>` absolute IRI.
    Iri(String),
    /// `prefix:local` name (prefix may be empty).
    Prefixed(String, String),
    /// The `a` shorthand for `rdf:type`.
    A,
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<` (in expression context; the lexer emits `Lt` only when the
    /// character cannot start an IRI)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "WHERE", "PREFIX", "FROM", "OPTIONAL", "FILTER", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "DISTINCT", "BOUND",
];

/// Tokenises a query string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Tokenises the whole input (appends `Eof`).
    pub fn tokenize(mut self) -> Result<Vec<Token>, SparqlError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn err(&self, msg: &str) -> SparqlError {
        SparqlError::Lex(msg.to_string(), self.pos)
    }

    fn next_token(&mut self) -> Result<Token, SparqlError> {
        self.skip_ws_and_comments();
        let Some(c) = self.peek() else {
            return Ok(Token::Eof);
        };
        match c {
            b'{' => {
                self.pos += 1;
                Ok(Token::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(Token::RBrace)
            }
            b'(' => {
                self.pos += 1;
                Ok(Token::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Token::RParen)
            }
            b'.' => {
                self.pos += 1;
                Ok(Token::Dot)
            }
            b'*' => {
                self.pos += 1;
                Ok(Token::Star)
            }
            b'/' => {
                self.pos += 1;
                Ok(Token::Slash)
            }
            b'+' => {
                self.pos += 1;
                Ok(Token::Plus)
            }
            b'-' => {
                self.pos += 1;
                Ok(Token::Minus)
            }
            b'=' => {
                self.pos += 1;
                Ok(Token::Eq)
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok(Token::Ne)
                } else {
                    Ok(Token::Bang)
                }
            }
            b'&' => {
                self.pos += 1;
                if self.bump() == Some(b'&') {
                    Ok(Token::AndAnd)
                } else {
                    Err(self.err("expected '&&'"))
                }
            }
            b'|' => {
                self.pos += 1;
                if self.bump() == Some(b'|') {
                    Ok(Token::OrOr)
                } else {
                    Err(self.err("expected '||'"))
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok(Token::Ge)
                } else {
                    Ok(Token::Gt)
                }
            }
            b'<' => self.lex_lt_or_iri(),
            b'?' | b'$' => {
                self.pos += 1;
                let name = self.lex_name();
                if name.is_empty() {
                    Err(self.err("empty variable name"))
                } else {
                    Ok(Token::Var(name))
                }
            }
            b'"' | b'\'' => self.lex_string(c),
            c if c.is_ascii_digit() => self.lex_number(false),
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            _ => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    /// `<` starts either an IRI (`<http://…>`) or the less-than operator.
    fn lex_lt_or_iri(&mut self) -> Result<Token, SparqlError> {
        // An IRI here has no whitespace before the closing '>'.
        let start = self.pos;
        self.pos += 1;
        if self.peek() == Some(b'=') {
            self.pos += 1;
            return Ok(Token::Le);
        }
        // Scan ahead: if we find '>' before whitespace, it's an IRI.
        let mut i = self.pos;
        while let Some(&c) = self.src.get(i) {
            if c == b'>' {
                let iri = std::str::from_utf8(&self.src[self.pos..i])
                    .map_err(|_| self.err("IRI is not valid UTF-8"))?
                    .to_string();
                self.pos = i + 1;
                return Ok(Token::Iri(iri));
            }
            if c.is_ascii_whitespace() {
                break;
            }
            i += 1;
        }
        self.pos = start + 1;
        Ok(Token::Lt)
    }

    fn lex_string(&mut self, quote: u8) -> Result<Token, SparqlError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(c) if c == quote => return Ok(Token::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(c) if c == quote => out.push(c as char),
                    _ => return Err(self.err("bad escape in string literal")),
                },
                Some(c) => out.push(c as char),
            }
        }
    }

    fn lex_number(&mut self, negative: bool) -> Result<Token, SparqlError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are UTF-8");
        let sign = if negative { -1.0 } else { 1.0 };
        if is_float {
            text.parse::<f64>()
                .map(|f| Token::Float(sign * f))
                .map_err(|_| self.err("bad float literal"))
        } else {
            text.parse::<i64>()
                .map(|i| Token::Int(if negative { -i } else { i }))
                .map_err(|_| self.err("bad integer literal"))
        }
    }

    fn lex_name(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos]).expect("name bytes are ASCII").to_string()
    }

    fn lex_word(&mut self) -> Result<Token, SparqlError> {
        let word = self.lex_name();
        // Prefixed name?
        if self.peek() == Some(b':') {
            self.pos += 1;
            let local = self.lex_name();
            return Ok(Token::Prefixed(word, local));
        }
        let upper = word.to_ascii_uppercase();
        if word == "a" {
            return Ok(Token::A);
        }
        if upper == "TRUE" {
            return Ok(Token::Bool(true));
        }
        if upper == "FALSE" {
            return Ok(Token::Bool(false));
        }
        if KEYWORDS.contains(&upper.as_str()) {
            return Ok(Token::Keyword(upper));
        }
        Err(self.err(&format!("unknown word '{word}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s).tokenize().unwrap()
    }

    #[test]
    fn keywords_and_vars() {
        let toks = lex("SELECT ?x WHERE");
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Var("x".into()),
                Token::Keyword("WHERE".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        assert_eq!(lex("<http://x/a>")[0], Token::Iri("http://x/a".into()));
        assert_eq!(lex("< 5")[0], Token::Lt);
        assert_eq!(lex("<= 5")[0], Token::Le);
        // `?t < 250` — the classic ambiguity the two-token lookahead solves.
        let toks = lex("?t < 250");
        assert_eq!(toks, vec![Token::Var("t".into()), Token::Lt, Token::Int(250), Token::Eof]);
    }

    #[test]
    fn prefixed_names() {
        assert_eq!(lex("scan:GATK1")[0], Token::Prefixed("scan".into(), "GATK1".into()));
        assert_eq!(lex("scan:eTime")[0], Token::Prefixed("scan".into(), "eTime".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42")[0], Token::Int(42));
        assert_eq!(lex("2.5")[0], Token::Float(2.5));
        assert_eq!(lex("1e3")[0], Token::Float(1000.0));
        // A dot after digits that is NOT followed by a digit is a triple
        // terminator, not a decimal point.
        let toks = lex("42 .");
        assert_eq!(toks, vec![Token::Int(42), Token::Dot, Token::Eof]);
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(lex(r#""hello""#)[0], Token::Str("hello".into()));
        assert_eq!(lex(r#""a\nb""#)[0], Token::Str("a\nb".into()));
        assert_eq!(lex("'single'")[0], Token::Str("single".into()));
    }

    #[test]
    fn operators() {
        let toks = lex("&& || ! != = >= > <=");
        assert_eq!(
            toks,
            vec![
                Token::AndAnd,
                Token::OrOr,
                Token::Bang,
                Token::Ne,
                Token::Eq,
                Token::Ge,
                Token::Gt,
                Token::Le,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("SELECT # a comment\n ?x");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn the_a_keyword() {
        assert_eq!(lex("a")[0], Token::A);
    }

    #[test]
    fn errors() {
        assert!(Lexer::new("\"unterminated").tokenize().is_err());
        assert!(Lexer::new("&x").tokenize().is_err());
        assert!(Lexer::new("@").tokenize().is_err());
        assert!(Lexer::new("wut").tokenize().is_err());
    }
}
