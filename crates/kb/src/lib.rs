//! # scan-kb — the SCAN knowledge base
//!
//! The paper's Data Broker decides how to shard genomic inputs by querying
//! an OWL/RDF ontology ("the SCAN knowledge-base") with SPARQL (§III-A.1).
//! The original prototype used Jena and Protégé; this crate implements the
//! required subset from scratch:
//!
//! * [`term`] — RDF terms (IRIs, literals, blank nodes) behind a node
//!   interner, so triples are three `u32`s in the hot path.
//! * [`store`] — an indexed triple store (SPO / POS / OSP orderings) with
//!   pattern matching over any combination of bound positions.
//! * [`sparql`] — a SPARQL-subset engine: lexer, recursive-descent parser
//!   and a solution-sequence evaluator supporting `SELECT [DISTINCT]`,
//!   basic graph patterns, `OPTIONAL`, `FILTER`, `ORDER BY`, `LIMIT` and
//!   `OFFSET` — exactly the operations the Data Broker issues.
//! * [`ontology`] — the SCAN semantic model of §II-C: a domain ontology
//!   (bio-applications, data formats), a cloud ontology (tiers, instance
//!   shapes) and the SCAN linker joining them, plus lightweight RDFS
//!   reasoning (transitive `rdfs:subClassOf`, type inheritance).
//! * [`profile`] — ingestion of task profiling logs as OWL-style named
//!   individuals (the paper's `GATK1`…`GATK4` instances).
//! * [`regression`] — least-squares fits recovering the per-stage linear
//!   coefficients `a_i, b_i` and the Amdahl fraction `c_i` from profiles.
//! * [`advice`] — the query layer the Data Broker and Scheduler actually
//!   consume: chunk-size recommendations and learned stage models.
//! * [`turtle`] — Turtle-format persistence: save/reload the ontology and
//!   its profiling instances across sessions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod ontology;
pub mod profile;
pub mod regression;
pub mod sparql;
pub mod store;
pub mod term;
pub mod turtle;

pub use advice::{ChunkAdvice, KnowledgeBase, StageModelEstimate};
pub use ontology::{Ontology, ScanVocabulary};
pub use profile::ProfileRecord;
pub use regression::{amdahl_fit, linear_fit, AmdahlFit, LinearFit};
pub use sparql::{parse_query, QueryResults, SparqlError};
pub use store::{TriplePattern, TripleStore};
pub use term::{Literal, NodeId, Term};
pub use turtle::{from_turtle, merge_turtle, to_turtle, TurtleError};
