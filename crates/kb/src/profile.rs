//! Profiling-log ingestion: task logs become OWL-style named individuals.
//!
//! "The knowledge-base is initially created by profiling some of the most
//! common genome applications … After that, the knowledge base will be
//! expanded by using information from logs of each task running on the
//! SCAN platform." (§III-A.1)
//!
//! Each [`ProfileRecord`] mirrors the paper's RDF snippets — a named
//! individual like `GATK2` carrying `inputFileSize`, `steps`, `CPU`, `RAM`
//! and `eTime` datatype properties.

use crate::ontology::Ontology;
use crate::term::{NodeId, Term};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// One observed task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Application (class) name: `GATK`, `BWA`, `MaxQuant`, … Borrowed
    /// for the static names the simulator emits on its hot path (no
    /// per-record allocation), owned when read back from the store.
    pub application: Cow<'static, str>,
    /// 1-based pipeline stage index (the paper's `steps` property).
    pub stage: u32,
    /// Input data size in GB (the paper's `inputFileSize`).
    pub input_gb: f64,
    /// Threads the task ran with (stored under the `CPU` property).
    pub threads: u32,
    /// Main memory used, GB.
    pub ram_gb: f64,
    /// Measured execution time (the paper's `eTime`), in time units.
    pub e_time: f64,
}

impl ProfileRecord {
    /// Convenience constructor for single-threaded GATK observations.
    pub fn gatk(stage: u32, input_gb: f64, e_time: f64) -> Self {
        ProfileRecord {
            application: Cow::Borrowed("GATK"),
            stage,
            input_gb,
            threads: 1,
            ram_gb: 4.0,
            e_time,
        }
    }
}

impl Ontology {
    /// Ingests one profiling record as a fresh named individual
    /// (`GATK1`, `GATK2`, …) with the paper's datatype properties, and
    /// returns its node.
    pub fn ingest_profile(&mut self, rec: &ProfileRecord) -> NodeId {
        let class =
            self.lookup_class(&rec.application).unwrap_or_else(|| self.class(&rec.application));
        let id = self.fresh_individual(&rec.application, class);
        let v = *self.vocab();
        // Also type it as an Application instance, as in the paper's
        // `<rdf:type rdf:resource="&scan-ontology;Application"/>` rows.
        self.store_mut().insert(id, v.rdf_type, v.application);
        self.store_mut().set_property(id, v.input_file_size, Term::float(rec.input_gb));
        self.store_mut().set_property(id, v.steps, Term::int(rec.stage as i64));
        self.store_mut().set_property(id, v.cpu, Term::int(rec.threads as i64));
        self.store_mut().set_property(id, v.ram, Term::float(rec.ram_gb));
        self.store_mut().set_property(id, v.e_time, Term::float(rec.e_time));
        id
    }

    /// Reads back every ingested profile of `application` (any stage).
    pub fn profiles_of(&self, application: &str) -> Vec<ProfileRecord> {
        let Some(class) = self.lookup_class(application) else {
            return Vec::new();
        };
        let v = *self.vocab();
        let mut out = Vec::new();
        for id in self.instances_of(class) {
            let (Some(input_gb), Some(stage), Some(threads), Some(e_time)) = (
                self.store().number(id, v.input_file_size),
                self.store().number(id, v.steps),
                self.store().number(id, v.cpu),
                self.store().number(id, v.e_time),
            ) else {
                continue; // skip partially-described individuals
            };
            let ram_gb = self.store().number(id, v.ram).unwrap_or(0.0);
            out.push(ProfileRecord {
                application: Cow::Owned(application.to_string()),
                stage: stage as u32,
                input_gb,
                threads: threads as u32,
                ram_gb,
                e_time,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparql::parse_query;

    #[test]
    fn ingest_then_read_back() {
        let mut o = Ontology::with_scan_schema();
        let rec = ProfileRecord {
            application: "GATK".into(),
            stage: 1,
            input_gb: 10.0,
            threads: 8,
            ram_gb: 4.0,
            e_time: 180.0,
        };
        o.ingest_profile(&rec);
        let back = o.profiles_of("GATK");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], rec);
    }

    #[test]
    fn paper_knowledge_base_expansion() {
        // The four GATK instances from the paper's §III-A.1 example.
        let mut o = Ontology::with_scan_schema();
        for (size, etime) in [(10.0, 180.0), (5.0, 200.0), (20.0, 280.0), (4.0, 80.0)] {
            o.ingest_profile(&ProfileRecord {
                application: "GATK".into(),
                stage: 1,
                input_gb: size,
                threads: 8,
                ram_gb: 4.0,
                e_time: etime,
            });
        }
        assert_eq!(o.profiles_of("GATK").len(), 4);

        // And the paper's ranking query works over the ingested data.
        let q = parse_query(
            "PREFIX scan: <http://www.semanticweb.org/wxing/ontologies/scan-ontology#>
             SELECT ?app ?size ?t WHERE {
                 ?app a scan:Application .
                 ?app scan:inputFileSize ?size .
                 ?app scan:eTime ?t .
             } ORDER BY ASC(?t / ?size)",
        )
        .unwrap();
        let res = q.execute(o.store()).unwrap();
        assert_eq!(res.len(), 4);
        // Best time-per-GB is GATK3 (280/20 = 14).
        let first = res.rows()[0].get("app").unwrap().as_iri().unwrap().to_string();
        assert!(first.ends_with("GATK3"), "{first}");
    }

    #[test]
    fn unknown_application_creates_class() {
        let mut o = Ontology::with_scan_schema();
        o.ingest_profile(&ProfileRecord {
            application: "NovelTool".into(),
            stage: 2,
            input_gb: 1.0,
            threads: 2,
            ram_gb: 8.0,
            e_time: 42.0,
        });
        assert_eq!(o.profiles_of("NovelTool").len(), 1);
    }

    #[test]
    fn profiles_of_missing_app_is_empty() {
        let o = Ontology::with_scan_schema();
        assert!(o.profiles_of("Nonexistent").is_empty());
    }

    #[test]
    fn partial_individual_skipped() {
        let mut o = Ontology::with_scan_schema();
        let gatk = o.lookup_class("GATK").unwrap();
        // An individual with no eTime (e.g. a still-running task).
        let id = o.fresh_individual("GATK", gatk);
        let v = *o.vocab();
        o.store_mut().set_property(id, v.input_file_size, Term::float(2.0));
        assert!(o.profiles_of("GATK").is_empty());
    }
}
