//! The knowledge-base facade consumed by the Data Broker and Scheduler.
//!
//! Two decisions come out of the knowledge base (§III-A.1(ii)):
//!
//! 1. **Chunk size** — "the Data Broker will query the SCAN knowledge-base
//!    to decide the suitable chunk size of input files of tasks". We rank
//!    ingested application instances by execution time per GB with a real
//!    SPARQL query (the engine in [`crate::sparql`]) and recommend the
//!    input size of the most efficient observation, clamped to a sane
//!    range. With no observations, the paper's default of 2 GB is used
//!    ("In our case, the inputs will be 2GB for each task").
//! 2. **Stage models** — the scheduler's ETT estimator needs per-stage
//!    `a, b, c` coefficients. These are *learned* from the ingested
//!    profiles by least squares ([`crate::regression`]), not read from the
//!    paper's table, so the platform genuinely runs on knowledge-base
//!    output.

use crate::ontology::{iri, Ontology};
use crate::profile::ProfileRecord;
use crate::regression::{amdahl_fit, linear_fit};
use crate::sparql::parse_query;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sharding advice for one application's input data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkAdvice {
    /// Recommended chunk size in GB.
    pub chunk_gb: f64,
    /// Number of shards for the given total input size.
    pub shards: u32,
    /// Suggested CPU cores per task, from the best-ranked instance.
    pub cpu: u32,
    /// Suggested RAM (GB) per task.
    pub ram_gb: f64,
    /// True when the advice came from ingested profiles rather than the
    /// built-in default.
    pub informed: bool,
}

/// A learned per-stage performance model: `E(d) = a·d + b`, threaded via
/// Amdahl fraction `c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageModelEstimate {
    /// Linear coefficient (time per GB).
    pub a: f64,
    /// Constant term.
    pub b: f64,
    /// Amdahl parallelisable fraction.
    pub c: f64,
    /// R² of the (d, time) fit.
    pub r_squared_linear: f64,
    /// R² of the threading fit.
    pub r_squared_amdahl: f64,
    /// Observations used.
    pub observations: usize,
}

impl StageModelEstimate {
    /// Single-threaded execution time at input size `d` GB.
    pub fn exec_time(&self, d_gb: f64) -> f64 {
        (self.a * d_gb + self.b).max(0.0)
    }

    /// Threaded execution time with `t` threads at input size `d` GB
    /// (the paper's `T_i(t, d) = c·E_i(d)/t + (1−c)·E_i(d)`).
    pub fn threaded_time(&self, threads: u32, d_gb: f64) -> f64 {
        assert!(threads >= 1);
        let e = self.exec_time(d_gb);
        self.c * e / threads as f64 + (1.0 - self.c) * e
    }
}

/// The paper's default chunk size, GB.
pub const DEFAULT_CHUNK_GB: f64 = 2.0;

/// Bounds on recommended chunk sizes (§II-A.3: GATK operates best around
/// 2 GB; whole-genome inputs of 100 GB+ must be sharded).
const MIN_CHUNK_GB: f64 = 0.25;
const MAX_CHUNK_GB: f64 = 16.0;

/// The SCAN knowledge base: an [`Ontology`] plus the decision layer.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    ontology: Ontology,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    /// A knowledge base seeded with the SCAN schema (domain + cloud
    /// ontologies and linker) but no profiling instances.
    pub fn new() -> Self {
        KnowledgeBase { ontology: Ontology::with_scan_schema() }
    }

    /// Read access to the ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Mutable access to the ontology (tests, custom schema extensions).
    pub fn ontology_mut(&mut self) -> &mut Ontology {
        &mut self.ontology
    }

    /// Ingests a task log record ("the SCAN keeps the log information of
    /// each task scheduled to run in a cloud").
    pub fn ingest(&mut self, record: &ProfileRecord) {
        self.ontology.ingest_profile(record);
    }

    /// Number of ingested profile individuals for `application`.
    pub fn profile_count(&self, application: &str) -> usize {
        self.ontology.profiles_of(application).len()
    }

    /// Chunk-size advice for splitting `total_gb` of input for
    /// `application`, via a SPARQL ranking query over the ingested
    /// instances.
    pub fn advise_chunk(&self, application: &str, total_gb: f64) -> ChunkAdvice {
        assert!(total_gb > 0.0, "advise_chunk requires a positive input size");

        // The Data Broker's query, ranked by time-per-GB ascending — the
        // paper's "selected GATK instances are ranked according to the
        // values of their execution time and the size of input files".
        let query_text = format!(
            "PREFIX scan: <{ns}>
             SELECT ?app ?size ?t ?cpu ?ram WHERE {{
                 ?app a scan:Application .
                 ?app scan:inputFileSize ?size .
                 ?app scan:eTime ?t .
                 ?app scan:CPU ?cpu .
                 OPTIONAL {{ ?app scan:RAM ?ram . }}
                 FILTER (?size > 0 && ?t > 0)
             }} ORDER BY ASC(?t / ?size) LIMIT 25",
            ns = iri::SCAN_NS
        );
        let query = parse_query(&query_text).expect("advise_chunk query is well-formed");
        let results = query.execute(self.ontology.store()).expect("query evaluates");

        // Keep only instances of the requested application class (the
        // SPARQL subset has no subclass inference in the pattern itself).
        let app_iri_stem = format!("{}{}", iri::SCAN_NS, application);
        let best = results.rows().iter().find(|row| {
            row.get("app")
                .and_then(|t| t.as_iri())
                .is_some_and(|iri| iri.starts_with(&app_iri_stem))
        });

        match best {
            Some(row) => {
                let chunk = row.get("size").and_then(|t| t.as_f64()).unwrap_or(DEFAULT_CHUNK_GB);
                let chunk = chunk.clamp(MIN_CHUNK_GB, MAX_CHUNK_GB);
                let cpu = row.get("cpu").and_then(|t| t.as_f64()).unwrap_or(1.0) as u32;
                let ram_gb = row.get("ram").and_then(|t| t.as_f64()).unwrap_or(4.0);
                ChunkAdvice {
                    chunk_gb: chunk,
                    shards: shards_for(total_gb, chunk),
                    cpu: cpu.max(1),
                    ram_gb,
                    informed: true,
                }
            }
            None => ChunkAdvice {
                chunk_gb: DEFAULT_CHUNK_GB,
                shards: shards_for(total_gb, DEFAULT_CHUNK_GB),
                cpu: 1,
                ram_gb: 4.0,
                informed: false,
            },
        }
    }

    /// Learns the `E(d) = a·d + b`, Amdahl-`c` model of one pipeline stage
    /// of `application` from ingested profiles. Returns `None` until
    /// enough observations exist (≥ 2 distinct single-thread sizes).
    pub fn stage_model(&self, application: &str, stage: u32) -> Option<StageModelEstimate> {
        let profiles: Vec<ProfileRecord> = self
            .ontology
            .profiles_of(application)
            .into_iter()
            .filter(|p| p.stage == stage)
            .collect();
        if profiles.is_empty() {
            return None;
        }

        // (a, b) from single-threaded observations.
        let single: Vec<(f64, f64)> =
            profiles.iter().filter(|p| p.threads == 1).map(|p| (p.input_gb, p.e_time)).collect();
        let lin = linear_fit(&single)?;

        // c from multi-threaded observations, normalised by predicted E(d):
        // T/E(d) = c/t + (1−c), linear in 1/t.
        let mut normalised: Vec<(u32, f64)> = Vec::new();
        for p in &profiles {
            let e = lin.predict(p.input_gb);
            if e > 1e-9 {
                normalised.push((p.threads, p.e_time / e));
            }
        }
        let c = match amdahl_fit(&normalised) {
            Some(fit) => fit,
            // All observations single-threaded → assume serial (c = 0).
            None => crate::regression::AmdahlFit {
                c: 0.0,
                single_thread_time: 1.0,
                r_squared: 1.0,
                n: normalised.len(),
            },
        };

        Some(StageModelEstimate {
            a: lin.slope,
            b: lin.intercept,
            c: c.c,
            r_squared_linear: lin.r_squared,
            r_squared_amdahl: c.r_squared,
            observations: profiles.len(),
        })
    }

    /// Learns models for stages `1..=n_stages`, keyed by stage index.
    pub fn stage_models(
        &self,
        application: &str,
        n_stages: u32,
    ) -> BTreeMap<u32, StageModelEstimate> {
        (1..=n_stages).filter_map(|s| self.stage_model(application, s).map(|m| (s, m))).collect()
    }
}

/// Number of shards needed to cover `total_gb` at `chunk_gb` per shard.
pub fn shards_for(total_gb: f64, chunk_gb: f64) -> u32 {
    assert!(chunk_gb > 0.0);
    (total_gb / chunk_gb).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb_with_paper_instances() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        // §III-A.1's GATK1..GATK4, all at 8 threads, stage 1.
        for (size, etime) in [(10.0, 180.0), (5.0, 200.0), (20.0, 280.0), (4.0, 80.0)] {
            kb.ingest(&ProfileRecord {
                application: "GATK".into(),
                stage: 1,
                input_gb: size,
                threads: 8,
                ram_gb: 4.0,
                e_time: etime,
            });
        }
        kb
    }

    #[test]
    fn uninformed_advice_uses_paper_default() {
        let kb = KnowledgeBase::new();
        let advice = kb.advise_chunk("GATK", 100.0);
        assert!(!advice.informed);
        assert_eq!(advice.chunk_gb, 2.0);
        assert_eq!(advice.shards, 50);
    }

    #[test]
    fn informed_advice_picks_best_time_per_gb() {
        let kb = kb_with_paper_instances();
        let advice = kb.advise_chunk("GATK", 100.0);
        assert!(advice.informed);
        // Best t/size ratio among the four is GATK3 (280/20 = 14), but 20 GB
        // exceeds MAX_CHUNK_GB and is clamped to 16.
        assert_eq!(advice.chunk_gb, 16.0);
        assert_eq!(advice.cpu, 8);
        assert_eq!(advice.shards, shards_for(100.0, 16.0));
    }

    #[test]
    fn advice_is_per_application() {
        let mut kb = kb_with_paper_instances();
        kb.ingest(&ProfileRecord {
            application: "BWA".into(),
            stage: 1,
            input_gb: 1.0,
            threads: 4,
            ram_gb: 8.0,
            e_time: 5.0, // much better per-GB than any GATK row
        });
        let advice = kb.advise_chunk("BWA", 10.0);
        assert_eq!(advice.chunk_gb, 1.0);
        assert_eq!(advice.shards, 10);
        // GATK advice unchanged by the BWA row.
        let gatk = kb.advise_chunk("GATK", 100.0);
        assert_eq!(gatk.chunk_gb, 16.0);
    }

    #[test]
    fn paper_sharding_example() {
        // "divide a 100GB FASTQ file into 25 4GB files"
        let mut kb = KnowledgeBase::new();
        kb.ingest(&ProfileRecord {
            application: "BWA".into(),
            stage: 1,
            input_gb: 4.0,
            threads: 1,
            ram_gb: 8.0,
            e_time: 10.0,
        });
        let advice = kb.advise_chunk("BWA", 100.0);
        assert_eq!(advice.chunk_gb, 4.0);
        assert_eq!(advice.shards, 25);
    }

    #[test]
    fn stage_model_learned_from_profiles() {
        let mut kb = KnowledgeBase::new();
        // Ground truth: stage 3 of Table II (a=1.74, b=3.93, c=0.69).
        let (a, b, c) = (1.74, 3.93, 0.69);
        for d in [1.0, 2.0, 4.0, 6.0, 9.0] {
            let e = a * d + b;
            for t in [1u32, 2, 4, 8] {
                kb.ingest(&ProfileRecord {
                    application: "GATK".into(),
                    stage: 3,
                    input_gb: d,
                    threads: t,
                    ram_gb: 4.0,
                    e_time: c * e / t as f64 + (1.0 - c) * e,
                });
            }
        }
        let m = kb.stage_model("GATK", 3).expect("model learned");
        assert!((m.a - a).abs() < 1e-9, "a = {}", m.a);
        assert!((m.b - b).abs() < 1e-9, "b = {}", m.b);
        assert!((m.c - c).abs() < 1e-9, "c = {}", m.c);
        assert!(m.r_squared_linear > 0.999);
        // And the estimator matches the analytic model.
        assert!(
            (m.threaded_time(4, 5.0) - (c * (a * 5.0 + b) / 4.0 + (1.0 - c) * (a * 5.0 + b))).abs()
                < 1e-9
        );
    }

    #[test]
    fn stage_model_needs_single_thread_points() {
        let mut kb = KnowledgeBase::new();
        kb.ingest(&ProfileRecord {
            application: "GATK".into(),
            stage: 1,
            input_gb: 2.0,
            threads: 8,
            ram_gb: 4.0,
            e_time: 3.0,
        });
        assert!(kb.stage_model("GATK", 1).is_none());
    }

    #[test]
    fn stage_model_single_threaded_only_assumes_serial() {
        let mut kb = KnowledgeBase::new();
        for d in [1.0, 2.0, 3.0] {
            kb.ingest(&ProfileRecord {
                application: "GATK".into(),
                stage: 2,
                input_gb: d,
                threads: 1,
                ram_gb: 4.0,
                e_time: 2.7 * d - 0.53,
            });
        }
        let m = kb.stage_model("GATK", 2).unwrap();
        assert!((m.a - 2.7).abs() < 1e-9);
        assert_eq!(m.c, 0.0);
        // threaded_time degenerates to exec_time.
        assert_eq!(m.threaded_time(8, 2.0), m.exec_time(2.0));
    }

    #[test]
    fn stage_models_collects_only_learned() {
        let kb = kb_with_paper_instances(); // 8-thread rows only → no model
        assert!(kb.stage_models("GATK", 7).is_empty());
    }

    #[test]
    fn exec_time_clamps_negative_extrapolation() {
        // Stage 2 has b = −0.53; at tiny d the raw line is negative.
        let m = StageModelEstimate {
            a: 2.7,
            b: -0.53,
            c: 0.02,
            r_squared_linear: 1.0,
            r_squared_amdahl: 1.0,
            observations: 4,
        };
        assert_eq!(m.exec_time(0.1), 0.0);
        assert!(m.exec_time(1.0) > 0.0);
    }

    #[test]
    fn shards_for_rounds_up() {
        assert_eq!(shards_for(100.0, 4.0), 25);
        assert_eq!(shards_for(101.0, 4.0), 26);
        assert_eq!(shards_for(0.5, 2.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive input size")]
    fn advise_chunk_rejects_zero_input() {
        KnowledgeBase::new().advise_chunk("GATK", 0.0);
    }
}
