//! The SCAN semantic model (§II-C): domain ontology + cloud ontology +
//! SCAN linker, with lightweight RDFS reasoning.
//!
//! The paper defines, in BNF:
//!
//! ```text
//! Active Ontology ::= 'Ontology(' [ domain ] ')'
//!                   | 'Ontology(' [ cloud ]  ')'
//!                   | 'SCAN(' { linker } ')'
//! ```
//!
//! i.e. two ontologies (the genomics *domain* and the *cloud*) joined by
//! *linker* statements (`requiredBy`, `runsOn`, …). This module builds all
//! three into one [`TripleStore`] and provides the class/individual/
//! property helpers the rest of the platform uses, plus transitive
//! `rdfs:subClassOf` reasoning so queries for a superclass find instances
//! of its subclasses (the paper's `AlignedGenomicData ⊑ GenomicData` case).

use crate::store::TripleStore;
use crate::term::{NodeId, Term};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Well-known IRIs.
pub mod iri {
    /// `rdf:type`.
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// `rdfs:subClassOf`.
    pub const RDFS_SUBCLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// `owl:Class`.
    pub const OWL_CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    /// `owl:NamedIndividual`.
    pub const OWL_NAMED_INDIVIDUAL: &str = "http://www.w3.org/2002/07/owl#NamedIndividual";
    /// The paper's ontology namespace.
    pub const SCAN_NS: &str = "http://www.semanticweb.org/wxing/ontologies/scan-ontology#";
}

/// Frequently used vocabulary, interned once.
#[derive(Debug, Clone, Copy)]
pub struct ScanVocabulary {
    /// `rdf:type`.
    pub rdf_type: NodeId,
    /// `rdfs:subClassOf`.
    pub subclass_of: NodeId,
    /// `owl:Class`.
    pub owl_class: NodeId,
    /// `owl:NamedIndividual`.
    pub owl_named_individual: NodeId,
    /// `scan:Application` — the class of bio-applications.
    pub application: NodeId,
    /// `scan:GenomeAnalysis` — analysis-workflow instances.
    pub genome_analysis: NodeId,
    /// `scan:inputFileSize` (GB).
    pub input_file_size: NodeId,
    /// `scan:steps` (pipeline stage index).
    pub steps: NodeId,
    /// `scan:eTime` (execution time).
    pub e_time: NodeId,
    /// `scan:CPU` (cores / threads used).
    pub cpu: NodeId,
    /// `scan:RAM` (GB).
    pub ram: NodeId,
    /// `scan:performance` (qualitative annotation).
    pub performance: NodeId,
    /// `scan:requiredBy` — linker: data class → workflow.
    pub required_by: NodeId,
    /// `scan:runsOn` — linker: application → cloud tier.
    pub runs_on: NodeId,
    /// `scan:computingResource` — linker: resource kind.
    pub computing_resource: NodeId,
    /// `scan:dataFormat` — domain: format of a data class.
    pub data_format: NodeId,
    /// `scan:costPerCoreTu` — cloud: tier pricing.
    pub cost_per_core_tu: NodeId,
    /// `scan:coreCapacity` — cloud: tier capacity.
    pub core_capacity: NodeId,
}

impl ScanVocabulary {
    /// Interns the vocabulary into `store`.
    pub fn intern(store: &mut TripleStore) -> Self {
        let mut scan = |local: &str| store.intern(Term::iri(format!("{}{}", iri::SCAN_NS, local)));
        let application = scan("Application");
        let genome_analysis = scan("GenomeAnalysis");
        let input_file_size = scan("inputFileSize");
        let steps = scan("steps");
        let e_time = scan("eTime");
        let cpu = scan("CPU");
        let ram = scan("RAM");
        let performance = scan("performance");
        let required_by = scan("requiredBy");
        let runs_on = scan("runsOn");
        let computing_resource = scan("computingResource");
        let data_format = scan("dataFormat");
        let cost_per_core_tu = scan("costPerCoreTu");
        let core_capacity = scan("coreCapacity");
        ScanVocabulary {
            rdf_type: store.intern(Term::iri(iri::RDF_TYPE)),
            subclass_of: store.intern(Term::iri(iri::RDFS_SUBCLASS)),
            owl_class: store.intern(Term::iri(iri::OWL_CLASS)),
            owl_named_individual: store.intern(Term::iri(iri::OWL_NAMED_INDIVIDUAL)),
            application,
            genome_analysis,
            input_file_size,
            steps,
            e_time,
            cpu,
            ram,
            performance,
            required_by,
            runs_on,
            computing_resource,
            data_format,
            cost_per_core_tu,
            core_capacity,
        }
    }
}

/// The assembled SCAN ontology: a triple store plus interned vocabulary.
#[derive(Debug, Clone)]
pub struct Ontology {
    store: TripleStore,
    vocab: ScanVocabulary,
    next_individual: HashMap<String, u32>,
}

impl Default for Ontology {
    fn default() -> Self {
        Self::new()
    }
}

impl Ontology {
    /// An empty ontology holding just the vocabulary.
    pub fn new() -> Self {
        let mut store = TripleStore::new();
        let vocab = ScanVocabulary::intern(&mut store);
        // scan-lint: allow(taint-nondet) -- lookup-only counter map, never iterated: unobservable.
        Ontology { store, vocab, next_individual: HashMap::new() }
    }

    /// Builds the paper's seed ontology: the domain classes (genomic data
    /// types and formats, application classes), the cloud classes (tiers,
    /// instance shapes) and the linker statements joining them.
    pub fn with_scan_schema() -> Self {
        let mut o = Self::new();
        let v = o.vocab;

        // --- domain ontology -------------------------------------------
        // Data classes, following the paper's AlignedGenomicData example.
        let genomic_data = o.class("GenomicData");
        let classes: &[(&str, &str)] = &[
            ("SequencingData", "FASTQ"),
            ("AlignedGenomicData", "BAM"),
            ("VariantData", "VCF"),
            ("ProteomicData", "MGF"),
            ("CellImageData", "TIFF"),
        ];
        for (name, format) in classes {
            let c = o.class(name);
            o.store.insert(c, v.subclass_of, genomic_data);
            let f = o.store.intern(Term::str((*format).to_string()));
            o.store.insert(c, v.data_format, f);
        }
        // Application classes (Fig. 1 / §III tool inventory).
        let app = v.application;
        o.store.insert(app, v.rdf_type, v.owl_class);
        for name in ["BWA", "GATK", "MuTect", "MaxQuant", "CellProfiler", "Cytoscape", "GPM"] {
            let c = o.class(name);
            o.store.insert(c, v.subclass_of, app);
        }

        // --- cloud ontology --------------------------------------------
        let tier = o.class("CloudTier");
        for (name, cost, capacity) in [("PrivateTier", 5i64, 624i64), ("PublicTier", 50, -1)] {
            let t = o.individual_named(name, tier);
            o.store.set_property(t, v.cost_per_core_tu, Term::int(cost));
            o.store.set_property(t, v.core_capacity, Term::int(capacity));
        }
        let shape = o.class("InstanceShape");
        for cores in [1i64, 2, 4, 8, 16] {
            let s = o.individual_named(&format!("Shape{cores}"), shape);
            o.store.set_property(s, v.cpu, Term::int(cores));
        }

        // --- SCAN linker -----------------------------------------------
        // AlignedGenomicData requiredBy GATK workflows (the paper's
        // prototype example), SequencingData requiredBy BWA.
        let aligned = o.lookup_class("AlignedGenomicData").expect("just created");
        let gatk = o.lookup_class("GATK").expect("just created");
        o.store.insert(aligned, v.required_by, gatk);
        let seq = o.lookup_class("SequencingData").expect("just created");
        let bwa = o.lookup_class("BWA").expect("just created");
        o.store.insert(seq, v.required_by, bwa);
        // GenomeAnalysis workflows run on cloud tiers.
        o.store.insert(v.genome_analysis, v.rdf_type, v.owl_class);
        let private = o.lookup_individual("PrivateTier").expect("just created");
        o.store.insert(gatk, v.runs_on, private);

        o
    }

    /// The interned vocabulary.
    pub fn vocab(&self) -> &ScanVocabulary {
        &self.vocab
    }

    /// The underlying triple store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Mutable access to the underlying triple store.
    pub fn store_mut(&mut self) -> &mut TripleStore {
        &mut self.store
    }

    /// Declares (or returns) a class named `local` in the SCAN namespace.
    pub fn class(&mut self, local: &str) -> NodeId {
        let c = self.store.intern(Term::iri(format!("{}{}", iri::SCAN_NS, local)));
        self.store.insert(c, self.vocab.rdf_type, self.vocab.owl_class);
        c
    }

    /// Looks up a class by local name without creating it.
    pub fn lookup_class(&self, local: &str) -> Option<NodeId> {
        self.store.nodes().lookup_iri(&format!("{}{}", iri::SCAN_NS, local))
    }

    /// Looks up an individual by local name without creating it.
    pub fn lookup_individual(&self, local: &str) -> Option<NodeId> {
        self.lookup_class(local)
    }

    /// Creates a named individual of `class` with an explicit local name.
    pub fn individual_named(&mut self, local: &str, class: NodeId) -> NodeId {
        let id = self.store.intern(Term::iri(format!("{}{}", iri::SCAN_NS, local)));
        self.store.insert(id, self.vocab.rdf_type, self.vocab.owl_named_individual);
        self.store.insert(id, self.vocab.rdf_type, class);
        id
    }

    /// Creates a fresh auto-numbered individual of `class` with the given
    /// name stem — `GATK1`, `GATK2`, … exactly as the paper's knowledge
    /// base grows when task logs are ingested.
    pub fn fresh_individual(&mut self, stem: &str, class: NodeId) -> NodeId {
        let n = self.next_individual.entry(stem.to_string()).or_insert(0);
        *n += 1;
        let local = format!("{stem}{n}");
        self.individual_named(&local, class)
    }

    /// All individuals whose `rdf:type` is `class` or any transitive
    /// subclass of it (RDFS subclass reasoning via BFS).
    pub fn instances_of(&self, class: NodeId) -> Vec<NodeId> {
        let mut classes = BTreeSet::new();
        let mut queue = VecDeque::from([class]);
        while let Some(c) = queue.pop_front() {
            if classes.insert(c) {
                for sub in self.store.subjects(self.vocab.subclass_of, c) {
                    queue.push_back(sub);
                }
            }
        }
        let mut out = BTreeSet::new();
        for c in classes {
            for s in self.store.subjects(self.vocab.rdf_type, c) {
                // Exclude classes that happen to be typed (owl:Class rows).
                if !self.store.contains(s, self.vocab.rdf_type, self.vocab.owl_class) {
                    out.insert(s);
                }
            }
        }
        out.into_iter().collect()
    }

    /// True if `sub` is a (transitive, reflexive) subclass of `sup`.
    pub fn is_subclass(&self, sub: NodeId, sup: NodeId) -> bool {
        if sub == sup {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([sub]);
        while let Some(c) = queue.pop_front() {
            if !seen.insert(c) {
                continue;
            }
            for o in self.store.objects(c, self.vocab.subclass_of).collect::<Vec<_>>() {
                if o == sup {
                    return true;
                }
                queue.push_back(o);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_domain_cloud_and_linker() {
        let o = Ontology::with_scan_schema();
        // Domain: data classes exist with formats.
        let aligned = o.lookup_class("AlignedGenomicData").unwrap();
        let fmt = o.store().string(aligned, o.vocab().data_format);
        assert_eq!(fmt, Some("BAM"));
        // Cloud: tiers carry pricing.
        let private = o.lookup_individual("PrivateTier").unwrap();
        assert_eq!(o.store().number(private, o.vocab().cost_per_core_tu), Some(5.0));
        assert_eq!(o.store().number(private, o.vocab().core_capacity), Some(624.0));
        // Linker: AlignedGenomicData requiredBy GATK.
        let gatk = o.lookup_class("GATK").unwrap();
        assert!(o.store().contains(aligned, o.vocab().required_by, gatk));
    }

    #[test]
    fn fresh_individuals_number_like_the_paper() {
        let mut o = Ontology::with_scan_schema();
        let gatk = o.lookup_class("GATK").unwrap();
        let a = o.fresh_individual("GATK", gatk);
        let b = o.fresh_individual("GATK", gatk);
        let ia = o.store().resolve(a).as_iri().unwrap().to_string();
        let ib = o.store().resolve(b).as_iri().unwrap().to_string();
        assert!(ia.ends_with("GATK1"), "{ia}");
        assert!(ib.ends_with("GATK2"), "{ib}");
    }

    #[test]
    fn instances_of_respects_subclasses() {
        let mut o = Ontology::with_scan_schema();
        let gatk = o.lookup_class("GATK").unwrap();
        let app = o.vocab().application;
        let i = o.fresh_individual("GATK", gatk);
        // The individual is typed GATK, and GATK ⊑ Application, so a query
        // for Application instances must find it.
        let apps = o.instances_of(app);
        assert!(apps.contains(&i));
        // Direct query also works.
        assert!(o.instances_of(gatk).contains(&i));
        // But it is not an instance of an unrelated class.
        let bwa = o.lookup_class("BWA").unwrap();
        assert!(!o.instances_of(bwa).contains(&i));
    }

    #[test]
    fn classes_are_not_reported_as_instances() {
        let o = Ontology::with_scan_schema();
        let app = o.vocab().application;
        let gatk = o.lookup_class("GATK").unwrap();
        assert!(
            !o.instances_of(app).contains(&gatk),
            "the GATK *class* must not appear as an Application instance"
        );
    }

    #[test]
    fn subclass_reasoning_is_transitive_and_reflexive() {
        let mut o = Ontology::new();
        let a = o.class("A");
        let b = o.class("B");
        let c = o.class("C");
        let v = *o.vocab();
        o.store_mut().insert(a, v.subclass_of, b);
        o.store_mut().insert(b, v.subclass_of, c);
        assert!(o.is_subclass(a, c));
        assert!(o.is_subclass(a, a));
        assert!(!o.is_subclass(c, a));
    }

    #[test]
    fn subclass_cycle_terminates() {
        let mut o = Ontology::new();
        let a = o.class("A");
        let b = o.class("B");
        let v = *o.vocab();
        o.store_mut().insert(a, v.subclass_of, b);
        o.store_mut().insert(b, v.subclass_of, a);
        assert!(o.is_subclass(a, b));
        assert!(o.is_subclass(b, a));
        assert!(!o.is_subclass(a, v.application));
    }

    #[test]
    fn instance_shapes_match_table_iii() {
        let o = Ontology::with_scan_schema();
        let shape = o.lookup_class("InstanceShape").unwrap();
        let shapes = o.instances_of(shape);
        let mut cores: Vec<f64> =
            shapes.iter().filter_map(|&s| o.store().number(s, o.vocab().cpu)).collect();
        cores.sort_by(f64::total_cmp);
        assert_eq!(cores, vec![1.0, 2.0, 4.0, 8.0, 16.0]);
    }
}
