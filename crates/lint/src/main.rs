//! The `scan-lint` command-line front end. See `docs/LINTS.md` for the
//! rule catalogue and `scripts/ci.sh` for the gate invocation.

#![forbid(unsafe_code)]

use scan_lint::{report, rules, workspace::Workspace, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
scan-lint: workspace determinism-and-consistency analyzer

USAGE:
    scan-lint [OPTIONS]

OPTIONS:
    --root <dir>       Workspace root to scan (default: current directory)
    --json             Emit one JSON object instead of the human table
    --deny-warnings    Exit nonzero on warnings as well as errors (CI gate)
    --list-rules       Print the rule catalogue and exit
    -h, --help         Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_warnings = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--list-rules" => {
                for rule in rules::RULES {
                    println!("{:<18} {:<8} {}", rule.id, rule.severity.to_string(), rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match argv.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("error: failed to load workspace at {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let result = ws.run();

    if json {
        print!("{}", report::render_json(&result));
    } else {
        print!("{}", report::render_human(&result));
    }

    let fails = result.diagnostics.iter().any(|d| d.severity == Severity::Error || deny_warnings);
    if fails {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
