//! The `scan-lint` command-line front end. See `docs/LINTS.md` for the
//! rule catalogue and `scripts/ci.sh` for the gate invocation.

#![forbid(unsafe_code)]

use scan_lint::{report, rules, workspace::Workspace, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
scan-lint: workspace determinism-and-consistency analyzer

USAGE:
    scan-lint [OPTIONS]

OPTIONS:
    --root <dir>           Workspace root to scan (default: current directory)
    --json                 Emit one JSON object instead of the human table
    --deny-warnings        Exit nonzero on warnings as well as errors (CI gate)
    --explain-chain        Render each finding's call chain, one hop per line
    --time-budget-ms <n>   Fail if the analysis (post-load) exceeds n milliseconds
    --list-rules           Print the rule catalogue and exit
    -h, --help             Show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_warnings = false;
    let mut explain_chain = false;
    let mut time_budget_ms: Option<u64> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--explain-chain" => explain_chain = true,
            "--list-rules" => {
                for rule in rules::RULES {
                    println!("{:<18} {:<8} {}", rule.id, rule.severity.to_string(), rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match argv.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--time-budget-ms" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => time_budget_ms = Some(n),
                None => {
                    eprintln!("error: --time-budget-ms needs a millisecond count\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("error: failed to load workspace at {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    // The linter itself is host tooling, not sim-facing code, so a wall
    // clock is fine here — this measures the analyzer, not the simulation.
    let started = std::time::Instant::now();
    let result = ws.run();
    let elapsed_ms = started.elapsed().as_millis() as u64;

    if json {
        print!("{}", report::render_json(&result));
    } else {
        print!("{}", report::render_human(&result, explain_chain));
    }

    if let Some(budget) = time_budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "error: analysis took {elapsed_ms} ms, over the {budget} ms budget; keep \
                 scan-lint fast enough to stay first in CI"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("scan-lint: analysis took {elapsed_ms} ms (budget {budget} ms)");
    }

    let fails = result.diagnostics.iter().any(|d| d.severity == Severity::Error || deny_warnings);
    if fails {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
