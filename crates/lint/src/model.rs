//! The workspace semantic model: every parsed file's items folded into
//! one symbol table, with the per-function facts the interprocedural
//! passes consume — determinism hazards (taint seeds), panic sites,
//! trait-impl registries and the import-derived crate dependency
//! closure. The model borrows the loaded [`Workspace`]; building it is
//! one pass over each file's tokens plus the item parse.

use crate::lex::{Token, TokenKind};
use crate::parse::{self, FileItems, FnDecl};
use crate::source::{FileClass, SourceFile};
use crate::workspace::{Workspace, WorkspaceFile, SIM_FACING_CRATES};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function in [`SemanticModel::fns`].
pub type FnId = usize;

/// One determinism hazard found in a function body — a taint seed.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// What was found (`` `HashMap` ``, `` `Instant` ``, …).
    pub what: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

/// One panic source in a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What was found (`` `panic!` ``, ``bare `unwrap()` ``, …).
    pub what: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

/// One function in the workspace, with the analysis facts attached.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`SemanticModel::files`].
    pub file: usize,
    /// Index into that file's [`FileItems::fns`].
    pub item: usize,
    /// Owning crate's package name.
    pub crate_name: String,
    /// Whether the crate is on the simulation path.
    pub sim_facing: bool,
    /// The file's target class.
    pub class: FileClass,
    /// Determinism hazards in the body (empty outside library code).
    pub hazards: Vec<Hazard>,
    /// Panic sources in the body (empty outside library code).
    pub panics: Vec<PanicSite>,
}

/// One file's parsed items plus its code-token view and import map.
pub struct FileFacts<'w> {
    /// The underlying workspace file.
    pub wf: &'w WorkspaceFile,
    /// Non-comment tokens (what all item token-index fields index into).
    pub code: Vec<&'w Token>,
    /// Parsed items.
    pub items: FileItems,
    /// Imported name → source crate's package name (workspace crates
    /// only; `std`/external roots are omitted).
    pub imports: BTreeMap<String, String>,
}

/// The folded symbol table for one workspace.
pub struct SemanticModel<'w> {
    /// Per-file facts, parallel to [`Workspace::files`].
    pub files: Vec<FileFacts<'w>>,
    /// Every function in the workspace.
    pub fns: Vec<FnInfo>,
    /// (impl type name, method name) → candidate functions.
    pub methods: BTreeMap<(String, String), Vec<FnId>>,
    /// (crate name, free fn name) → candidate functions.
    pub free_fns: BTreeMap<(String, String), Vec<FnId>>,
    /// (type name, field name) → field type's significant name.
    pub field_types: BTreeMap<(String, String), String>,
    /// Type name → crates that declare a struct of that name.
    pub type_crates: BTreeMap<String, BTreeSet<String>>,
    /// Crate → its transitive workspace dependencies (derived from `use`
    /// imports; always includes the crate itself).
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

/// Idents whose presence in a function body seeds nondeterminism taint —
/// the same hazard vocabulary as the per-file determinism rules.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "temp_dir"];
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

impl<'w> SemanticModel<'w> {
    /// Builds the model for a loaded workspace.
    pub fn build(ws: &'w Workspace) -> Self {
        let mut files = Vec::with_capacity(ws.files.len());
        for wf in &ws.files {
            let code: Vec<&Token> = wf.file.code_tokens().map(|(_, t)| t).collect();
            let items = parse::parse_items(&wf.file, &code);
            let imports = import_map(&items, &wf.crate_name);
            files.push(FileFacts { wf, code, items, imports });
        }

        let mut model = SemanticModel {
            files,
            fns: Vec::new(),
            methods: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            field_types: BTreeMap::new(),
            type_crates: BTreeMap::new(),
            crate_deps: BTreeMap::new(),
        };

        for file_idx in 0..model.files.len() {
            let crate_name = model.files[file_idx].wf.crate_name.clone();
            let sim_facing = SIM_FACING_CRATES.contains(&crate_name.as_str());
            let class = model.files[file_idx].wf.class;
            for item_idx in 0..model.files[file_idx].items.fns.len() {
                let id = model.fns.len();
                let (hazards, panics) = {
                    let facts = &model.files[file_idx];
                    let decl = &facts.items.fns[item_idx];
                    if class == FileClass::Library && !decl.is_test {
                        body_facts(&facts.wf.file, &facts.code, decl)
                    } else {
                        (Vec::new(), Vec::new())
                    }
                };
                let decl = &model.files[file_idx].items.fns[item_idx];
                match &decl.owner {
                    Some(owner) => model
                        .methods
                        .entry((owner.clone(), decl.name.clone()))
                        .or_default()
                        .push(id),
                    None => model
                        .free_fns
                        .entry((crate_name.clone(), decl.name.clone()))
                        .or_default()
                        .push(id),
                }
                model.fns.push(FnInfo {
                    file: file_idx,
                    item: item_idx,
                    crate_name: crate_name.clone(),
                    sim_facing,
                    class,
                    hazards,
                    panics,
                });
            }
            for s in &model.files[file_idx].items.structs {
                model.type_crates.entry(s.name.clone()).or_default().insert(crate_name.clone());
                for (field, ty) in &s.fields {
                    if let Some(ty) = ty {
                        model.field_types.insert((s.name.clone(), field.clone()), ty.clone());
                    }
                }
            }
        }

        model.crate_deps = dep_closure(&model.files);
        model
    }

    /// The parsed declaration of a function.
    pub fn decl(&self, id: FnId) -> &FnDecl {
        let info = &self.fns[id];
        &self.files[info.file].items.fns[info.item]
    }

    /// A human-readable label for a function: `Type::name` or `name`.
    pub fn label(&self, id: FnId) -> String {
        let decl = self.decl(id);
        match &decl.owner {
            Some(owner) => format!("{owner}::{}", decl.name),
            None => decl.name.clone(),
        }
    }

    /// The source file a function lives in.
    pub fn file_of(&self, id: FnId) -> &SourceFile {
        &self.files[self.fns[id].file].wf.file
    }

    /// Whether `callee_crate` is in `caller_crate`'s dependency closure
    /// (a crate always depends on itself).
    pub fn depends_on(&self, caller_crate: &str, callee_crate: &str) -> bool {
        caller_crate == callee_crate
            || self.crate_deps.get(caller_crate).is_some_and(|deps| deps.contains(callee_crate))
    }

    /// Every type name that appears as `impl <trait_name> for <Type>`
    /// outside test code, mapped to the impl's declaration line.
    pub fn trait_impls(&self, trait_name: &str) -> BTreeMap<String, (usize, u32)> {
        let mut out = BTreeMap::new();
        for (file_idx, facts) in self.files.iter().enumerate() {
            for ib in &facts.items.impls {
                if ib.trait_name.as_deref() != Some(trait_name) {
                    continue;
                }
                let in_test =
                    facts.code.get(ib.body.0).is_some_and(|t| facts.wf.file.in_test_code(t.start));
                if in_test {
                    continue;
                }
                out.entry(ib.type_name.clone()).or_insert((file_idx, ib.line));
            }
        }
        out
    }

    /// Every ident mentioned inside any `impl <trait_name> for …` block
    /// (used to check which types an `ObserverFactory` can build).
    pub fn idents_in_trait_impls(&self, trait_name: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for facts in &self.files {
            for ib in &facts.items.impls {
                if ib.trait_name.as_deref() != Some(trait_name) {
                    continue;
                }
                for tok in &facts.code[ib.body.0..ib.body.1] {
                    if tok.kind == TokenKind::Ident {
                        out.insert(tok.text(&facts.wf.file.text).to_string());
                    }
                }
                // The implementing type itself also counts: a factory
                // that *is* the observer builds itself.
                out.insert(ib.type_name.clone());
            }
        }
        out
    }
}

/// Scans one function body for determinism hazards and panic sites.
fn body_facts(file: &SourceFile, code: &[&Token], decl: &FnDecl) -> (Vec<Hazard>, Vec<PanicSite>) {
    let Some((start, end)) = decl.body else { return (Vec::new(), Vec::new()) };
    let mut hazards = Vec::new();
    let mut panics = Vec::new();
    for k in start..end.min(code.len()) {
        let tok = code[k];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(&file.text);
        if HASH_TYPES.contains(&text)
            || CLOCK_TYPES.contains(&text)
            || ENTROPY_IDENTS.contains(&text)
        {
            hazards.push(Hazard { what: format!("`{text}`"), line: tok.line, col: tok.col });
        } else if text == "env"
            && k >= 2
            && matches!(code[k - 1].kind, TokenKind::Punct(b':'))
            && matches!(code[k - 2].kind, TokenKind::Punct(b':'))
            && k >= 3
            && code[k - 3].kind == TokenKind::Ident
            && code[k - 3].text(&file.text) == "std"
        {
            hazards.push(Hazard { what: "`std::env`".to_string(), line: tok.line, col: tok.col });
        }
        let next = code.get(k + 1).map(|t| t.kind);
        if PANIC_MACROS.contains(&text) && next == Some(TokenKind::Punct(b'!')) {
            panics.push(PanicSite { what: format!("`{text}!`"), line: tok.line, col: tok.col });
        }
        if text == "unwrap"
            && k > 0
            && matches!(code[k - 1].kind, TokenKind::Punct(b'.'))
            && next == Some(TokenKind::Punct(b'('))
            && matches!(code.get(k + 2).map(|t| t.kind), Some(TokenKind::Punct(b')')))
        {
            panics.push(PanicSite {
                what: "bare `unwrap()`".to_string(),
                line: tok.line,
                col: tok.col,
            });
        }
    }
    (hazards, panics)
}

/// The crate a `use` root segment refers to, by the workspace's naming
/// convention (`scan_kb` → `scan-kb`); `crate`/`self`/`super` resolve to
/// the importing crate, everything else is external.
fn root_crate(root: &str, own_crate: &str) -> Option<String> {
    match root {
        "crate" | "self" | "super" => Some(own_crate.to_string()),
        r if r.starts_with("scan") => Some(r.replace('_', "-")),
        _ => None,
    }
}

/// Bound name → source crate, for one file's `use` declarations.
fn import_map(items: &FileItems, own_crate: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for u in &items.uses {
        if let Some(crate_name) = root_crate(&u.root, own_crate) {
            map.insert(u.name.clone(), crate_name);
        }
    }
    map
}

/// Transitive crate-dependency closure, derived from imports: crate A
/// depends on crate B when any file of A imports from B.
fn dep_closure(files: &[FileFacts<'_>]) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for facts in files {
        let own = &facts.wf.crate_name;
        let entry = direct.entry(own.clone()).or_default();
        for dep in facts.imports.values() {
            if dep != own {
                entry.insert(dep.clone());
            }
        }
    }
    // Saturate: iterate until no closure grows (crate counts are tiny).
    let crates: Vec<String> = direct.keys().cloned().collect();
    loop {
        let mut grew = false;
        for c in &crates {
            let deps: Vec<String> = direct[c].iter().cloned().collect();
            let mut add = BTreeSet::new();
            for d in &deps {
                if let Some(dd) = direct.get(d) {
                    for x in dd {
                        if x != c && !direct[c].contains(x) {
                            add.insert(x.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                direct.get_mut(c).expect("crate key present by construction").extend(add);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    direct
}
