//! Diagnostics and the inline escape hatch.
//!
//! A rule reports [`Diagnostic`]s; before anything is printed, the
//! engine applies the file's `// scan-lint: allow(<rule>) -- <reason>`
//! directives. An allow suppresses matching diagnostics on its own line
//! and the line directly below it (so it works both as a trailing
//! comment and as a line of its own above the code it excuses). The
//! reason is mandatory: an allow without one — or naming an unknown rule
//! — is itself an error (`bad-allow`), and an allow that suppressed
//! nothing is a warning (`unused-allow`), keeping the escape-hatch
//! inventory honest.

use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// How serious a finding is. `--deny-warnings` (the CI gate) promotes
/// warnings to the error exit code; the distinction still shows in the
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should be fixed, but does not fail a default run.
    Warning,
    /// Fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One hop of an interprocedural evidence chain (see
/// [`crate::rules::semantic`]): a function or source site on the path
/// from the reported location to the root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHop {
    /// What this hop is (`Broker::providers`, `` seed `HashMap` ``, …).
    pub label: String,
    /// File the hop points into.
    pub path: PathBuf,
    /// 1-based line of the hop.
    pub line: u32,
}

/// One finding, pointing at a file location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Severity the rule declared.
    pub severity: Severity,
    /// File the finding is in (workspace-relative in CLI runs).
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation, one sentence.
    pub message: String,
    /// Interprocedural evidence chain, outermost hop first (empty for
    /// the per-file rules; `--explain-chain` renders it hop per hop).
    pub chain: Vec<ChainHop>,
}

impl Diagnostic {
    /// Renders the canonical single-line form used by the human report
    /// and the golden fixture files:
    /// `path:line:col: severity [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.severity,
            self.rule,
            self.message
        )
    }
}

/// One parsed `scan-lint: allow(…)` directive.
#[derive(Debug)]
struct AllowDirective {
    /// Rules the directive names.
    rules: Vec<String>,
    /// Line the comment sits on.
    line: u32,
    col: u32,
    /// Whether a ` -- reason` was supplied.
    has_reason: bool,
    /// Whether it suppressed a diagnostic or absorbed a semantic fact.
    used: bool,
}

/// The workspace's allow directives, applied globally rather than per
/// file: the semantic passes report findings whose cause is in one file
/// and whose diagnostic lands in another, and they also *consult* allows
/// mid-analysis (a `taint-nondet` allow on a function declaration is a
/// sink annotation that stops propagation, not just a suppression). Both
/// uses share one used-tracking ledger so `unused-allow` stays honest.
pub struct Allows {
    by_file: BTreeMap<PathBuf, Vec<AllowDirective>>,
    bad: Vec<Diagnostic>,
}

impl Allows {
    /// Parses every directive in `files`, recording `bad-allow` findings
    /// for malformed ones and ones naming unknown rules.
    pub fn collect<'a>(
        files: impl IntoIterator<Item = &'a SourceFile>,
        known_rule: impl Fn(&str) -> bool,
    ) -> Self {
        let mut by_file: BTreeMap<PathBuf, Vec<AllowDirective>> = BTreeMap::new();
        let mut bad = Vec::new();
        for file in files {
            // Doc comments are excluded: a directive prefix appearing
            // there is documentation *about* the syntax, not a directive.
            for token in file.tokens.iter().filter(|t| t.is_comment() && !t.is_doc_comment()) {
                let text = file.text_of(token);
                let Some(at) = text.find("scan-lint:") else { continue };
                match parse_directive(&text[at..]) {
                    Ok((rules, has_reason)) => {
                        for rule in &rules {
                            if !known_rule(rule) {
                                bad.push(Diagnostic {
                                    rule: "bad-allow",
                                    severity: Severity::Error,
                                    path: file.path.clone(),
                                    line: token.line,
                                    col: token.col,
                                    message: format!("allow names unknown rule `{rule}`"),
                                    chain: Vec::new(),
                                });
                            }
                        }
                        by_file.entry(file.path.clone()).or_default().push(AllowDirective {
                            rules,
                            line: token.line,
                            col: token.col,
                            has_reason,
                            used: false,
                        });
                    }
                    Err(why) => bad.push(Diagnostic {
                        rule: "bad-allow",
                        severity: Severity::Error,
                        path: file.path.clone(),
                        line: token.line,
                        col: token.col,
                        message: why.to_string(),
                        chain: Vec::new(),
                    }),
                }
            }
        }
        Allows { by_file, bad }
    }

    /// Whether an allow for `rule` covers `line` of `path` (the
    /// directive's own line or the line directly below it). A hit marks
    /// the directive used — call this only for a fact the allow actually
    /// excuses.
    pub fn allowed(&mut self, path: &Path, line: u32, rule: &str) -> bool {
        let Some(directives) = self.by_file.get_mut(path) else { return false };
        for directive in directives.iter_mut() {
            let in_range = line == directive.line || line == directive.line + 1;
            if in_range && directive.rules.iter().any(|r| r == rule) {
                directive.used = true;
                return true;
            }
        }
        false
    }

    /// Removes every diagnostic an allow covers, marking those allows
    /// used.
    pub fn apply(&mut self, diags: &mut Vec<Diagnostic>) {
        diags.retain(|d| {
            let Some(directives) = self.by_file.get_mut(&d.path) else { return true };
            for directive in directives.iter_mut() {
                let in_range = d.line == directive.line || d.line == directive.line + 1;
                if in_range && directive.rules.iter().any(|r| r == d.rule) {
                    directive.used = true;
                    return false;
                }
            }
            true
        });
    }

    /// Emits the meta findings: `bad-allow` for collection-time errors
    /// and reasonless directives, `unused-allow` for directives that
    /// neither suppressed a diagnostic nor absorbed a semantic fact.
    pub fn finish(self, diags: &mut Vec<Diagnostic>) {
        diags.extend(self.bad);
        for (path, directives) in &self.by_file {
            for directive in directives {
                if !directive.has_reason {
                    diags.push(Diagnostic {
                        rule: "bad-allow",
                        severity: Severity::Error,
                        path: path.clone(),
                        line: directive.line,
                        col: directive.col,
                        message: "allow directive has no `-- <reason>`; every escape must say why"
                            .to_string(),
                        chain: Vec::new(),
                    });
                } else if !directive.used {
                    diags.push(Diagnostic {
                        rule: "unused-allow",
                        severity: Severity::Warning,
                        path: path.clone(),
                        line: directive.line,
                        col: directive.col,
                        message: format!(
                            "allow({}) suppressed nothing; remove it",
                            directive.rules.join(", ")
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }
}

/// Scans a file's comments for allow directives, applies them to `diags`
/// (removing suppressed entries), and appends `bad-allow`/`unused-allow`
/// findings. `known_rule` tells the parser which rule names exist. This
/// is the single-file path used by the golden-fixture harness; the
/// workspace run uses [`Allows`] directly so cross-file semantic
/// findings see every file's directives.
pub fn apply_allows(
    file: &SourceFile,
    diags: &mut Vec<Diagnostic>,
    known_rule: impl Fn(&str) -> bool,
) {
    let mut allows = Allows::collect(std::iter::once(file), known_rule);
    allows.apply(diags);
    allows.finish(diags);
}

/// Parses `scan-lint: allow(a, b) -- reason`, returning the rule list
/// and whether a non-empty reason followed.
fn parse_directive(text: &str) -> Result<(Vec<String>, bool), &'static str> {
    let rest = text.trim_start_matches("scan-lint:").trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(
            "malformed scan-lint directive; expected `scan-lint: allow(<rule>) -- <reason>`",
        );
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`");
    };
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow() names no rules");
    }
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix("--")
        .map(|reason| !reason.trim_start_matches(['-', ' ']).trim().is_empty())
        .unwrap_or(false);
    Ok((rules, has_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            path: PathBuf::from("x.rs"),
            line,
            col: 1,
            message: "m".to_string(),
            chain: Vec::new(),
        }
    }

    fn run(src: &str, mut diags: Vec<Diagnostic>) -> Vec<String> {
        let file = SourceFile::new(PathBuf::from("x.rs"), src.to_string());
        apply_allows(&file, &mut diags, |r| r == "no-unwrap" || r == "hash-iter");
        diags.iter().map(|d| format!("{}@{} ({})", d.rule, d.line, d.severity)).collect()
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let out = run(
            "let x = y.unwrap(); // scan-lint: allow(no-unwrap) -- invariant\n",
            vec![diag("no-unwrap", 1)],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "// scan-lint: allow(no-unwrap) -- checked above\nlet x = y.unwrap();\n";
        assert!(run(src, vec![diag("no-unwrap", 2)]).is_empty());
    }

    #[test]
    fn allow_does_not_reach_further() {
        let src = "// scan-lint: allow(no-unwrap) -- close only\n\nlet x = y.unwrap();\n";
        let out = run(src, vec![diag("no-unwrap", 3)]);
        // The finding survives and the allow is reported unused.
        assert!(out.iter().any(|l| l.starts_with("no-unwrap@3")));
        assert!(out.iter().any(|l| l.starts_with("unused-allow@1")));
    }

    #[test]
    fn reasonless_allow_is_an_error() {
        let src = "let x = y.unwrap(); // scan-lint: allow(no-unwrap)\n";
        let out = run(src, vec![diag("no-unwrap", 1)]);
        assert!(out.iter().any(|l| l.starts_with("bad-allow@1 (error)")), "{out:?}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// scan-lint: allow(no-such-rule) -- because\n";
        let out = run(src, vec![]);
        assert!(out.iter().any(|l| l.starts_with("bad-allow@1")));
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// scan-lint: allow(no-unwrap, hash-iter) -- both fine here\nbad();\n";
        let out = run(src, vec![diag("no-unwrap", 2), diag("hash-iter", 2)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
