//! Diagnostics and the inline escape hatch.
//!
//! A rule reports [`Diagnostic`]s; before anything is printed, the
//! engine applies the file's `// scan-lint: allow(<rule>) -- <reason>`
//! directives. An allow suppresses matching diagnostics on its own line
//! and the line directly below it (so it works both as a trailing
//! comment and as a line of its own above the code it excuses). The
//! reason is mandatory: an allow without one — or naming an unknown rule
//! — is itself an error (`bad-allow`), and an allow that suppressed
//! nothing is a warning (`unused-allow`), keeping the escape-hatch
//! inventory honest.

use crate::source::SourceFile;
use std::fmt;
use std::path::PathBuf;

/// How serious a finding is. `--deny-warnings` (the CI gate) promotes
/// warnings to the error exit code; the distinction still shows in the
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Should be fixed, but does not fail a default run.
    Warning,
    /// Fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding, pointing at a file location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Severity the rule declared.
    pub severity: Severity,
    /// File the finding is in (workspace-relative in CLI runs).
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human explanation, one sentence.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical single-line form used by the human report
    /// and the golden fixture files:
    /// `path:line:col: severity [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.severity,
            self.rule,
            self.message
        )
    }
}

/// One parsed `scan-lint: allow(…)` directive.
#[derive(Debug)]
struct AllowDirective {
    /// Rules the directive names.
    rules: Vec<String>,
    /// Line the comment sits on.
    line: u32,
    col: u32,
    /// Whether a ` -- reason` was supplied.
    has_reason: bool,
    /// Whether it suppressed at least one diagnostic.
    used: bool,
}

/// Scans a file's comments for allow directives, applies them to `diags`
/// (removing suppressed entries), and appends `bad-allow`/`unused-allow`
/// findings. `known_rule` tells the parser which rule names exist.
pub fn apply_allows(
    file: &SourceFile,
    diags: &mut Vec<Diagnostic>,
    known_rule: impl Fn(&str) -> bool,
) {
    let mut directives = Vec::new();
    let mut bad = Vec::new();
    // Doc comments are excluded: a directive prefix appearing there is
    // documentation *about* the syntax, not a directive.
    for token in file.tokens.iter().filter(|t| t.is_comment() && !t.is_doc_comment()) {
        let text = file.text_of(token);
        let Some(at) = text.find("scan-lint:") else { continue };
        match parse_directive(&text[at..]) {
            Ok((rules, has_reason)) => {
                for rule in &rules {
                    if !known_rule(rule) {
                        bad.push(Diagnostic {
                            rule: "bad-allow",
                            severity: Severity::Error,
                            path: file.path.clone(),
                            line: token.line,
                            col: token.col,
                            message: format!("allow names unknown rule `{rule}`"),
                        });
                    }
                }
                directives.push(AllowDirective {
                    rules,
                    line: token.line,
                    col: token.col,
                    has_reason,
                    used: false,
                });
            }
            Err(why) => bad.push(Diagnostic {
                rule: "bad-allow",
                severity: Severity::Error,
                path: file.path.clone(),
                line: token.line,
                col: token.col,
                message: why.to_string(),
            }),
        }
    }

    diags.retain(|d| {
        for directive in directives.iter_mut() {
            let in_range = d.line == directive.line || d.line == directive.line + 1;
            if in_range && directive.rules.iter().any(|r| r == d.rule) {
                directive.used = true;
                return false;
            }
        }
        true
    });

    for directive in &directives {
        if !directive.has_reason {
            bad.push(Diagnostic {
                rule: "bad-allow",
                severity: Severity::Error,
                path: file.path.clone(),
                line: directive.line,
                col: directive.col,
                message: "allow directive has no `-- <reason>`; every escape must say why"
                    .to_string(),
            });
        } else if !directive.used {
            bad.push(Diagnostic {
                rule: "unused-allow",
                severity: Severity::Warning,
                path: file.path.clone(),
                line: directive.line,
                col: directive.col,
                message: format!(
                    "allow({}) suppressed nothing; remove it",
                    directive.rules.join(", ")
                ),
            });
        }
    }
    diags.extend(bad);
}

/// Parses `scan-lint: allow(a, b) -- reason`, returning the rule list
/// and whether a non-empty reason followed.
fn parse_directive(text: &str) -> Result<(Vec<String>, bool), &'static str> {
    let rest = text.trim_start_matches("scan-lint:").trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(
            "malformed scan-lint directive; expected `scan-lint: allow(<rule>) -- <reason>`",
        );
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(`");
    };
    let rules: Vec<String> =
        rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow() names no rules");
    }
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix("--")
        .map(|reason| !reason.trim_start_matches(['-', ' ']).trim().is_empty())
        .unwrap_or(false);
    Ok((rules, has_reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Warning,
            path: PathBuf::from("x.rs"),
            line,
            col: 1,
            message: "m".to_string(),
        }
    }

    fn run(src: &str, mut diags: Vec<Diagnostic>) -> Vec<String> {
        let file = SourceFile::new(PathBuf::from("x.rs"), src.to_string());
        apply_allows(&file, &mut diags, |r| r == "no-unwrap" || r == "hash-iter");
        diags.iter().map(|d| format!("{}@{} ({})", d.rule, d.line, d.severity)).collect()
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let out = run(
            "let x = y.unwrap(); // scan-lint: allow(no-unwrap) -- invariant\n",
            vec![diag("no-unwrap", 1)],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = "// scan-lint: allow(no-unwrap) -- checked above\nlet x = y.unwrap();\n";
        assert!(run(src, vec![diag("no-unwrap", 2)]).is_empty());
    }

    #[test]
    fn allow_does_not_reach_further() {
        let src = "// scan-lint: allow(no-unwrap) -- close only\n\nlet x = y.unwrap();\n";
        let out = run(src, vec![diag("no-unwrap", 3)]);
        // The finding survives and the allow is reported unused.
        assert!(out.iter().any(|l| l.starts_with("no-unwrap@3")));
        assert!(out.iter().any(|l| l.starts_with("unused-allow@1")));
    }

    #[test]
    fn reasonless_allow_is_an_error() {
        let src = "let x = y.unwrap(); // scan-lint: allow(no-unwrap)\n";
        let out = run(src, vec![diag("no-unwrap", 1)]);
        assert!(out.iter().any(|l| l.starts_with("bad-allow@1 (error)")), "{out:?}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// scan-lint: allow(no-such-rule) -- because\n";
        let out = run(src, vec![]);
        assert!(out.iter().any(|l| l.starts_with("bad-allow@1")));
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// scan-lint: allow(no-unwrap, hash-iter) -- both fine here\nbad();\n";
        let out = run(src, vec![diag("no-unwrap", 2), diag("hash-iter", 2)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
