//! Doc–code consistency rules: the reference documents must match the
//! code, in both directions.
//!
//! * `trace-doc-drift` — `docs/TRACE_SCHEMA.md` against the `TraceEvent`
//!   enum in `crates/sim/src/trace.rs`: every variant documented, no
//!   phantom sections, `kind` tags equal to `TraceEvent::kind`, field
//!   tables equal to the variants' field names, and every
//!   `ScalingChoice` label mentioned.
//! * `metrics-doc-drift` — `docs/METRICS.md` against the metric families
//!   actually registered in library code (`registry.counter(…)` /
//!   `.histogram(…)` / `.series(…)` call sites): the catalogue lists
//!   exactly the registered families.
//! * `store-doc-drift` — `docs/TRACESTORE.md` against the columnar
//!   store's schema in `crates/tracestore/src/schema.rs`: every
//!   `EventKind` has a column table under "Column layouts" whose rows
//!   equal the declared column names, no phantom tables or columns, and
//!   the "Aggregations" table lists exactly the `Agg::name` labels.
//! * `spans-doc-drift` — `docs/SPANS.md` against the span data model in
//!   `crates/spans/src/schema.rs`: the "Segment taxonomy" table lists
//!   exactly the `SegmentKind::name` labels and the "SLO metrics" table
//!   lists exactly the `SLO_*` metric-name constants, both directions.
//!
//! All sides are parsed structurally (tokens on the code side, table
//! rows on the markdown side), so a renamed field or a new variant fails
//! CI the moment it lands without its documentation line.

use crate::diag::{Diagnostic, Severity};
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// The code-side trace model extracted from `trace.rs`.
#[derive(Debug, Default)]
pub struct TraceModel {
    /// Variant name → (declaration line, field names in order).
    pub variants: BTreeMap<String, (u32, Vec<String>)>,
    /// Variant name → the string tag `TraceEvent::kind` returns for it.
    pub kinds: BTreeMap<String, String>,
    /// The label strings `ScalingChoice::name` can return.
    pub choice_names: Vec<String>,
}

/// One documented event section of TRACE_SCHEMA.md.
#[derive(Debug)]
struct DocSection {
    kind: String,
    variant: String,
    line: u32,
    /// Field name → line of its table row.
    fields: Vec<(String, u32)>,
}

/// Extracts the [`TraceModel`] from the lexed `trace.rs`.
pub fn parse_trace_model(src: &SourceFile) -> TraceModel {
    let code: Vec<&Token> = src.code_tokens().map(|(_, t)| t).collect();
    let mut model = TraceModel::default();
    if let Some(body) = brace_body_after(src, &code, &["enum", "TraceEvent"]) {
        model.variants = parse_variants(src, &code[body.0..body.1]);
    }
    if let Some(body) = brace_body_after(src, &code, &["fn", "kind"]) {
        model.kinds = parse_kind_arms(src, &code[body.0..body.1]);
    }
    if let Some(body) = brace_body_after(src, &code, &["fn", "name"]) {
        model.choice_names = code[body.0..body.1]
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .filter_map(|t| t.str_content(&src.text))
            .map(str::to_string)
            .collect();
    }
    model
}

/// Finds `keywords[0] keywords[1] … {` and returns the code-token index
/// range of the brace body (exclusive of the braces).
fn brace_body_after(
    src: &SourceFile,
    code: &[&Token],
    keywords: &[&str],
) -> Option<(usize, usize)> {
    'outer: for i in 0..code.len().saturating_sub(keywords.len()) {
        for (j, kw) in keywords.iter().enumerate() {
            if code[i + j].kind != TokenKind::Ident || src.text_of(code[i + j]) != *kw {
                continue 'outer;
            }
        }
        // Scan to the opening brace, then to its match.
        let mut k = i + keywords.len();
        while k < code.len() && !matches!(code[k].kind, TokenKind::Punct(b'{')) {
            k += 1;
        }
        let open = k;
        let mut depth = 0i32;
        while k < code.len() {
            match code[k].kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open + 1, k));
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    None
}

/// Parses enum variants (and their named-field lists) from the tokens of
/// an enum body.
fn parse_variants(src: &SourceFile, body: &[&Token]) -> BTreeMap<String, (u32, Vec<String>)> {
    let mut out = BTreeMap::new();
    let mut k = 0;
    while k < body.len() {
        let t = body[k];
        if t.kind != TokenKind::Ident {
            k += 1;
            continue;
        }
        let name = src.text_of(t).to_string();
        let line = t.line;
        let mut fields = Vec::new();
        k += 1;
        if k < body.len() && matches!(body[k].kind, TokenKind::Punct(b'{')) {
            let mut depth = 0i32;
            while k < body.len() {
                match body[k].kind {
                    TokenKind::Punct(b'{') => depth += 1,
                    TokenKind::Punct(b'}') => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    TokenKind::Ident
                        if depth == 1
                            && matches!(
                                body.get(k + 1).map(|t| t.kind),
                                Some(TokenKind::Punct(b':'))
                            ) =>
                    {
                        fields.push(src.text_of(body[k]).to_string());
                        // Skip the type up to the field's trailing comma.
                        let mut inner = 0i32;
                        while k < body.len() {
                            match body[k].kind {
                                TokenKind::Punct(b'<') | TokenKind::Punct(b'(') => inner += 1,
                                TokenKind::Punct(b'>') | TokenKind::Punct(b')') => inner -= 1,
                                TokenKind::Punct(b',') if inner <= 0 => break,
                                TokenKind::Punct(b'}') if inner <= 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        if matches!(body.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'}'))) {
                            continue; // let the depth tracker close the block
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        out.insert(name, (line, fields));
        // Advance past the variant's trailing comma if present.
        while k < body.len() && matches!(body[k].kind, TokenKind::Punct(b',')) {
            k += 1;
        }
    }
    out
}

/// Parses `Self::Variant { .. } => "tag"` arms from a `fn kind` body.
fn parse_kind_arms(src: &SourceFile, body: &[&Token]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut k = 0;
    while k + 2 < body.len() {
        let is_self_path = body[k].kind == TokenKind::Ident
            && src.text_of(body[k]) == "Self"
            && matches!(body[k + 1].kind, TokenKind::Punct(b':'))
            && matches!(body[k + 2].kind, TokenKind::Punct(b':'));
        if !is_self_path {
            k += 1;
            continue;
        }
        let Some(variant) = body.get(k + 3).filter(|t| t.kind == TokenKind::Ident) else {
            k += 1;
            continue;
        };
        // Scan forward to the arm's string literal (past `{ .. } =>`).
        let mut j = k + 4;
        while j < body.len() && body[j].kind != TokenKind::Str {
            if body[j].kind == TokenKind::Ident && src.text_of(body[j]) == "Self" {
                break; // malformed arm; resync on the next one
            }
            j += 1;
        }
        if let Some(tag) = body.get(j).and_then(|t| t.str_content(&src.text)) {
            out.insert(src.text_of(variant).to_string(), tag.to_string());
        }
        k = j;
    }
    out
}

/// Cross-checks TRACE_SCHEMA.md against the trace model. `doc_path` and
/// `code_path` are used for diagnostic locations only.
pub fn check_trace_schema(
    doc_path: &Path,
    doc_text: &str,
    code_path: &Path,
    model: &TraceModel,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut emit = |path: &Path, line: u32, message: String| {
        diags.push(Diagnostic {
            rule: "trace-doc-drift",
            severity: Severity::Error,
            path: path.to_path_buf(),
            line,
            col: 1,
            message,
            chain: Vec::new(),
        });
    };

    let sections = parse_doc_sections(doc_text);
    if model.variants.is_empty() {
        emit(code_path, 1, "could not locate `enum TraceEvent` to cross-check".to_string());
        return diags;
    }
    if sections.is_empty() {
        emit(doc_path, 1, "no `### \\`kind\\` — \\`TraceEvent::…\\`` sections found".to_string());
        return diags;
    }

    for (variant, (line, fields)) in &model.variants {
        match sections.iter().find(|s| &s.variant == variant) {
            None => emit(
                code_path,
                *line,
                format!("TraceEvent::{variant} has no section in {}", doc_path.display()),
            ),
            Some(section) => {
                for field in fields {
                    if !section.fields.iter().any(|(f, _)| f == field) {
                        emit(
                            doc_path,
                            section.line,
                            format!(
                                "section `{}` is missing a row for field `{field}` of \
                                 TraceEvent::{variant}",
                                section.kind
                            ),
                        );
                    }
                }
            }
        }
    }
    for section in &sections {
        let Some((_, fields)) = model.variants.get(&section.variant) else {
            emit(
                doc_path,
                section.line,
                format!("documented variant TraceEvent::{} does not exist", section.variant),
            );
            continue;
        };
        match model.kinds.get(&section.variant) {
            Some(tag) if tag != &section.kind => emit(
                doc_path,
                section.line,
                format!(
                    "section tag `{}` disagrees with TraceEvent::kind (`{tag}`) for variant {}",
                    section.kind, section.variant
                ),
            ),
            None => emit(
                doc_path,
                section.line,
                format!("variant {} has no arm in TraceEvent::kind", section.variant),
            ),
            _ => {}
        }
        for (field, row_line) in &section.fields {
            if !fields.iter().any(|f| f == field) {
                emit(
                    doc_path,
                    *row_line,
                    format!(
                        "documented field `{field}` does not exist on TraceEvent::{}",
                        section.variant
                    ),
                );
            }
        }
    }
    for choice in &model.choice_names {
        if !doc_text.contains(&format!("`{choice}`")) {
            emit(
                doc_path,
                1,
                format!("ScalingChoice label `{choice}` is not mentioned anywhere in the schema"),
            );
        }
    }
    diags
}

/// Parses the `### `kind` — `TraceEvent::Variant`` sections and their
/// field tables out of TRACE_SCHEMA.md.
fn parse_doc_sections(doc_text: &str) -> Vec<DocSection> {
    let mut sections: Vec<DocSection> = Vec::new();
    let mut in_fence = false;
    for (idx, raw) in doc_text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim_end();
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(rest) = line.strip_prefix("### `") {
            let Some((kind, tail)) = rest.split_once('`') else { continue };
            let Some(variant) = tail
                .split_once("TraceEvent::")
                .map(|(_, v)| v.trim_end_matches(['`', ' ']).to_string())
            else {
                continue;
            };
            sections.push(DocSection {
                kind: kind.to_string(),
                variant,
                line: line_no,
                fields: Vec::new(),
            });
            continue;
        }
        if line.starts_with("## ") {
            // Field tables only belong to the catalogue's ### sections;
            // a new top-level section ends attribution.
            if line != "## Event catalogue" {
                sections.push(DocSection {
                    kind: String::new(),
                    variant: String::new(),
                    line: line_no,
                    fields: Vec::new(),
                });
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("| `") {
            if let Some((field, _)) = rest.split_once('`') {
                if let Some(section) = sections.last_mut() {
                    section.fields.push((field.to_string(), line_no));
                }
            }
        }
    }
    sections.retain(|s| !s.variant.is_empty());
    sections
}

/// A registered metric family: name → every registration site.
pub type RegisteredMetrics = BTreeMap<String, Vec<(std::path::PathBuf, u32)>>;

/// Collects the metric families registered by non-test library code:
/// `<recv>.counter("name", …)`, `.histogram("name", …)` and
/// `.series(Kind, "name", …)` call sites (the name is the first string
/// literal in the argument list).
pub fn collect_registered_metrics(files: &[&SourceFile]) -> RegisteredMetrics {
    let mut out = RegisteredMetrics::new();
    for file in files {
        let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
        for (pos, token) in code.iter().enumerate() {
            if token.kind != TokenKind::Ident
                || !matches!(file.text_of(token), "counter" | "histogram" | "series")
                || file.in_test_code(token.start)
            {
                continue;
            }
            let preceded_by_dot = pos > 0 && matches!(code[pos - 1].kind, TokenKind::Punct(b'.'));
            let called = matches!(code.get(pos + 1).map(|t| t.kind), Some(TokenKind::Punct(b'(')));
            if !preceded_by_dot || !called {
                continue;
            }
            // First string literal inside the argument list is the name.
            let mut depth = 0i32;
            let mut k = pos + 1;
            while k < code.len() {
                match code[k].kind {
                    TokenKind::Punct(b'(') => depth += 1,
                    TokenKind::Punct(b')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Str => {
                        if let Some(name) = code[k].str_content(&file.text) {
                            if !name.is_empty() {
                                out.entry(name.to_string())
                                    .or_default()
                                    .push((file.path.clone(), token.line));
                            }
                        }
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    out
}

/// Cross-checks docs/METRICS.md's catalogue tables against the
/// registered metric families.
pub fn check_metrics_doc(
    doc_path: &Path,
    doc_text: &str,
    registered: &RegisteredMetrics,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let documented = parse_metrics_catalogue(doc_text);
    if registered.is_empty() {
        diags.push(Diagnostic {
            rule: "metrics-doc-drift",
            severity: Severity::Error,
            path: doc_path.to_path_buf(),
            line: 1,
            col: 1,
            message: "no registered metrics found in library code; the collector is broken"
                .to_string(),
            chain: Vec::new(),
        });
        return diags;
    }
    for (name, sites) in registered {
        if !documented.iter().any(|(doc_name, _)| doc_name == name) {
            let (path, line) = &sites[0];
            diags.push(Diagnostic {
                rule: "metrics-doc-drift",
                severity: Severity::Error,
                path: path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "metric `{name}` is registered here but missing from {}'s catalogue",
                    doc_path.display()
                ),
                chain: Vec::new(),
            });
        }
    }
    for (name, line) in &documented {
        if !registered.contains_key(name) {
            diags.push(Diagnostic {
                rule: "metrics-doc-drift",
                severity: Severity::Error,
                path: doc_path.to_path_buf(),
                line: *line,
                col: 1,
                message: format!(
                    "documented metric `{name}` is not registered by any library code"
                ),
                chain: Vec::new(),
            });
        }
    }
    diags
}

/// The code-side store model extracted from the trace store's
/// `schema.rs`.
#[derive(Debug, Default)]
pub struct StoreModel {
    /// `EventKind` variant name → the tag `EventKind::tag` returns.
    pub tags: BTreeMap<String, String>,
    /// Variant name → (line of its `columns` arm, declared column names
    /// in storage order).
    pub columns: BTreeMap<String, (u32, Vec<String>)>,
    /// The labels `Agg::name` can return.
    pub agg_names: Vec<String>,
}

/// One documented column table of TRACESTORE.md's "Column layouts".
#[derive(Debug)]
struct StoreDocTable {
    tag: String,
    line: u32,
    /// Column name → line of its table row.
    columns: Vec<(String, u32)>,
}

/// Extracts the [`StoreModel`] from the lexed trace-store `schema.rs`.
///
/// `EventKind::columns` declares one `const NAME: &[ColumnSpec] = …;`
/// item per layout (const-fn slices are not `'static`-promoted, so the
/// code is forced into this shape) and then maps variants to consts in
/// its `match`; the parser mirrors that: collect the string literals of
/// each `const` item, then resolve `Self::Variant => CONST` arms.
pub fn parse_store_model(src: &SourceFile) -> StoreModel {
    let code: Vec<&Token> = src.code_tokens().map(|(_, t)| t).collect();
    let mut model = StoreModel::default();
    if let Some(body) = brace_body_after(src, &code, &["fn", "tag"]) {
        model.tags = parse_kind_arms(src, &code[body.0..body.1]);
    }
    if let Some(body) = brace_body_after(src, &code, &["fn", "columns"]) {
        let body = &code[body.0..body.1];
        let consts = parse_const_string_lists(src, body);
        for (variant, (line, const_name)) in parse_const_arms(src, body) {
            let cols = consts.get(&const_name).cloned().unwrap_or_default();
            model.columns.insert(variant, (line, cols));
        }
    }
    if let Some(body) = brace_body_after(src, &code, &["fn", "name"]) {
        model.agg_names = code[body.0..body.1]
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .filter_map(|t| t.str_content(&src.text))
            .map(str::to_string)
            .collect();
    }
    model
}

/// Collects `const NAME: … = …;` items, mapping each const's name to the
/// string literals appearing in its initialiser (the column names).
fn parse_const_string_lists(src: &SourceFile, body: &[&Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut k = 0;
    while k < body.len() {
        let is_const = body[k].kind == TokenKind::Ident && src.text_of(body[k]) == "const";
        let Some(name) = body.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
            k += 1;
            continue;
        };
        if !is_const {
            k += 1;
            continue;
        }
        let mut strings = Vec::new();
        k += 2;
        while k < body.len() && !matches!(body[k].kind, TokenKind::Punct(b';')) {
            if body[k].kind == TokenKind::Str {
                if let Some(s) = body[k].str_content(&src.text) {
                    strings.push(s.to_string());
                }
            }
            k += 1;
        }
        out.insert(src.text_of(name).to_string(), strings);
    }
    out
}

/// Parses `Self::Variant => CONST` arms: variant name → (line, const
/// identifier the arm resolves to).
fn parse_const_arms(src: &SourceFile, body: &[&Token]) -> BTreeMap<String, (u32, String)> {
    let mut out = BTreeMap::new();
    let mut k = 0;
    while k + 3 < body.len() {
        let is_self_path = body[k].kind == TokenKind::Ident
            && src.text_of(body[k]) == "Self"
            && matches!(body[k + 1].kind, TokenKind::Punct(b':'))
            && matches!(body[k + 2].kind, TokenKind::Punct(b':'));
        if !is_self_path {
            k += 1;
            continue;
        }
        let Some(variant) = body.get(k + 3).filter(|t| t.kind == TokenKind::Ident) else {
            k += 1;
            continue;
        };
        // Scan past `=>` to the arm's target identifier.
        let mut j = k + 4;
        while j < body.len() && body[j].kind != TokenKind::Ident {
            j += 1;
        }
        match body.get(j) {
            Some(t) if src.text_of(t) != "Self" => {
                out.insert(
                    src.text_of(variant).to_string(),
                    (variant.line, src.text_of(t).to_string()),
                );
                k = j + 1;
            }
            _ => k = j, // malformed arm; resync on the next `Self::`
        }
    }
    out
}

/// Cross-checks TRACESTORE.md against the store model. `doc_path` and
/// `code_path` are used for diagnostic locations only.
pub fn check_tracestore_doc(
    doc_path: &Path,
    doc_text: &str,
    code_path: &Path,
    model: &StoreModel,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut emit = |path: &Path, line: u32, message: String| {
        diags.push(Diagnostic {
            rule: "store-doc-drift",
            severity: Severity::Error,
            path: path.to_path_buf(),
            line,
            col: 1,
            message,
            chain: Vec::new(),
        });
    };

    let (tables, agg_rows) = parse_store_doc(doc_text);
    if model.columns.is_empty() {
        emit(code_path, 1, "could not locate `EventKind::columns` to cross-check".to_string());
        return diags;
    }
    if tables.is_empty() {
        emit(doc_path, 1, "no `### \\`tag\\`` tables found under `## Column layouts`".to_string());
        return diags;
    }

    for (variant, (line, cols)) in &model.columns {
        let Some(tag) = model.tags.get(variant) else {
            emit(code_path, *line, format!("EventKind::{variant} has no arm in EventKind::tag"));
            continue;
        };
        match tables.iter().find(|t| &t.tag == tag) {
            None => emit(
                code_path,
                *line,
                format!(
                    "EventKind::{variant} (`{tag}`) has no column table in {}",
                    doc_path.display()
                ),
            ),
            Some(table) => {
                for col in cols {
                    if !table.columns.iter().any(|(c, _)| c == col) {
                        emit(
                            doc_path,
                            table.line,
                            format!(
                                "table `{tag}` is missing a row for column `{col}` of \
                                 EventKind::{variant}"
                            ),
                        );
                    }
                }
            }
        }
    }
    for table in &tables {
        let Some((variant, _)) = model.tags.iter().find(|(_, tag)| *tag == &table.tag) else {
            emit(
                doc_path,
                table.line,
                format!("documented table `{}` does not correspond to any EventKind", table.tag),
            );
            continue;
        };
        let declared =
            model.columns.get(variant).map(|(_, cols)| cols.as_slice()).unwrap_or_default();
        for (col, row_line) in &table.columns {
            // `t` and `tenant` are implicit on every kind; documenting
            // them in a layout is allowed, never drift.
            if col == "t" || col == "tenant" {
                continue;
            }
            if !declared.iter().any(|c| c == col) {
                emit(
                    doc_path,
                    *row_line,
                    format!(
                        "documented column `{col}` is not declared for `{}` \
                         (EventKind::{variant})",
                        table.tag
                    ),
                );
            }
        }
    }

    if model.agg_names.is_empty() {
        emit(code_path, 1, "could not locate `Agg::name` to cross-check".to_string());
    } else {
        for name in &model.agg_names {
            if !agg_rows.iter().any(|(doc_name, _)| doc_name == name) {
                emit(
                    doc_path,
                    1,
                    format!("aggregation `{name}` is missing from the `## Aggregations` table"),
                );
            }
        }
        for (name, line) in &agg_rows {
            if !model.agg_names.contains(name) {
                emit(
                    doc_path,
                    *line,
                    format!("documented aggregation `{name}` does not exist in Agg"),
                );
            }
        }
    }
    diags
}

/// Parses TRACESTORE.md: the ``### `tag` `` column tables scoped to the
/// "Column layouts" section, and the `` | `name` | `` rows of the
/// "Aggregations" section.
fn parse_store_doc(doc_text: &str) -> (Vec<StoreDocTable>, Vec<(String, u32)>) {
    let mut tables: Vec<StoreDocTable> = Vec::new();
    let mut aggs = Vec::new();
    let mut in_layouts = false;
    let mut in_aggs = false;
    let mut in_fence = false;
    for (idx, raw) in doc_text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim_end();
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(heading) = line.strip_prefix("## ") {
            in_layouts = heading.trim() == "Column layouts";
            in_aggs = heading.trim() == "Aggregations";
            continue;
        }
        if in_layouts {
            if let Some(rest) = line.strip_prefix("### `") {
                if let Some((tag, _)) = rest.split_once('`') {
                    tables.push(StoreDocTable {
                        tag: tag.to_string(),
                        line: line_no,
                        columns: Vec::new(),
                    });
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("| `") {
                if let Some((col, _)) = rest.split_once('`') {
                    if let Some(table) = tables.last_mut() {
                        table.columns.push((col.to_string(), line_no));
                    }
                }
            }
        }
        if in_aggs {
            if let Some(rest) = line.strip_prefix("| `") {
                if let Some((name, _)) = rest.split_once('`') {
                    aggs.push((name.to_string(), line_no));
                }
            }
        }
    }
    (tables, aggs)
}

/// `(name, line)` rows extracted from a doc table or a code scan.
type NamedRows = Vec<(String, u32)>;

/// The code-side span model extracted from the spans crate's
/// `schema.rs`.
#[derive(Debug, Default)]
pub struct SpansModel {
    /// `SegmentKind::name` labels, in declaration order, with the line
    /// of each string literal.
    pub segments: NamedRows,
    /// `SLO_*` const metric names, with the line of each const item.
    pub slo_metrics: NamedRows,
}

/// Extracts the [`SpansModel`] from the lexed spans `schema.rs`: the
/// string literals of the `fn name` body (the segment labels — the file
/// declares exactly one `fn name`, on `SegmentKind`), and every
/// `const SLO_…: &str = "…";` item's string.
pub fn parse_spans_model(src: &SourceFile) -> SpansModel {
    let code: Vec<&Token> = src.code_tokens().map(|(_, t)| t).collect();
    let mut model = SpansModel::default();
    if let Some(body) = brace_body_after(src, &code, &["fn", "name"]) {
        model.segments = code[body.0..body.1]
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .filter_map(|t| t.str_content(&src.text).map(|s| (s.to_string(), t.line)))
            .collect();
    }
    let mut k = 0;
    while k + 1 < code.len() {
        let is_const = code[k].kind == TokenKind::Ident && src.text_of(code[k]) == "const";
        let named_slo =
            code[k + 1].kind == TokenKind::Ident && src.text_of(code[k + 1]).starts_with("SLO_");
        if !(is_const && named_slo) {
            k += 1;
            continue;
        }
        let line = code[k + 1].line;
        k += 2;
        while k < code.len() && !matches!(code[k].kind, TokenKind::Punct(b';')) {
            if code[k].kind == TokenKind::Str {
                if let Some(s) = code[k].str_content(&src.text) {
                    model.slo_metrics.push((s.to_string(), line));
                }
            }
            k += 1;
        }
    }
    model
}

/// Cross-checks docs/SPANS.md against the span model. `doc_path` and
/// `code_path` are used for diagnostic locations only.
pub fn check_spans_doc(
    doc_path: &Path,
    doc_text: &str,
    code_path: &Path,
    model: &SpansModel,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut emit = |path: &Path, line: u32, message: String| {
        diags.push(Diagnostic {
            rule: "spans-doc-drift",
            severity: Severity::Error,
            path: path.to_path_buf(),
            line,
            col: 1,
            message,
            chain: Vec::new(),
        });
    };

    let (doc_segments, doc_slo) = parse_spans_doc(doc_text);
    if model.segments.is_empty() {
        emit(code_path, 1, "could not locate `SegmentKind::name` to cross-check".to_string());
        return diags;
    }
    if doc_segments.is_empty() {
        emit(doc_path, 1, "no rows found under `## Segment taxonomy`".to_string());
        return diags;
    }

    for (name, line) in &model.segments {
        if !doc_segments.iter().any(|(doc_name, _)| doc_name == name) {
            emit(
                code_path,
                *line,
                format!("segment `{name}` has no row in {}'s segment taxonomy", doc_path.display()),
            );
        }
    }
    for (name, line) in &doc_segments {
        if !model.segments.iter().any(|(code_name, _)| code_name == name) {
            emit(
                doc_path,
                *line,
                format!("documented segment `{name}` does not exist in SegmentKind"),
            );
        }
    }

    if model.slo_metrics.is_empty() {
        emit(code_path, 1, "could not locate any `SLO_*` metric-name const to cross-check".into());
        return diags;
    }
    for (name, line) in &model.slo_metrics {
        if !doc_slo.iter().any(|(doc_name, _)| doc_name == name) {
            emit(
                code_path,
                *line,
                format!("SLO metric `{name}` has no row in {}'s SLO table", doc_path.display()),
            );
        }
    }
    for (name, line) in &doc_slo {
        if !model.slo_metrics.iter().any(|(code_name, _)| code_name == name) {
            emit(
                doc_path,
                *line,
                format!("documented SLO metric `{name}` is not declared in the span schema"),
            );
        }
    }
    diags
}

/// Parses docs/SPANS.md: the `` | `name` | `` rows of the "Segment
/// taxonomy" and "SLO metrics" sections.
fn parse_spans_doc(doc_text: &str) -> (NamedRows, NamedRows) {
    let mut segments = Vec::new();
    let mut slo = Vec::new();
    let mut in_segments = false;
    let mut in_slo = false;
    let mut in_fence = false;
    for (idx, raw) in doc_text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim_end();
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(heading) = line.strip_prefix("## ") {
            in_segments = heading.trim() == "Segment taxonomy";
            in_slo = heading.trim() == "SLO metrics";
            continue;
        }
        if let Some(rest) = line.strip_prefix("| `") {
            if let Some((name, _)) = rest.split_once('`') {
                if in_segments {
                    segments.push((name.to_string(), line_no));
                } else if in_slo {
                    slo.push((name.to_string(), line_no));
                }
            }
        }
    }
    (segments, slo)
}

/// Extracts `(metric name, line)` rows from the "Metric catalogue"
/// section's tables.
fn parse_metrics_catalogue(doc_text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_catalogue = false;
    let mut in_fence = false;
    for (idx, raw) in doc_text.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(heading) = line.strip_prefix("## ") {
            in_catalogue = heading.trim() == "Metric catalogue";
            continue;
        }
        if !in_catalogue {
            continue;
        }
        if let Some(rest) = line.strip_prefix("| `") {
            if let Some((name, _)) = rest.split_once('`') {
                out.push((name.to_string(), (idx + 1) as u32));
            }
        }
    }
    out
}
