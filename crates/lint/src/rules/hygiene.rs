//! Hygiene rules: panic discipline in library code, documentation on
//! every exported item, and no orphaned TODOs. The panic rules encode
//! the house style rather than a blanket ban: `expect("descriptive
//! invariant message")` is the sanctioned way to assert an invariant —
//! the message *is* the justification — while bare `unwrap()`,
//! tiny/empty expect messages and `panic!` need either a fix or an
//! explicit `scan-lint: allow(…) -- reason`.

use super::{report, RuleCtx};
use crate::diag::Diagnostic;
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;

/// Minimum bytes an `expect` message must carry to count as an
/// invariant statement.
pub const MIN_EXPECT_MESSAGE: usize = 8;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "trait", "static", "type", "mod", "union", "macro"];

pub(super) fn check(file: &SourceFile, ctx: RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    check_todos(file, diags);
    if !ctx.hygiene_scope() {
        return;
    }
    check_panic_discipline(file, diags);
    check_pub_docs(file, diags);
}

/// `stale-todo` — applies to every file class, comments included.
fn check_todos(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for token in file.tokens.iter().filter(|t| t.is_comment()) {
        let text = file.text_of(token);
        // A marker immediately followed by a letter ("TODOs", "TODOLIST")
        // is prose about TODOs, not a work marker.
        let Some(marker) = ["TODO", "FIXME"].iter().find(|m| {
            text.match_indices(**m).any(|(at, _)| {
                !text[at + m.len()..].starts_with(|c: char| c.is_ascii_alphanumeric())
            })
        }) else {
            continue;
        };
        let referenced = text.contains("http")
            || text.as_bytes().windows(2).any(|w| w[0] == b'#' && w[1].is_ascii_digit());
        if !referenced {
            report(
                diags,
                file,
                token,
                "stale-todo",
                format!(
                    "`{marker}` without an issue reference; add `(#<issue>)` or a link, or do it \
                     now"
                ),
            );
        }
    }
}

/// `no-unwrap` / `no-expect` / `no-panic` over non-test library code.
fn check_panic_discipline(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    for (pos, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || file.in_test_code(token.start) {
            continue;
        }
        let text = file.text_of(token);
        let prev_is_dot = pos > 0 && matches!(code[pos - 1].kind, TokenKind::Punct(b'.'));
        let next_kind = |ahead: usize| code.get(pos + ahead).map(|t| t.kind);

        if text == "unwrap"
            && prev_is_dot
            && next_kind(1) == Some(TokenKind::Punct(b'('))
            && next_kind(2) == Some(TokenKind::Punct(b')'))
        {
            report(
                diags,
                file,
                token,
                "no-unwrap",
                "bare `unwrap()` in library code; state the invariant with `expect(\"…\")` or \
                 handle the failure"
                    .to_string(),
            );
        }

        if text == "expect" && prev_is_dot && next_kind(1) == Some(TokenKind::Punct(b'(')) {
            // Only judge expect calls whose argument is a string literal:
            // a non-literal argument may not even be Option::expect.
            if let Some(arg) = code.get(pos + 2).filter(|t| t.kind == TokenKind::Str) {
                let len = arg.str_content(&file.text).map(str::len).unwrap_or(0);
                if len < MIN_EXPECT_MESSAGE {
                    report(
                        diags,
                        file,
                        token,
                        "no-expect",
                        format!(
                            "expect message {:?} is too short to state an invariant (< \
                             {MIN_EXPECT_MESSAGE} bytes); say what must hold and why",
                            arg.str_content(&file.text).unwrap_or_default()
                        ),
                    );
                }
            }
        }

        if PANIC_MACROS.contains(&text) && next_kind(1) == Some(TokenKind::Punct(b'!')) {
            report(
                diags,
                file,
                token,
                "no-panic",
                format!(
                    "`{text}!` in library code; return an error, make the state unrepresentable, \
                     or document the contract and allow with a reason"
                ),
            );
        }
    }
}

/// `pub-docs` — every `pub` item outside test code needs a doc comment
/// (possibly separated from the item by ordinary attributes).
fn check_pub_docs(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (idx, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident
            || file.text_of(token) != "pub"
            || file.in_test_code(token.start)
        {
            continue;
        }
        let Some((kind, name)) = pub_item_after(file, idx) else { continue };
        let (documented, hidden) = doc_state_before(file, idx);
        if !documented && !hidden {
            report(
                diags,
                file,
                token,
                "pub-docs",
                format!("public {kind} `{name}` has no doc comment"),
            );
        }
    }
}

/// Classifies the item following a `pub` token: returns `(kind, name)`
/// for items the rule covers, `None` for re-exports, restricted
/// visibility and shapes the tokenizer cannot classify (tuple fields).
fn pub_item_after(file: &SourceFile, pub_idx: usize) -> Option<(&'static str, String)> {
    let mut k = pub_idx + 1;
    // `pub(crate)` / `pub(super)` / `pub(in …)` — not exported API.
    if matches!(next_code(file, &mut k)?.kind, TokenKind::Punct(b'(')) {
        return None;
    }
    // Skip modifier keywords (`pub const fn`, `pub async fn`, …) while
    // remembering whether we saw `const` with no `fn` after it.
    let mut saw_const = false;
    loop {
        let t = next_code(file, &mut k)?;
        if t.kind != TokenKind::Ident {
            return None;
        }
        match file.text_of(t) {
            "use" | "impl" | "extern" => return None,
            "const" => {
                saw_const = true;
                k += 1;
            }
            "async" | "unsafe" => {
                k += 1;
            }
            word if ITEM_KEYWORDS.contains(&word) => {
                let kind: &'static str =
                    ITEM_KEYWORDS.iter().find(|w| **w == word).copied().unwrap_or("item");
                k += 1;
                let name = next_code(file, &mut k)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| file.text_of(t).to_string())
                    .unwrap_or_else(|| "<unnamed>".to_string());
                if kind == "mod" {
                    // Out-of-line `pub mod name;` carries its docs as
                    // `//!` inner docs in the module file itself.
                    k += 1;
                    let out_of_line = matches!(
                        next_code(file, &mut k).map(|t| t.kind),
                        Some(TokenKind::Punct(b';'))
                    );
                    if out_of_line {
                        return None;
                    }
                }
                return Some((kind, name));
            }
            _ if saw_const => {
                // `pub const NAME: …` — the ident is the const's name.
                return Some(("const", file.text_of(t).to_string()));
            }
            _ => {
                // `pub name: Type` — a named struct field.
                let name = file.text_of(t).to_string();
                k += 1;
                let is_field =
                    matches!(next_code(file, &mut k).map(|t| t.kind), Some(TokenKind::Punct(b':')));
                return is_field.then_some(("field", name));
            }
        }
    }
}

/// Returns the next non-comment token at or after `*k`, advancing `*k`
/// to its index.
fn next_code<'a>(file: &'a SourceFile, k: &mut usize) -> Option<&'a Token> {
    while file.tokens.get(*k).map(|t| t.is_comment()).unwrap_or(false) {
        *k += 1;
    }
    file.tokens.get(*k)
}

/// Walks backward from a `pub` token over stacked attributes to decide
/// whether the item is documented (a doc comment directly above) or
/// `#[doc(hidden)]`.
fn doc_state_before(file: &SourceFile, pub_idx: usize) -> (bool, bool) {
    let tokens = &file.tokens;
    let mut k = pub_idx;
    let mut documented = false;
    let mut hidden = false;
    while k > 0 {
        let prev = &tokens[k - 1];
        if prev.is_doc_comment() {
            documented = true;
            k -= 1;
        } else if prev.is_comment() {
            k -= 1;
        } else if matches!(prev.kind, TokenKind::Punct(b']')) {
            // Scan back over one `#[…]` attribute group.
            let mut depth = 0i32;
            let mut j = k - 1;
            let mut attr_mentions_doc_hidden = (false, false);
            loop {
                let t = &tokens[j];
                match t.kind {
                    TokenKind::Punct(b']') => depth += 1,
                    TokenKind::Punct(b'[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident => {
                        let text = file.text_of(t);
                        if text == "doc" {
                            attr_mentions_doc_hidden.0 = true;
                        }
                        if text == "hidden" {
                            attr_mentions_doc_hidden.1 = true;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return (documented, hidden);
                }
                j -= 1;
            }
            if attr_mentions_doc_hidden == (true, true) {
                hidden = true;
            } else if attr_mentions_doc_hidden.0 {
                // `#[doc = "…"]` counts as documentation.
                documented = true;
            }
            // Step past the `#` (and a possible `!`) before the `[`.
            k = j;
            if k > 0 && matches!(tokens[k - 1].kind, TokenKind::Punct(b'#')) {
                k -= 1;
            } else if k > 1
                && matches!(tokens[k - 1].kind, TokenKind::Punct(b'!'))
                && matches!(tokens[k - 2].kind, TokenKind::Punct(b'#'))
            {
                k -= 2;
            }
        } else {
            break;
        }
    }
    (documented, hidden)
}
