//! Determinism rules: the coding restrictions that keep a fixed-seed
//! session byte-identical run to run and thread-count-invariant. They
//! apply to library code of the sim-facing crates only (`scan-sim`,
//! `scan-sched`, `scan-cloud`, `scan-workload`, `scan-platform`); tests,
//! benches and binaries may freely use wall clocks and hash maps.

use super::{report, RuleCtx};
use crate::diag::Diagnostic;
use crate::lex::TokenKind;
use crate::source::SourceFile;

/// Identifiers whose mere presence in sim-facing library code is a
/// determinism hazard, with the message explaining the sanctioned
/// replacement.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "temp_dir"];

pub(super) fn check(file: &SourceFile, ctx: RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if !ctx.determinism_scope() {
        return;
    }
    let code: Vec<(usize, &crate::lex::Token)> = file.code_tokens().collect();
    for (pos, (_, token)) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || file.in_test_code(token.start) {
            continue;
        }
        let text = file.text_of(token);
        if HASH_TYPES.contains(&text) {
            report(
                diags,
                file,
                token,
                "hash-iter",
                format!(
                    "`{text}` in a sim path: iteration order varies per process, breaking \
                     fixed-seed reproducibility; use BTreeMap/BTreeSet, a sorted Vec or an arena"
                ),
            );
        }
        // The self-profiler (sim::prof) is the one sanctioned wall-clock
        // consumer; its sites carry explicit allow(wall-clock) reasons.
        if CLOCK_TYPES.contains(&text) {
            report(
                diags,
                file,
                token,
                "wall-clock",
                format!(
                    "`{text}` in a sim path: wall-clock reads make runs time-dependent; simulation \
                     time is `SimTime`, host-time profiling belongs in `scan_sim::prof`"
                ),
            );
        }
        if ENTROPY_IDENTS.contains(&text) {
            report(
                diags,
                file,
                token,
                "os-entropy",
                format!(
                    "`{text}` in a sim path: OS entropy breaks fixed-seed determinism; derive all \
                     randomness from the session's seeded `SimRng`"
                ),
            );
        }
        if text == "env" && is_path_prefix(file, &code, pos, "std") {
            report(
                diags,
                file,
                token,
                "os-entropy",
                "`std::env` read in a sim path: environment lookups make behaviour \
                 machine-dependent; thread configuration through `ScanConfig` instead"
                    .to_string(),
            );
        }
        if text == "partial_cmp" && unwrapped_after_call(file, &code, pos) {
            report(
                diags,
                file,
                token,
                "float-ord",
                "`partial_cmp(..).unwrap()`-style float ordering in a sim path: NaN panics aside, \
                 prefer `f64::total_cmp` (or an integer key) so comparisons are total and \
                 portable"
                    .to_string(),
            );
        }
    }
}

/// Whether the ident at `pos` is preceded by `prefix ::`.
fn is_path_prefix(
    file: &SourceFile,
    code: &[(usize, &crate::lex::Token)],
    pos: usize,
    prefix: &str,
) -> bool {
    if pos < 3 {
        return false;
    }
    let (a, b, c) = (code[pos - 3].1, code[pos - 2].1, code[pos - 1].1);
    matches!(b.kind, TokenKind::Punct(b':'))
        && matches!(c.kind, TokenKind::Punct(b':'))
        && a.kind == TokenKind::Ident
        && file.text_of(a) == prefix
}

/// Whether the call starting right after the ident at `pos` — i.e.
/// `partial_cmp( … )` — is followed by `.unwrap(` or `.expect(`.
fn unwrapped_after_call(
    file: &SourceFile,
    code: &[(usize, &crate::lex::Token)],
    pos: usize,
) -> bool {
    let mut k = pos + 1;
    if !matches!(code.get(k).map(|(_, t)| t.kind), Some(TokenKind::Punct(b'('))) {
        return false;
    }
    let mut depth = 0i32;
    while k < code.len() {
        match code[k].1.kind {
            TokenKind::Punct(b'(') => depth += 1,
            TokenKind::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let dot = code.get(k + 1).map(|(_, t)| t);
    let method = code.get(k + 2).map(|(_, t)| t);
    matches!(dot.map(|t| t.kind), Some(TokenKind::Punct(b'.')))
        && method
            .map(|t| t.kind == TokenKind::Ident && matches!(file.text_of(t), "unwrap" | "expect"))
            .unwrap_or(false)
}
