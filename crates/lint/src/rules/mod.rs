//! The rule set: per-file token rules (determinism + hygiene) and the
//! workspace-level doc–code consistency rules in [`consistency`].
//!
//! Every rule has a stable kebab-case id, a severity, and a one-line
//! summary (shown by `scan-lint --list-rules` and catalogued with
//! examples in `docs/LINTS.md`). Per-file rules receive a [`RuleCtx`]
//! telling them the file's target class and whether its crate is
//! sim-facing; each rule decides its own scope from that.

pub mod consistency;
mod determinism;
mod hygiene;
pub mod semantic;

use crate::diag::{Diagnostic, Severity};
use crate::source::{FileClass, SourceFile};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case identifier (what `allow(…)` names).
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, including the meta-rules the allow
/// machinery emits itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash-iter",
        severity: Severity::Error,
        summary: "no HashMap/HashSet in sim-facing library code (iteration order is \
                  nondeterministic); use BTreeMap/BTreeSet or an arena",
    },
    RuleInfo {
        id: "wall-clock",
        severity: Severity::Error,
        summary: "no std::time::Instant/SystemTime in sim-facing library code (sim::prof is the \
                  sanctioned wall-clock subsystem)",
    },
    RuleInfo {
        id: "os-entropy",
        severity: Severity::Error,
        summary: "no thread_rng/OsRng/std::env reads in sim-facing library code; all randomness \
                  flows from the seeded SimRng",
    },
    RuleInfo {
        id: "float-ord",
        severity: Severity::Error,
        summary: "no partial_cmp().unwrap()/expect() float ordering in sim-facing library code; \
                  use total_cmp or integer keys",
    },
    RuleInfo {
        id: "no-unwrap",
        severity: Severity::Warning,
        summary: "no bare unwrap() in library code; use expect(\"invariant message\") or handle \
                  the None/Err",
    },
    RuleInfo {
        id: "no-expect",
        severity: Severity::Warning,
        summary: "expect() messages in library code must state the invariant (a string literal of \
                  at least 8 bytes)",
    },
    RuleInfo {
        id: "no-panic",
        severity: Severity::Warning,
        summary: "no panic!/todo!/unimplemented! in library code; return a Result or document the \
                  contract and allow explicitly",
    },
    RuleInfo {
        id: "pub-docs",
        severity: Severity::Warning,
        summary: "every pub item in library code carries a doc comment",
    },
    RuleInfo {
        id: "stale-todo",
        severity: Severity::Warning,
        summary: "TODO/FIXME comments must reference an issue (`#123`) or a URL",
    },
    RuleInfo {
        id: "trace-doc-drift",
        severity: Severity::Error,
        summary: "docs/TRACE_SCHEMA.md must match the TraceEvent enum: variants, kind tags and \
                  fields, in both directions",
    },
    RuleInfo {
        id: "metrics-doc-drift",
        severity: Severity::Error,
        summary: "docs/METRICS.md must list exactly the metric families registered in library \
                  code, in both directions",
    },
    RuleInfo {
        id: "store-doc-drift",
        severity: Severity::Error,
        summary: "docs/TRACESTORE.md must match the trace store's schema: one column table per \
                  EventKind plus the Agg labels, in both directions",
    },
    RuleInfo {
        id: "spans-doc-drift",
        severity: Severity::Error,
        summary: "docs/SPANS.md must list exactly the segment taxonomy and SLO metric names \
                  declared in crates/spans/src/schema.rs, in both directions",
    },
    RuleInfo {
        id: "taint-nondet",
        severity: Severity::Error,
        summary: "no call path from sim-facing library code into a function that (transitively) \
                  uses HashMap/Instant/entropy/env in any crate; annotate a deterministic-by-\
                  construction sink with allow(taint-nondet) and a reason",
    },
    RuleInfo {
        id: "panic-path",
        severity: Severity::Error,
        summary: "no panic!/todo!/unimplemented!/bare unwrap() reachable along call edges from \
                  Platform::run/handle_event, EventHandler::handle or Observer::on_event",
    },
    RuleInfo {
        id: "dead-telemetry",
        severity: Severity::Error,
        summary: "every TraceEvent variant is constructed outside tests, every registered metric \
                  handle reaches an update call, every Observer+Merge type is buildable by an \
                  ObserverFactory",
    },
    RuleInfo {
        id: "bad-allow",
        severity: Severity::Error,
        summary: "scan-lint allow directives must be well-formed, name known rules, and carry a \
                  `-- <reason>`",
    },
    RuleInfo {
        id: "unused-allow",
        severity: Severity::Warning,
        summary: "allow directives that suppress nothing must be removed",
    },
];

/// Looks up a rule's registered severity.
pub fn severity_of(id: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == id)
        .map(|r| r.severity)
        .expect("rules always report under a registered id")
}

/// Whether `id` names a known rule (used to validate allow directives).
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Per-file facts the token rules scope themselves by.
#[derive(Debug, Clone, Copy)]
pub struct RuleCtx<'a> {
    /// Target class of the file (library / binary / bench / test).
    pub class: FileClass,
    /// Cargo package name of the owning crate (e.g. `scan-sim`).
    pub crate_name: &'a str,
    /// Whether the crate is on the simulation path (determinism rules).
    pub sim_facing: bool,
}

impl RuleCtx<'_> {
    /// Whether determinism rules apply: sim-facing crates' library code.
    pub fn determinism_scope(&self) -> bool {
        self.sim_facing && self.class == FileClass::Library
    }

    /// Whether hygiene rules apply: any crate's library code.
    pub fn hygiene_scope(&self) -> bool {
        self.class == FileClass::Library
    }
}

/// Runs every per-file rule on one file *without* applying allow
/// directives — the workspace run applies allows globally afterwards so
/// one ledger covers both per-file and cross-file (semantic) findings.
pub fn check_file_raw(file: &SourceFile, ctx: RuleCtx<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    determinism::check(file, ctx, &mut diags);
    hygiene::check(file, ctx, &mut diags);
    diags
}

/// Runs every per-file rule on one file, then applies the file's allow
/// directives. Returned diagnostics are final for this file (modulo the
/// workspace-level consistency rules, which report on other files).
pub fn check_file(file: &SourceFile, ctx: RuleCtx<'_>) -> Vec<Diagnostic> {
    let mut diags = check_file_raw(file, ctx);
    crate::diag::apply_allows(file, &mut diags, is_known_rule);
    diags.sort_by_key(|d| (d.line, d.col));
    diags
}

/// Helper shared by rules: emit one diagnostic at a token.
pub(crate) fn report(
    diags: &mut Vec<Diagnostic>,
    file: &SourceFile,
    token: &crate::lex::Token,
    rule: &'static str,
    message: String,
) {
    diags.push(Diagnostic {
        rule,
        severity: severity_of(rule),
        path: file.path.clone(),
        line: token.line,
        col: token.col,
        message,
        chain: Vec::new(),
    });
}
