//! The interprocedural passes over the workspace call graph:
//! `taint-nondet`, `panic-path` and `dead-telemetry`. See
//! `docs/LINTS.md` § "Semantic passes" for the contracts.
//!
//! All three report [`Diagnostic`]s carrying an evidence
//! [`ChainHop`] chain; suppression of the *reported* site goes through
//! the workspace-global allow application, while taint additionally
//! consults [`Allows`] mid-analysis — an allow on a hazard line kills
//! that seed, and an allow on a function's declaration line is a sink
//! annotation that absorbs any taint flowing into or out of it.

use crate::diag::{Allows, ChainHop, Diagnostic};
use crate::graph::CallGraph;
use crate::lex::TokenKind;
use crate::model::{FileFacts, FnId, SemanticModel};
use crate::rules::{consistency, severity_of};
use crate::source::FileClass;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// Runs all three semantic passes.
pub fn check(
    model: &SemanticModel<'_>,
    graph: &CallGraph,
    allows: &mut Allows,
    diags: &mut Vec<Diagnostic>,
) {
    check_taint(model, graph, allows, diags);
    check_panic_paths(model, graph, diags);
    check_dead_telemetry(model, diags);
}

fn diag(
    rule: &'static str,
    path: PathBuf,
    line: u32,
    col: u32,
    message: String,
    chain: Vec<ChainHop>,
) -> Diagnostic {
    Diagnostic { rule, severity: severity_of(rule), path, line, col, message, chain }
}

/// Why a function is nondeterminism-tainted.
enum Cause {
    /// It contains the hazard itself (index into its `hazards`).
    Seed(usize),
    /// It calls a tainted function at this line of its own file.
    Via(FnId, u32),
}

/// `taint-nondet`: determinism hazards in *non-sim-facing* library code
/// (the per-file rules already forbid them in sim-facing code outright)
/// propagate backwards along call edges through non-sim functions; every
/// call edge from a sim-facing library function into a tainted function
/// is an error, reported at the call site with the full chain down to
/// the seeding hazard.
fn check_taint(
    model: &SemanticModel<'_>,
    graph: &CallGraph,
    allows: &mut Allows,
    diags: &mut Vec<Diagnostic>,
) {
    let mut cause: BTreeMap<FnId, Cause> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();

    for id in 0..model.fns.len() {
        let info = &model.fns[id];
        if info.sim_facing
            || info.class != FileClass::Library
            || info.hazards.is_empty()
            || model.decl(id).is_test
        {
            continue;
        }
        let path = model.file_of(id).path.clone();
        // A sink annotation on the declaration absorbs every hazard of
        // (and any taint through) this function.
        if allows.allowed(&path, model.decl(id).line, "taint-nondet") {
            continue;
        }
        for (hi, hz) in info.hazards.iter().enumerate() {
            if allows.allowed(&path, hz.line, "taint-nondet") {
                continue; // this seed is individually excused
            }
            cause.insert(id, Cause::Seed(hi));
            queue.push_back(id);
            break;
        }
    }

    while let Some(f) = queue.pop_front() {
        for edge in &graph.callers[f] {
            let caller = edge.other;
            let info = &model.fns[caller];
            let decl = model.decl(caller);
            if decl.is_test || info.class != FileClass::Library {
                continue;
            }
            if info.sim_facing {
                // The sim boundary crossing: report here, don't propagate
                // further (anything past this point is sim-facing code,
                // which the per-file rules keep hazard-free themselves).
                let path = model.file_of(caller).path.clone();
                let (chain, seed) = taint_chain(model, &cause, caller, edge.line, f);
                let through = model.label(f);
                diags.push(diag(
                    "taint-nondet",
                    path,
                    edge.line,
                    1,
                    format!(
                        "sim-facing `{}` calls `{through}`, which carries {} from {}:{}; chain: {}",
                        model.label(caller),
                        seed.0,
                        seed.1.display(),
                        seed.2,
                        chain_text(&chain),
                    ),
                    chain,
                ));
            } else if let std::collections::btree_map::Entry::Vacant(slot) = cause.entry(caller) {
                let path = model.file_of(caller).path.clone();
                if allows.allowed(&path, decl.line, "taint-nondet") {
                    continue; // sink annotation: absorbs inflowing taint
                }
                slot.insert(Cause::Via(f, edge.line));
                queue.push_back(caller);
            }
        }
    }
}

/// The evidence chain for one crossing edge, outermost hop (the
/// reported call site) first, and the seed's (what, path, line).
fn taint_chain(
    model: &SemanticModel<'_>,
    cause: &BTreeMap<FnId, Cause>,
    caller: FnId,
    call_line: u32,
    first: FnId,
) -> (Vec<ChainHop>, (String, PathBuf, u32)) {
    let mut hops = vec![ChainHop {
        label: model.label(caller),
        path: model.file_of(caller).path.clone(),
        line: call_line,
    }];
    let mut cur = first;
    loop {
        let path = model.file_of(cur).path.clone();
        match cause.get(&cur).expect("taint chains only link tainted functions") {
            Cause::Seed(hi) => {
                let hz = &model.fns[cur].hazards[*hi];
                hops.push(ChainHop {
                    label: model.label(cur),
                    path: path.clone(),
                    line: model.decl(cur).line,
                });
                let seed = (hz.what.clone(), path.clone(), hz.line);
                hops.push(ChainHop { label: format!("{} seed", hz.what), path, line: hz.line });
                return (hops, seed);
            }
            Cause::Via(callee, line) => {
                hops.push(ChainHop { label: model.label(cur), path, line: *line });
                cur = *callee;
            }
        }
    }
}

fn chain_text(chain: &[ChainHop]) -> String {
    chain.iter().map(|h| h.label.as_str()).collect::<Vec<_>>().join(" -> ")
}

/// `panic-path`: `panic!`/`todo!`/`unimplemented!` and bare `unwrap()`
/// sites in library code that are reachable, along call edges, from the
/// platform's event loop (`Platform::run`/`handle_event`, any
/// `EventHandler::handle` impl) or any `Observer::on_event` impl.
/// `expect("…")` is deliberately *not* a source — a stated invariant is
/// the house style for asserting impossibility — and neither is
/// indexing, which the arena-based designs use pervasively.
fn check_panic_paths(model: &SemanticModel<'_>, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let mut parent: BTreeMap<FnId, (FnId, u32)> = BTreeMap::new();
    let mut root_of: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();

    for id in 0..model.fns.len() {
        let decl = model.decl(id);
        if decl.is_test {
            continue;
        }
        let is_root = (decl.owner.as_deref() == Some("Platform")
            && matches!(decl.name.as_str(), "run" | "handle_event"))
            || (decl.trait_name.as_deref() == Some("EventHandler") && decl.name == "handle")
            || (decl.trait_name.as_deref() == Some("Observer") && decl.name == "on_event");
        if is_root {
            root_of.insert(id, id);
            queue.push_back(id);
        }
    }

    while let Some(f) = queue.pop_front() {
        let root = root_of[&f];
        for edge in &graph.callees[f] {
            let callee = edge.other;
            if root_of.contains_key(&callee) || model.decl(callee).is_test {
                continue;
            }
            root_of.insert(callee, root);
            parent.insert(callee, (f, edge.line));
            queue.push_back(callee);
        }
    }

    for (&id, &root) in &root_of {
        let info = &model.fns[id];
        if info.class != FileClass::Library {
            continue;
        }
        for site in &info.panics {
            let path = model.file_of(id).path.clone();
            let chain = panic_chain(model, &parent, id, root, site.line);
            diags.push(diag(
                "panic-path",
                path,
                site.line,
                site.col,
                format!(
                    "{} is reachable from hot-path root `{}`; chain: {}",
                    site.what,
                    model.label(root),
                    chain_text(&chain),
                ),
                chain,
            ));
        }
    }
}

/// Root-first chain for a reachable panic site.
fn panic_chain(
    model: &SemanticModel<'_>,
    parent: &BTreeMap<FnId, (FnId, u32)>,
    id: FnId,
    root: FnId,
    site_line: u32,
) -> Vec<ChainHop> {
    let mut rev = vec![ChainHop {
        label: "panic site".to_string(),
        path: model.file_of(id).path.clone(),
        line: site_line,
    }];
    let mut cur = id;
    while cur != root {
        let (caller, line) = parent[&cur];
        rev.push(ChainHop {
            label: model.label(cur),
            path: model.file_of(caller).path.clone(),
            line,
        });
        cur = caller;
    }
    rev.push(ChainHop {
        label: model.label(root),
        path: model.file_of(root).path.clone(),
        line: model.decl(root).line,
    });
    rev.reverse();
    rev
}

/// Methods that count as *updating* a metric — handle-style
/// (`handle.inc()`) and the registry's imperative vocabulary
/// (`registry.counter_add(handle, n)`), where the handle is an argument.
const UPDATE_METHODS: &[&str] =
    &["inc", "add", "observe", "sample", "set", "record", "counter_add", "gauge_set", "rate_add"];
/// Registrar methods whose string argument names a metric family (the
/// same vocabulary as the metrics-doc-drift collector).
const REGISTER_METHODS: &[&str] = &["counter", "histogram", "series"];

/// `dead-telemetry`: telemetry that is declared but can never produce
/// data — (a) `TraceEvent` variants never constructed outside tests,
/// (b) metric registrations whose handle never reaches an update call,
/// (c) `Observer + Merge` types no `ObserverFactory` impl can build.
fn check_dead_telemetry(model: &SemanticModel<'_>, diags: &mut Vec<Diagnostic>) {
    check_unconstructed_variants(model, diags);
    check_unread_metrics(model, diags);
    check_unreachable_observers(model, diags);
}

/// (a) Every `TraceEvent` variant must be constructed somewhere outside
/// test code. Patterns (match arms, `if let`, `..` rests) don't count.
fn check_unconstructed_variants(model: &SemanticModel<'_>, diags: &mut Vec<Diagnostic>) {
    let Some(trace) = model
        .files
        .iter()
        .find(|f| f.wf.crate_name == "scan-sim" && f.wf.file.path.ends_with("src/trace.rs"))
    else {
        return; // no trace schema in this workspace (fixture runs)
    };
    let trace_model = consistency::parse_trace_model(&trace.wf.file);
    if trace_model.variants.is_empty() {
        return;
    }

    let mut constructed: BTreeSet<String> = BTreeSet::new();
    for facts in &model.files {
        if !matches!(facts.wf.class, FileClass::Library | FileClass::Binary) {
            continue;
        }
        collect_constructions(facts, "TraceEvent", &mut constructed);
    }

    for (variant, (line, _fields)) in &trace_model.variants {
        if !constructed.contains(variant) {
            diags.push(diag(
                "dead-telemetry",
                trace.wf.file.path.clone(),
                *line,
                1,
                format!(
                    "`TraceEvent::{variant}` is declared but never constructed outside tests; \
                     emit it or retire the variant (and its docs/TRACE_SCHEMA.md entry)"
                ),
                Vec::new(),
            ));
        }
    }
}

/// Collects variants of `enum_name` that appear in *construction*
/// position (`Enum::V { … }` as an expression) in non-test code.
fn collect_constructions(facts: &FileFacts<'_>, enum_name: &str, out: &mut BTreeSet<String>) {
    let file = &facts.wf.file;
    let code = &facts.code;
    for k in 0..code.len() {
        if code[k].kind != TokenKind::Ident
            || code[k].text(&file.text) != enum_name
            || file.in_test_code(code[k].start)
        {
            continue;
        }
        // `Enum :: Variant`
        let is_path = matches!(code.get(k + 1).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            && matches!(code.get(k + 2).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            && matches!(code.get(k + 3).map(|t| t.kind), Some(TokenKind::Ident));
        if !is_path {
            continue;
        }
        let variant = code[k + 3].text(&file.text).to_string();
        // Only a braced body can be a struct-variant construction; a bare
        // mention (match arm head, `matches!`, doc link) never is.
        if !matches!(code.get(k + 4).map(|t| t.kind), Some(TokenKind::Punct(b'{'))) {
            continue;
        }
        // Scan the braced body: `..` at depth 1 marks a rest pattern;
        // `=>` or `=` straight after the close marks a match arm or
        // `if let` — all pattern positions, not constructions.
        let mut depth = 0i32;
        let mut j = k + 4;
        let mut has_rest = false;
        while j < code.len() {
            match code[j].kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct(b'.')
                    if depth == 1
                        && matches!(
                            code.get(j + 1).map(|t| t.kind),
                            Some(TokenKind::Punct(b'.'))
                        ) =>
                {
                    has_rest = true;
                }
                _ => {}
            }
            j += 1;
        }
        let next = code.get(j + 1).map(|t| t.kind);
        let arrow = next == Some(TokenKind::Punct(b'='));
        if !has_rest && !arrow {
            out.insert(variant);
        }
    }
}

/// (b) Every metric registration's handle must reach an update call.
fn check_unread_metrics(model: &SemanticModel<'_>, diags: &mut Vec<Diagnostic>) {
    for (fi, facts) in model.files.iter().enumerate() {
        if facts.wf.class != FileClass::Library {
            continue;
        }
        let file = &facts.wf.file;
        let code = &facts.code;
        for k in 0..code.len() {
            if code[k].kind != TokenKind::Ident
                || !REGISTER_METHODS.contains(&code[k].text(&file.text))
                || file.in_test_code(code[k].start)
            {
                continue;
            }
            let is_call = k > 0
                && matches!(code[k - 1].kind, TokenKind::Punct(b'.'))
                && matches!(code.get(k + 1).map(|t| t.kind), Some(TokenKind::Punct(b'(')))
                && matches!(code.get(k + 2).map(|t| t.kind), Some(TokenKind::Str));
            if !is_call {
                continue;
            }
            let name = code[k + 2].str_content(&file.text).unwrap_or_default().to_string();
            let Some(binding) = registration_binding(facts, k) else {
                continue; // handle shape not statable; give it the benefit
            };
            if !handle_is_updated(model, fi, &binding, code[k].line) {
                diags.push(diag(
                    "dead-telemetry",
                    file.path.clone(),
                    code[k].line,
                    code[k].col,
                    format!(
                        "metric `{name}` is registered into `{binding}` but that handle never \
                         reaches an update call ({}); wire it up or drop the registration",
                        UPDATE_METHODS.join("/"),
                    ),
                    Vec::new(),
                ));
            }
        }
    }
}

/// The binding a registration call's result lands in: the `let` name or
/// the struct-literal field of the enclosing statement.
fn registration_binding(facts: &FileFacts<'_>, call_idx: usize) -> Option<String> {
    let file = &facts.wf.file;
    let code = &facts.code;
    // Walk back to the statement start: `;`, `,`, `{` or `}` at depth 0
    // (closing brackets seen while walking backward open a nesting level).
    let mut depth = 0i32;
    let mut b = call_idx;
    while b > 0 {
        match code[b - 1].kind {
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth += 1,
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth -= 1,
            TokenKind::Punct(b'}') => depth += 1,
            TokenKind::Punct(b'{') if depth > 0 => depth -= 1,
            TokenKind::Punct(b'{') | TokenKind::Punct(b';') => break,
            TokenKind::Punct(b',') if depth == 0 => break,
            _ => {}
        }
        b -= 1;
    }
    let word =
        |i: usize| code.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text(&file.text));
    if word(b) == Some("let") {
        let mut n = b + 1;
        if word(n) == Some("mut") {
            n += 1;
        }
        return word(n).map(str::to_string);
    }
    // `field: <registrar chain>` inside a struct literal.
    if let Some(field) = word(b) {
        if matches!(code.get(b + 1).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            && !matches!(code.get(b + 2).map(|t| t.kind), Some(TokenKind::Punct(b':')))
        {
            return Some(field.to_string());
        }
    }
    None
}

/// Whether `binding` appears near an update-method call in the owning
/// crate's non-test library code (a ±40-token window around each
/// occurrence, so multi-line update expressions still match).
fn handle_is_updated(
    model: &SemanticModel<'_>,
    file_idx: usize,
    binding: &str,
    registration_line: u32,
) -> bool {
    let crate_name = &model.files[file_idx].wf.crate_name;
    for facts in &model.files {
        if &facts.wf.crate_name != crate_name || facts.wf.class != FileClass::Library {
            continue;
        }
        let file = &facts.wf.file;
        let code = &facts.code;
        for k in 0..code.len() {
            if code[k].kind != TokenKind::Ident
                || code[k].text(&file.text) != binding
                || file.in_test_code(code[k].start)
            {
                continue;
            }
            if std::ptr::eq(&facts.wf.file, &model.files[file_idx].wf.file)
                && code[k].line == registration_line
            {
                continue; // the registration itself doesn't count as a read
            }
            let lo = k.saturating_sub(40);
            let hi = (k + 40).min(code.len());
            for j in lo..hi {
                if code[j].kind == TokenKind::Ident
                    && UPDATE_METHODS.contains(&code[j].text(&file.text))
                    && j > 0
                    && matches!(code[j - 1].kind, TokenKind::Punct(b'.'))
                    && matches!(code.get(j + 1).map(|t| t.kind), Some(TokenKind::Punct(b'(')))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// (c) Every type implementing both `Observer` and `Merge` must be
/// buildable: some `ObserverFactory` impl has to name it. A Merge-only
/// type (a summary) or an Observer-only type (a sink without parallel
/// merge) is exempt — only the combination claims "I am fleet telemetry".
fn check_unreachable_observers(model: &SemanticModel<'_>, diags: &mut Vec<Diagnostic>) {
    let observers = model.trait_impls("Observer");
    let merges = model.trait_impls("Merge");
    if observers.is_empty() || merges.is_empty() {
        return;
    }
    let buildable = model.idents_in_trait_impls("ObserverFactory");
    for (ty, (file_idx, line)) in &merges {
        if !observers.contains_key(ty) || buildable.contains(ty) {
            continue;
        }
        diags.push(diag(
            "dead-telemetry",
            model.files[*file_idx].wf.file.path.clone(),
            *line,
            1,
            format!(
                "`{ty}` implements Observer and Merge but no ObserverFactory builds it; fleet \
                 runs can never collect its telemetry — add a factory or drop the Merge impl"
            ),
            Vec::new(),
        ));
    }
}
