//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: identifiers, punctuation, numbers, the full string/char
//! literal zoo (so nothing inside a literal is ever mistaken for code),
//! and comments kept as first-class tokens (the hygiene rules and the
//! `scan-lint: allow(…)` escape hatch both read them).
//!
//! This is deliberately not a parser: the rules in [`crate::rules`] work
//! on token patterns plus a little brace/paren matching, which keeps the
//! pass fast (the whole workspace tokenizes in tens of milliseconds) and
//! dependency-free — the container is offline, so a real parser crate is
//! not an option.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#type`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A numeric literal (`0.5`, `0x5CA4`, `1e-3`).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`::` is two `Punct(b':')` tokens).
    Punct(u8),
    /// A `//` comment. `doc` marks `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A `/* */` comment (nesting handled). `doc` marks `/**` and `/*!`.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
}

/// One token with its byte span and human coordinates.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment { .. } | TokenKind::BlockComment { .. })
    }

    /// Whether the token is a doc comment.
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }

    /// For [`TokenKind::Str`] tokens: the literal's content with quotes,
    /// prefixes and raw-string hashes stripped (escapes are *not*
    /// processed — the rules only care about content length and plain
    /// text). Returns `None` for other token kinds.
    pub fn str_content<'a>(&self, src: &'a str) -> Option<&'a str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let text = self.text(src);
        let body = text.trim_start_matches(['b', 'r']).trim_start_matches('#');
        let body = body.strip_prefix('"')?;
        Some(body.trim_end_matches('#').strip_suffix('"').unwrap_or(body))
    }
}

/// Tokenizes one Rust source file. Unterminated literals and comments are
/// tolerated (the token runs to end of input): the linter must keep going
/// on code that `rustc` would reject, since it runs before the compiler.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, line_start: 0, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let col = (start - self.line_start + 1) as u32;
            let kind = self.next_kind();
            let Some(kind) = kind else { continue };
            self.out.push(Token { kind, start, end: self.pos, line, col });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining the line map.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Lexes one token, returning `None` for skipped whitespace.
    fn next_kind(&mut self) -> Option<TokenKind> {
        let c = self.peek(0);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                self.bump();
                None
            }
            b'/' if self.peek(1) == b'/' => Some(self.line_comment()),
            b'/' if self.peek(1) == b'*' => Some(self.block_comment()),
            b'"' => Some(self.string()),
            b'\'' => Some(self.char_or_lifetime()),
            b'r' | b'b' if self.literal_prefix() => Some(self.prefixed_literal()),
            _ if c.is_ascii_digit() => Some(self.number()),
            _ if is_ident_start(c) => Some(self.ident()),
            _ => {
                self.bump();
                Some(TokenKind::Punct(c))
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///x` is doc, `////` is a plain comment row, `//!` is inner doc.
        let doc = match (self.peek(2), self.peek(3)) {
            (b'/', b'/') => false,
            (b'/', _) | (b'!', _) => true,
            _ => false,
        };
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let doc = matches!((self.peek(2), self.peek(3)), (b'*', b) if b != b'*' && b != b'/')
            || self.peek(2) == b'!';
        self.bump_n(2);
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// A plain `"…"` string with backslash escapes.
    fn string(&mut self) -> TokenKind {
        self.bump();
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    /// Whether the `r`/`b` at the cursor starts a literal rather than an
    /// identifier: `r"`, `r#"`, `r#raw_ident` (ident, handled there),
    /// `b"`, `b'`, `br"`, `br#"`, `rb` is not a thing.
    fn literal_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1), self.peek(2)) {
            (b'r', b'"', _) | (b'b', b'"', _) | (b'b', b'\'', _) => true,
            (b'r', b'#', third) => third == b'"' || third == b'#',
            (b'b', b'r', b'"') | (b'b', b'r', b'#') => true,
            _ => false,
        }
    }

    fn prefixed_literal(&mut self) -> TokenKind {
        if self.peek(0) == b'b' && self.peek(1) == b'\'' {
            self.bump();
            return self.char_or_lifetime();
        }
        // Consume the prefix letters, count the hashes, then the body.
        while matches!(self.peek(0), b'r' | b'b') {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#ident` — a raw identifier, not a literal.
            return self.ident();
        }
        self.bump();
        'body: while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                if (1..=hashes).all(|i| self.peek(i) == b'#') {
                    self.bump_n(1 + hashes);
                    break 'body;
                }
                // A quote not followed by enough hashes is content.
            } else if hashes == 0 && self.peek(0) == b'\\' {
                self.bump();
            }
            self.bump();
        }
        TokenKind::Str
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump();
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume to the closing quote.
            while self.pos < self.src.len() {
                match self.peek(0) {
                    b'\\' => self.bump_n(2),
                    b'\'' => {
                        self.bump();
                        return TokenKind::Char;
                    }
                    _ => self.bump(),
                }
            }
            return TokenKind::Char;
        }
        if is_ident_start(self.peek(0)) && self.peek(1) != b'\'' {
            // `'static`, `'a` — a lifetime/label.
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            return TokenKind::Lifetime;
        }
        // `'x'` or a multi-byte UTF-8 char: consume to the closing quote.
        while self.pos < self.src.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        if self.pos < self.src.len() {
            self.bump();
        }
        TokenKind::Char
    }

    fn number(&mut self) -> TokenKind {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                // `1e-3` / `0x…` digits and suffixes; a sign is part of the
                // number only directly after an exponent marker.
                if matches!(c, b'e' | b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.bump_n(2);
                    continue;
                }
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `0.5` continues the number; `1..n` and `2.pow()` do not.
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        if self.peek(0) == b'r' && self.peek(1) == b'#' {
            self.bump_n(2);
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        TokenKind::Ident
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = 0.5e-3 + y_2;");
        let texts: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "0.5e-3", "+", "y_2", ";"]);
        assert_eq!(toks[3].0, TokenKind::Number);
    }

    #[test]
    fn range_does_not_swallow_dots() {
        let texts: Vec<String> = kinds("0..5").into_iter().map(|(_, s)| s).collect();
        assert_eq!(texts, ["0", ".", ".", "5"]);
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "HashMap // not a comment"; x"#;
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.iter().all(|(_, s)| s != "HashMap"));
        assert_eq!(toks.last().map(|(_, s)| s.as_str()), Some("x"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let src = "r#\"quote \" inside\"# b\"bytes\" br#\"raw\"# r#type";
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
        assert_eq!(toks.last().map(|(k, s)| (*k, s.as_str())), Some((TokenKind::Ident, "r#type")));
    }

    #[test]
    fn str_content_strips_delimiters() {
        let src = "\"abc\" r#\"de\"f\"# b\"gh\"";
        let toks = tokenize(src);
        let contents: Vec<&str> = toks.iter().filter_map(|t| t.str_content(src)).collect();
        assert_eq!(contents, ["abc", "de\"f", "gh"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'; b'z'; 'label: loop {}");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'label"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 3);
    }

    #[test]
    fn comments_and_doc_flavours() {
        let src = "// plain\n/// doc\n//! inner\n//// rule\n/* block */\n/** docblock */ fn";
        let toks = tokenize(src);
        let docs: Vec<bool> =
            toks.iter().filter(|t| t.is_comment()).map(|t| t.is_doc_comment()).collect();
        assert_eq!(docs, [false, true, true, false, false, true]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "fn a() {}\n  let b = 1;";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.text(src) == "b").map(|t| (t.line, t.col));
        assert_eq!(b, Some((2, 7)));
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        for src in ["\"open", "r#\"open", "/* open", "'\\", "b'"] {
            let _ = tokenize(src);
        }
    }
}
