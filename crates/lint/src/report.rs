//! Rendering a [`RunResult`] for humans
//! (grouped table) and machines (`--json`, hand-rolled — the analyzer
//! has zero dependencies by design).

use crate::diag::{Diagnostic, Severity};
use crate::workspace::RunResult;
use std::fmt::Write;

/// Counts by severity.
pub fn totals(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    (errors, diags.len() - errors)
}

/// The human report: findings grouped by file, then a one-line summary.
/// With `explain_chain`, each finding's evidence chain follows it, one
/// hop per line, outermost first.
pub fn render_human(result: &RunResult, explain_chain: bool) -> String {
    let mut out = String::new();
    let mut last_path = None;
    for diag in &result.diagnostics {
        if last_path != Some(&diag.path) {
            if last_path.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "{}", diag.path.display());
            last_path = Some(&diag.path);
        }
        let _ = writeln!(
            out,
            "  {}:{}: {} [{}] {}",
            diag.line, diag.col, diag.severity, diag.rule, diag.message
        );
        if explain_chain {
            for hop in &diag.chain {
                let _ =
                    writeln!(out, "      -> {} ({}:{})", hop.label, hop.path.display(), hop.line);
            }
        }
    }
    if !result.diagnostics.is_empty() {
        out.push('\n');
    }
    let (errors, warnings) = totals(&result.diagnostics);
    let _ = writeln!(
        out,
        "scan-lint: {} files scanned, {errors} error{}, {warnings} warning{}",
        result.files_scanned,
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// The machine report: a single JSON object with the scan totals and a
/// flat findings array.
pub fn render_json(result: &RunResult) -> String {
    let (errors, warnings) = totals(&result.diagnostics);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"files_scanned\":{},\"errors\":{errors},\"warnings\":{warnings},\"findings\":[",
        result.files_scanned
    );
    for (i, diag) in result.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"path\":{},\"line\":{},\"col\":{},\"severity\":{},\"rule\":{},\"message\":{},\
             \"chain\":[",
            json_str(&diag.path.display().to_string()),
            diag.line,
            diag.col,
            json_str(&diag.severity.to_string()),
            json_str(diag.rule),
            json_str(&diag.message),
        );
        for (j, hop) in diag.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"path\":{},\"line\":{}}}",
                json_str(&hop.label),
                json_str(&hop.path.display().to_string()),
                hop.line,
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn human_summary_counts() {
        let result = RunResult {
            diagnostics: vec![Diagnostic {
                rule: "no-unwrap",
                severity: Severity::Warning,
                path: PathBuf::from("x.rs"),
                line: 3,
                col: 7,
                message: "m".to_string(),
                chain: Vec::new(),
            }],
            files_scanned: 2,
        };
        let text = render_human(&result, false);
        assert!(text.contains("x.rs\n  3:7: warning [no-unwrap] m"), "{text}");
        assert!(text.contains("2 files scanned, 0 errors, 1 warning"), "{text}");
    }
}
