//! The item parser: the structural layer between the raw token stream
//! and the workspace semantic model.
//!
//! One pass over a file's tokens recovers just enough of Rust's item
//! grammar for interprocedural analysis — function declarations with
//! their owner (`impl` type), implemented trait, parameter and return
//! types, body extent and call sites; struct field types (for typing
//! method-call receivers); `use` imports; and the inline-`mod` nesting
//! that determines each item's module path. It is *name-resolution
//! approximate* by design: types are reduced to their significant last
//! path segment (`Vec<Option<Vm>>` → `Vec`), generics and trait objects
//! resolve to nothing, and that is fine — the call graph built on top
//! ([`crate::graph`]) only follows edges it can justify, and an
//! unresolvable call is simply absent (under-approximation, never a
//! false edge).

use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;

/// One parsed function item.
#[derive(Debug)]
pub struct FnDecl {
    /// The function's name.
    pub name: String,
    /// Inline-module path from the crate/file root (`["sparql", "eval"]`).
    pub module: Vec<String>,
    /// The `impl` type's significant name, for methods (`None` for free
    /// functions).
    pub owner: Option<String>,
    /// The implemented trait's name, when the enclosing block is a trait
    /// impl (`impl Observer for X`).
    pub trait_name: Option<String>,
    /// Significant last segment of each parameter's type, paired with
    /// the parameter name (`self` excluded).
    pub params: Vec<(String, Option<String>)>,
    /// Significant last segment of the return type, if any.
    pub ret: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the body (exclusive of the braces);
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the declaration sits inside test-only code.
    pub is_test: bool,
}

/// One parsed struct declaration (field types feed receiver typing).
#[derive(Debug)]
pub struct StructDecl {
    /// The struct's name.
    pub name: String,
    /// Field name → significant last segment of its declared type.
    pub fields: Vec<(String, Option<String>)>,
}

/// One `impl` block, with its code-token extent.
#[derive(Debug)]
pub struct ImplBlock {
    /// Significant name of the implemented-for type.
    pub type_name: String,
    /// The trait, for trait impls.
    pub trait_name: Option<String>,
    /// Code-token index range of the block body.
    pub body: (usize, usize),
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// One imported name from a `use` declaration: the name bound in this
/// file → the first path segment it came from (crate or module).
#[derive(Debug)]
pub struct UseImport {
    /// The bound name (last segment, or the `as` alias).
    pub name: String,
    /// The path's first segment (`scan_kb`, `std`, `crate`, …).
    pub root: String,
}

/// Everything the item parser recovers from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// All function declarations, in source order.
    pub fns: Vec<FnDecl>,
    /// All struct declarations.
    pub structs: Vec<StructDecl>,
    /// All `impl` blocks.
    pub impls: Vec<ImplBlock>,
    /// All imported names.
    pub uses: Vec<UseImport>,
}

/// Parses one file's items. `code` must be the file's non-comment tokens
/// (as produced by [`SourceFile::code_tokens`]); all token-index fields
/// of the result index into that slice.
pub fn parse_items(file: &SourceFile, code: &[&Token]) -> FileItems {
    Parser { file, code, items: FileItems::default() }.run()
}

struct Parser<'a> {
    file: &'a SourceFile,
    code: &'a [&'a Token],
    items: FileItems,
}

/// One frame of the scope stack the parser walks with.
enum Scope {
    /// An inline `mod name { … }`.
    Module(String),
    /// An `impl [Trait for] Type { … }`.
    Impl { type_name: String, trait_name: Option<String> },
    /// Any other brace (fn body, match, struct literal, …).
    Opaque,
}

impl<'a> Parser<'a> {
    fn text(&self, idx: usize) -> &'a str {
        self.code[idx].text(&self.file.text)
    }

    fn is_ident(&self, idx: usize, word: &str) -> bool {
        self.code.get(idx).is_some_and(|t| t.kind == TokenKind::Ident) && self.text(idx) == word
    }

    fn run(mut self) -> FileItems {
        let mut stack: Vec<Scope> = Vec::new();
        let mut k = 0;
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(b'{') => {
                    stack.push(Scope::Opaque);
                    k += 1;
                }
                TokenKind::Punct(b'}') => {
                    stack.pop();
                    k += 1;
                }
                TokenKind::Ident => {
                    let word = self.text(k);
                    match word {
                        "fn" => k = self.parse_fn(k, &stack),
                        "mod" => k = self.parse_mod(k, &mut stack),
                        "impl" => k = self.parse_impl(k, &mut stack),
                        "trait" => k = self.parse_trait(k, &mut stack),
                        "struct" => k = self.parse_struct(k),
                        "use" => k = self.parse_use(k),
                        _ => k += 1,
                    }
                }
                _ => k += 1,
            }
        }
        self.items
    }

    /// The module path and innermost impl context of a scope stack.
    fn context(&self, stack: &[Scope]) -> (Vec<String>, Option<String>, Option<String>) {
        let mut module = Vec::new();
        let mut owner = None;
        let mut trait_name = None;
        for scope in stack {
            match scope {
                Scope::Module(name) => module.push(name.clone()),
                Scope::Impl { type_name, trait_name: tn } => {
                    owner = Some(type_name.clone());
                    trait_name = tn.clone();
                }
                Scope::Opaque => {}
            }
        }
        (module, owner, trait_name)
    }

    /// `fn name <generics>? ( params ) (-> Ret)? ({ body } | ;)`.
    /// Returns the index to resume at (just *inside* the body, so nested
    /// items in closures are still seen — the body range is recorded for
    /// the model, not skipped).
    fn parse_fn(&mut self, fn_idx: usize, stack: &[Scope]) -> usize {
        let Some(name_tok) = self.code.get(fn_idx + 1) else { return fn_idx + 1 };
        if name_tok.kind != TokenKind::Ident {
            return fn_idx + 1;
        }
        let name = self.text(fn_idx + 1).to_string();
        let line = self.code[fn_idx].line;
        let mut k = fn_idx + 2;
        // Skip `<generics>` to the parameter list.
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
            k = self.skip_angles(k);
        }
        if !matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'('))) {
            return fn_idx + 1;
        }
        let params_end = self.matching(k, b'(', b')');
        let params = self.parse_params(k + 1, params_end);
        k = params_end + 1;
        // Return type: `-> Type` up to `{`, `;` or a `where` clause.
        let mut ret = None;
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'-')))
            && matches!(self.code.get(k + 1).map(|t| t.kind), Some(TokenKind::Punct(b'>')))
        {
            let (ty, after) = self.parse_type(k + 2);
            ret = ty;
            k = after;
        }
        // Skip a `where` clause to the body brace or terminating `;`.
        while k < self.code.len()
            && !matches!(self.code[k].kind, TokenKind::Punct(b'{') | TokenKind::Punct(b';'))
        {
            k += 1;
        }
        let (module, owner, trait_name) = self.context(stack);
        let has_body = matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'{')));
        let body = if has_body {
            let close = self.matching(k, b'{', b'}');
            Some((k + 1, close))
        } else {
            None
        };
        self.items.fns.push(FnDecl {
            name,
            module,
            owner,
            trait_name,
            params,
            ret,
            line,
            body,
            is_test: self.file.in_test_code(self.code[fn_idx].start),
        });
        // Resume *at* the body brace so the main walk balances the scope
        // stack itself (and still sees nested items inside the body).
        if has_body {
            k
        } else {
            k + 1
        }
    }

    /// Parses `name: Type` pairs of a parameter list (token range is
    /// exclusive of the parens). `self` receivers are skipped.
    fn parse_params(&self, mut k: usize, end: usize) -> Vec<(String, Option<String>)> {
        let mut params = Vec::new();
        while k < end {
            // A parameter starts after `(`, `,` — find `ident :` at depth 0.
            if self.code[k].kind == TokenKind::Ident
                && matches!(self.code.get(k + 1).map(|t| t.kind), Some(TokenKind::Punct(b':')))
                && !matches!(self.code.get(k + 2).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            {
                let name = self.text(k).to_string();
                let (ty, after) = self.parse_type(k + 2);
                params.push((name, ty));
                k = after;
                // Advance to the comma separating this parameter.
                let mut depth = 0i32;
                while k < end {
                    match self.code[k].kind {
                        TokenKind::Punct(b'(')
                        | TokenKind::Punct(b'<')
                        | TokenKind::Punct(b'[') => depth += 1,
                        TokenKind::Punct(b')')
                        | TokenKind::Punct(b'>')
                        | TokenKind::Punct(b']') => depth -= 1,
                        TokenKind::Punct(b',') if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            k += 1;
        }
        params
    }

    /// Extracts the *significant* name of a type starting at `k`: skips
    /// `&`, lifetimes, `mut`, `dyn`/`impl`, walks a path to its last
    /// segment, and gives up (returns `None`) on tuples, fn pointers and
    /// generics-only types. Containers keep their *element* type in a
    /// bracketed form the call-graph resolver understands: `Vec<T>`,
    /// `VecDeque<T>`, `[T; N]` and `&[T]` all become `[T]` (indexing
    /// yields a `T`), while `Box`/`Rc`/`Arc` auto-deref and reduce to
    /// their inner type directly. Returns the name and the index just
    /// past the type's head segment (not the full type — callers only
    /// ever need to resume scanning from a safe point).
    fn parse_type(&self, mut k: usize) -> (Option<String>, usize) {
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(b'&') | TokenKind::Punct(b'*') => k += 1,
                TokenKind::Lifetime => k += 1,
                TokenKind::Ident if matches!(self.text(k), "mut" | "dyn" | "impl" | "const") => {
                    k += 1
                }
                _ => break,
            }
        }
        // A slice or array type: keep the element type, bracketed.
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'['))) {
            let (inner, after) = self.parse_type(k + 1);
            return (inner.map(|i| format!("[{i}]")), after);
        }
        if !matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Ident)) {
            return (None, k + 1);
        }
        // Walk `a::b::C` to the last segment.
        let mut last = self.text(k).to_string();
        let mut j = k + 1;
        while matches!(self.code.get(j).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            && matches!(self.code.get(j + 1).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            && matches!(self.code.get(j + 2).map(|t| t.kind), Some(TokenKind::Ident))
        {
            last = self.text(j + 2).to_string();
            j += 3;
        }
        if matches!(self.code.get(j).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
            match last.as_str() {
                "Vec" | "VecDeque" => {
                    let (inner, _) = self.parse_type(j + 1);
                    if let Some(inner) = inner {
                        return (Some(format!("[{inner}]")), j);
                    }
                }
                "Box" | "Rc" | "Arc" => {
                    let (inner, _) = self.parse_type(j + 1);
                    if inner.is_some() {
                        return (inner, j);
                    }
                }
                _ => {}
            }
        }
        (Some(last), j)
    }

    /// `mod name { … }` pushes a scope; `mod name;` declares an
    /// out-of-line module (the file-path walk in the model covers it).
    fn parse_mod(&mut self, mod_idx: usize, stack: &mut Vec<Scope>) -> usize {
        let Some(name_tok) = self.code.get(mod_idx + 1) else { return mod_idx + 1 };
        if name_tok.kind != TokenKind::Ident {
            return mod_idx + 1;
        }
        let name = self.text(mod_idx + 1).to_string();
        match self.code.get(mod_idx + 2).map(|t| t.kind) {
            Some(TokenKind::Punct(b'{')) => {
                stack.push(Scope::Module(name));
                mod_idx + 3
            }
            _ => mod_idx + 2,
        }
    }

    /// `impl <generics>? Type { … }` or `impl Trait for Type { … }`.
    fn parse_impl(&mut self, impl_idx: usize, stack: &mut Vec<Scope>) -> usize {
        let line = self.code[impl_idx].line;
        let mut k = impl_idx + 1;
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
            k = self.skip_angles(k);
        }
        let (first, after_first) = self.parse_type(k);
        // Skip the first type's generic arguments if present.
        let mut k = after_first;
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
            k = self.skip_angles(k);
        }
        let (type_name, trait_name) = if self.is_ident(k, "for") {
            let (ty, after_ty) = self.parse_type(k + 1);
            k = after_ty;
            if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
                k = self.skip_angles(k);
            }
            (ty, first)
        } else {
            (first, None)
        };
        // Skip any `where` clause to the block brace.
        while k < self.code.len() && !matches!(self.code[k].kind, TokenKind::Punct(b'{')) {
            if matches!(self.code[k].kind, TokenKind::Punct(b';')) {
                return k + 1; // `impl Trait for Type;` — nothing to scope
            }
            k += 1;
        }
        let Some(type_name) = type_name else { return k + 1 };
        let close = self.matching(k, b'{', b'}');
        self.items.impls.push(ImplBlock {
            type_name: type_name.clone(),
            trait_name: trait_name.clone(),
            body: (k + 1, close),
            line,
        });
        stack.push(Scope::Impl { type_name, trait_name });
        k + 1
    }

    /// `trait Name [: bounds] { … }` scopes like an impl of the trait's
    /// own name, so default and bodiless trait methods are owned by the
    /// trait rather than leaking into the free-function namespace.
    fn parse_trait(&mut self, trait_idx: usize, stack: &mut Vec<Scope>) -> usize {
        let Some(name_tok) = self.code.get(trait_idx + 1) else { return trait_idx + 1 };
        if name_tok.kind != TokenKind::Ident {
            return trait_idx + 1;
        }
        let name = self.text(trait_idx + 1).to_string();
        let mut k = trait_idx + 2;
        while k < self.code.len() && !matches!(self.code[k].kind, TokenKind::Punct(b'{')) {
            if matches!(self.code[k].kind, TokenKind::Punct(b';')) {
                return k + 1;
            }
            k += 1;
        }
        stack.push(Scope::Impl { type_name: name, trait_name: None });
        k + 1
    }

    /// `struct Name { field: Type, … }` (tuple/unit structs carry no
    /// field names and are recorded with no fields).
    fn parse_struct(&mut self, struct_idx: usize) -> usize {
        let Some(name_tok) = self.code.get(struct_idx + 1) else { return struct_idx + 1 };
        if name_tok.kind != TokenKind::Ident {
            return struct_idx + 1;
        }
        let name = self.text(struct_idx + 1).to_string();
        let mut k = struct_idx + 2;
        if matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'<'))) {
            k = self.skip_angles(k);
        }
        // `struct X;` / `struct X(T);` — record, no named fields.
        if !matches!(self.code.get(k).map(|t| t.kind), Some(TokenKind::Punct(b'{'))) {
            self.items.structs.push(StructDecl { name, fields: Vec::new() });
            return struct_idx + 2;
        }
        let close = self.matching(k, b'{', b'}');
        let mut fields = Vec::new();
        let mut j = k + 1;
        while j < close {
            // Fields sit at depth 0 of the struct body as `[pub] name :`.
            if self.code[j].kind == TokenKind::Ident
                && self.text(j) != "pub"
                && matches!(self.code.get(j + 1).map(|t| t.kind), Some(TokenKind::Punct(b':')))
                && !matches!(self.code.get(j + 2).map(|t| t.kind), Some(TokenKind::Punct(b':')))
            {
                let fname = self.text(j).to_string();
                let (ty, _after) = self.parse_type(j + 2);
                fields.push((fname, ty));
                // Advance to the field's separating comma at depth 0.
                let mut depth = 0i32;
                while j < close {
                    match self.code[j].kind {
                        TokenKind::Punct(b'(')
                        | TokenKind::Punct(b'<')
                        | TokenKind::Punct(b'[')
                        | TokenKind::Punct(b'{') => depth += 1,
                        TokenKind::Punct(b')')
                        | TokenKind::Punct(b'>')
                        | TokenKind::Punct(b']')
                        | TokenKind::Punct(b'}') => depth -= 1,
                        TokenKind::Punct(b',') if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            j += 1;
        }
        self.items.structs.push(StructDecl { name, fields });
        close + 1
    }

    /// `use path::{a, b as c};` — records each bound name with the
    /// path's first segment.
    fn parse_use(&mut self, use_idx: usize) -> usize {
        let mut k = use_idx + 1;
        let mut root: Option<String> = None;
        let mut last: Option<String> = None;
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(b';') => break,
                TokenKind::Ident => {
                    let word = self.text(k).to_string();
                    if word == "as" {
                        // Alias: the next ident replaces the bound name.
                        if let (Some(alias), Some(r)) =
                            (self.code.get(k + 1).filter(|t| t.kind == TokenKind::Ident), &root)
                        {
                            let _ = alias;
                            let name = self.text(k + 1).to_string();
                            self.items.uses.push(UseImport { name, root: r.clone() });
                            last = None;
                            k += 2;
                            continue;
                        }
                    }
                    if root.is_none() {
                        root = Some(word.clone());
                    }
                    last = Some(word);
                    k += 1;
                }
                TokenKind::Punct(b',') | TokenKind::Punct(b'}') => {
                    // Close out the pending name of a `{a, b}` group.
                    if let (Some(name), Some(r)) = (last.take(), &root) {
                        if name != "self" {
                            self.items.uses.push(UseImport { name, root: r.clone() });
                        }
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
        if let (Some(name), Some(r)) = (last.take(), &root) {
            if name != "self" && name != r.as_str() {
                self.items.uses.push(UseImport { name, root: r.clone() });
            } else if name == r.as_str() {
                // `use foo;` binds the crate/module name itself.
                self.items.uses.push(UseImport { name, root: r.clone() });
            }
        }
        k + 1
    }

    /// Index just past the `>` matching the `<` at `open` (token-level
    /// matching; `>>` lexes as two puncts so nesting balances).
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(b'<') => depth += 1,
                TokenKind::Punct(b'>') => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                // `fn f<T: Fn(A) -> B>`: the `-` `>` of a return arrow
                // inside generics would misbalance; consume the pair.
                TokenKind::Punct(b'-')
                    if matches!(
                        self.code.get(k + 1).map(|t| t.kind),
                        Some(TokenKind::Punct(b'>'))
                    ) =>
                {
                    k += 1;
                }
                TokenKind::Punct(b';') | TokenKind::Punct(b'{') => return k, // malformed; bail
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Index of the token matching `open_ch` at `open` (which must hold
    /// an `open_ch` token). Returns the closing token's index.
    fn matching(&self, open: usize, open_ch: u8, close_ch: u8) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(c) if c == open_ch => depth += 1,
                TokenKind::Punct(c) if c == close_ch => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.code.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> (SourceFile, FileItems) {
        let file = SourceFile::new(PathBuf::from("x.rs"), src.to_string());
        let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
        let items = parse_items(&file, &code);
        // Re-parse for the caller since `code` borrows `file`.
        (SourceFile::new(PathBuf::from("x.rs"), src.to_string()), items)
    }

    #[test]
    fn free_fn_with_params_and_ret() {
        let (_, items) = parse("pub fn plan(total: f64, cfg: &ScanConfig) -> ShardPlan { x() }");
        let f = &items.fns[0];
        assert_eq!(f.name, "plan");
        assert_eq!(f.owner, None);
        assert_eq!(
            f.params,
            vec![
                ("total".to_string(), Some("f64".to_string())),
                ("cfg".to_string(), Some("ScanConfig".to_string())),
            ]
        );
        assert_eq!(f.ret.as_deref(), Some("ShardPlan"));
        assert!(f.body.is_some());
    }

    #[test]
    fn methods_carry_owner_and_trait() {
        let (_, items) = parse(
            "impl Observer for SpanObserver {\n  fn on_event(&mut self, e: &TraceEvent) {}\n}\n\
             impl Platform {\n  fn run(self) -> u32 { 0 }\n}",
        );
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].owner.as_deref(), Some("SpanObserver"));
        assert_eq!(items.fns[0].trait_name.as_deref(), Some("Observer"));
        assert_eq!(items.fns[1].owner.as_deref(), Some("Platform"));
        assert_eq!(items.fns[1].trait_name, None);
    }

    #[test]
    fn generic_impls_resolve_significant_names() {
        let (_, items) =
            parse("impl<W: io::Write> Observer for JsonlWriter<W> { fn on_event(&mut self) {} }");
        assert_eq!(items.impls[0].type_name, "JsonlWriter");
        assert_eq!(items.impls[0].trait_name.as_deref(), Some("Observer"));
    }

    #[test]
    fn inline_modules_nest() {
        let (_, items) = parse("mod outer { mod inner { fn deep() {} } fn shallow() {} }");
        assert_eq!(items.fns[0].module, vec!["outer", "inner"]);
        assert_eq!(items.fns[1].module, vec!["outer"]);
    }

    #[test]
    fn struct_fields_keep_significant_types() {
        let (_, items) =
            parse("pub struct Broker { kb: KnowledgeBase, pub noise: f64, vms: Vec<Option<Vm>> }");
        let s = &items.structs[0];
        assert_eq!(s.name, "Broker");
        // Containers keep their element type in bracketed form: indexing
        // `vms` yields an `Option`.
        assert_eq!(
            s.fields,
            vec![
                ("kb".to_string(), Some("KnowledgeBase".to_string())),
                ("noise".to_string(), Some("f64".to_string())),
                ("vms".to_string(), Some("[Option]".to_string())),
            ]
        );
    }

    #[test]
    fn use_trees_bind_names_to_roots() {
        let (_, items) = parse(
            "use scan_kb::{KnowledgeBase, ProfileRecord};\nuse std::time::Instant as Clock;\n",
        );
        let bound: Vec<(&str, &str)> =
            items.uses.iter().map(|u| (u.name.as_str(), u.root.as_str())).collect();
        assert!(bound.contains(&("KnowledgeBase", "scan_kb")));
        assert!(bound.contains(&("ProfileRecord", "scan_kb")));
        assert!(bound.contains(&("Clock", "std")));
    }

    #[test]
    fn fn_in_where_clause_generics_does_not_derail() {
        let (_, items) = parse(
            "impl<F, O> ObserverFactory for F where F: Fn(u64) -> O + Sync, O: Observer {\n\
               fn build(&self, session: u64) -> O { self(session) }\n}",
        );
        assert_eq!(items.fns[0].name, "build");
        assert_eq!(items.fns[0].owner.as_deref(), Some("F"));
    }

    #[test]
    fn test_regions_mark_fns() {
        let (_, items) = parse("#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}");
        assert!(items.fns[0].is_test);
        assert!(!items.fns[1].is_test);
    }
}
