//! The name-resolution-approximate call graph.
//!
//! Edges are found by scanning each function body for call expressions
//! and resolving them against the [`SemanticModel`]'s symbol table:
//!
//! - **Method calls** (`recv.m(…)`) resolve only through a *typed
//!   receiver* — `self`, `self.field`, a typed parameter or local, a
//!   constructor-inferred local, or the return type of the previous call
//!   in a chain. A receiver the model cannot type produces *no* edge:
//!   a false edge would fabricate taint chains (e.g. every `.insert(…)`
//!   in the workspace linking to one crate's `insert`), so the graph
//!   under-approximates by construction.
//! - **Path calls** (`Type::m(…)`, `Self::m(…)`, `scan_kb::f(…)`)
//!   resolve via the impl-method or free-function index, filtered by the
//!   caller crate's import-derived dependency closure.
//! - **Free calls** (`f(…)`) resolve same-file first, then same-crate,
//!   then through the file's imports, then — only if unambiguous — to a
//!   unique candidate in the dependency closure.

use crate::lex::{Token, TokenKind};
use crate::model::{FnId, SemanticModel};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One call edge, anchored at its call-site line in the caller's file.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The other endpoint (callee in [`CallGraph::callees`], caller in
    /// [`CallGraph::callers`]).
    pub other: FnId,
    /// 1-based line of the call site in the *caller's* file.
    pub line: u32,
}

/// Adjacency in both directions, indexed by [`FnId`].
pub struct CallGraph {
    /// Outgoing edges per function.
    pub callees: Vec<Vec<Edge>>,
    /// Incoming edges per function (`other` is the caller).
    pub callers: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.callees.iter().map(Vec::len).sum()
    }
}

/// Words that look like `ident (` call heads but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "break", "continue", "where", "unsafe", "async", "await", "yield", "ref", "mut", "pub", "use",
    "impl", "struct", "enum", "trait", "type", "mod", "const", "static", "crate", "super", "dyn",
    "extern", "box",
];

/// Builds the call graph for a model.
pub fn build(model: &SemanticModel<'_>) -> CallGraph {
    let mut callees: Vec<Vec<Edge>> = vec![Vec::new(); model.fns.len()];
    for (caller, edges) in callees.iter_mut().enumerate() {
        let mut resolver = Resolver::new(model, caller);
        resolver.scan(edges);
    }
    // Dedup (caller, callee) pairs, keeping the first (lowest-line) site.
    let mut callers: Vec<Vec<Edge>> = vec![Vec::new(); model.fns.len()];
    for (caller, edges) in callees.iter_mut().enumerate() {
        edges.sort_by_key(|e| (e.other, e.line));
        edges.dedup_by_key(|e| e.other);
        for e in edges.iter() {
            callers[e.other].push(Edge { other: caller, line: e.line });
        }
    }
    CallGraph { callees, callers }
}

/// Per-function call-site scanner and resolver.
struct Resolver<'m, 'w> {
    model: &'m SemanticModel<'w>,
    caller: FnId,
    file: &'w SourceFile,
    code: &'m [&'w Token],
    body: (usize, usize),
    owner: Option<String>,
    /// Variable name → significant type name (params + inferred lets).
    locals: BTreeMap<String, String>,
    /// Closing-`)` token index → return type of the call ending there
    /// (drives typing of `a.b().c()` chains).
    ret_at: BTreeMap<usize, String>,
}

impl<'m, 'w> Resolver<'m, 'w> {
    fn new(model: &'m SemanticModel<'w>, caller: FnId) -> Self {
        let info = &model.fns[caller];
        let facts = &model.files[info.file];
        let decl = &facts.items.fns[info.item];
        let mut locals = BTreeMap::new();
        for (name, ty) in &decl.params {
            if let Some(ty) = ty {
                locals.insert(name.clone(), ty.clone());
            }
        }
        Resolver {
            model,
            caller,
            file: &facts.wf.file,
            code: &facts.code,
            body: decl.body.unwrap_or((0, 0)),
            owner: decl.owner.clone(),
            locals,
            ret_at: BTreeMap::new(),
        }
    }

    fn text(&self, k: usize) -> &'w str {
        self.code[k].text(&self.file.text)
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        self.code.get(k).map(|t| t.kind)
    }

    fn is_punct(&self, k: usize, c: u8) -> bool {
        self.kind(k) == Some(TokenKind::Punct(c))
    }

    /// One left-to-right pass over the body: infer `let` types as they
    /// appear, resolve calls, and record chain return types.
    fn scan(&mut self, out: &mut Vec<Edge>) {
        let (start, end) = self.body;
        let end = end.min(self.code.len());
        let mut k = start;
        while k < end {
            if self.kind(k) != Some(TokenKind::Ident) {
                k += 1;
                continue;
            }
            let word = self.text(k);
            if word == "let" {
                self.infer_let(k + 1);
                k += 1;
                continue;
            }
            // `ident ! (` is a macro invocation, never a call edge.
            if self.is_punct(k + 1, b'!') {
                k += 2;
                continue;
            }
            if !self.is_punct(k + 1, b'(') || NON_CALL_KEYWORDS.contains(&word) {
                k += 1;
                continue;
            }
            let prev_kind = if k > start { self.kind(k - 1) } else { None };
            let targets = if prev_kind == Some(TokenKind::Punct(b'.')) {
                self.resolve_method(k, word)
            } else if prev_kind == Some(TokenKind::Punct(b':'))
                && k >= 2
                && self.is_punct(k - 2, b':')
            {
                self.resolve_path_call(k, word)
            } else if prev_kind == Some(TokenKind::Ident) && self.text(k - 1) == "fn" {
                Vec::new() // a nested fn's own declaration
            } else {
                self.resolve_free(word)
            };
            // Record the chain type at this call's closing paren.
            if let Some(ret) = targets.first().and_then(|&id| self.return_type(id)) {
                let close = self.matching_paren(k + 1);
                self.ret_at.insert(close, ret);
            }
            let line = self.code[k].line;
            for id in targets {
                if id != self.caller {
                    out.push(Edge { other: id, line });
                }
            }
            k += 1;
        }
    }

    /// A callee's return type with `Self` resolved to its impl type.
    fn return_type(&self, id: FnId) -> Option<String> {
        let decl = self.model.decl(id);
        let ret = decl.ret.as_deref()?;
        if ret == "Self" {
            decl.owner.clone()
        } else {
            Some(ret.to_string())
        }
    }

    /// Token index of the `)` matching the `(` at `open`.
    fn matching_paren(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.code.len() {
            match self.code[k].kind {
                TokenKind::Punct(b'(') => depth += 1,
                TokenKind::Punct(b')') => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.code.len()
    }

    /// `let name: Type = …` / `let name = Type::new(…)` / `let name =
    /// Type { …` — records the binding's type when statable.
    fn infer_let(&mut self, mut k: usize) {
        if self.kind(k) == Some(TokenKind::Ident) && self.text(k) == "mut" {
            k += 1;
        }
        if self.kind(k) != Some(TokenKind::Ident) {
            return;
        }
        let name = self.text(k).to_string();
        // `let x: Type`
        if self.is_punct(k + 1, b':') && !self.is_punct(k + 2, b':') {
            if let Some(ty) = self.type_head(k + 2) {
                self.locals.insert(name, ty);
            }
            return;
        }
        if !self.is_punct(k + 1, b'=') {
            return;
        }
        let mut v = k + 2;
        // `let x = &mut base.field[index];` — a borrowed/moved place
        // expression; walk it forward and type it with `place_type`.
        while self.is_punct(v, b'&')
            || (self.kind(v) == Some(TokenKind::Ident) && self.text(v) == "mut")
        {
            v += 1;
        }
        if self.kind(v) != Some(TokenKind::Ident) {
            return;
        }
        if let Some(ty) = self.place_expr_type(v) {
            self.locals.insert(name, ty);
            return;
        }
        let head = self.text(v).to_string();
        // `let x = Type { …` — a struct literal.
        if self.is_punct(v + 1, b'{') && self.model.type_crates.contains_key(&head) {
            self.locals.insert(name, head);
            return;
        }
        // `let x = Type::ctor(…)` — the constructor's return type, or the
        // type itself for the conventional `new`/`default`.
        if self.is_punct(v + 1, b':')
            && self.is_punct(v + 2, b':')
            && self.kind(v + 3) == Some(TokenKind::Ident)
            && self.is_punct(v + 4, b'(')
        {
            let method = self.text(v + 3);
            let key = (head.clone(), method.to_string());
            if let Some(ids) = self.model.methods.get(&key) {
                if let Some(ret) = ids.first().and_then(|&id| self.return_type(id)) {
                    self.locals.insert(name, ret);
                    return;
                }
            }
            if matches!(method, "new" | "default" | "with_capacity") {
                self.locals.insert(name, head);
            }
        }
    }

    /// Significant type name at `k` (same reduction as the item parser:
    /// skip `&`/`mut`/`dyn`/`impl`/lifetimes, last path segment, with
    /// containers kept as `[Element]` and smart pointers dereferenced).
    fn type_head(&self, mut k: usize) -> Option<String> {
        loop {
            match self.kind(k)? {
                TokenKind::Punct(b'&') | TokenKind::Punct(b'*') | TokenKind::Lifetime => k += 1,
                TokenKind::Ident if matches!(self.text(k), "mut" | "dyn" | "impl" | "const") => {
                    k += 1
                }
                TokenKind::Ident => break,
                TokenKind::Punct(b'[') => {
                    return self.type_head(k + 1).map(|i| format!("[{i}]"));
                }
                _ => return None,
            }
        }
        let mut last = self.text(k).to_string();
        while self.is_punct(k + 1, b':')
            && self.is_punct(k + 2, b':')
            && self.kind(k + 3) == Some(TokenKind::Ident)
        {
            last = self.text(k + 3).to_string();
            k += 3;
        }
        if self.is_punct(k + 1, b'<') {
            match last.as_str() {
                "Vec" | "VecDeque" => {
                    return self.type_head(k + 2).map(|i| format!("[{i}]"));
                }
                "Box" | "Rc" | "Arc" => return self.type_head(k + 2),
                _ => {}
            }
        }
        Some(last)
    }

    /// Candidates for a `.m(…)` call at `k` (the method ident).
    fn resolve_method(&self, k: usize, method: &str) -> Vec<FnId> {
        let recv_ty = self.receiver_type(k);
        let Some(ty) = recv_ty else { return Vec::new() };
        self.method_candidates(&ty, method)
    }

    /// Types the receiver expression ending just before the `.` at
    /// `k - 1`. Returns `None` when the model cannot justify a type.
    fn receiver_type(&self, k: usize) -> Option<String> {
        if k < 2 {
            return None;
        }
        self.place_type(k - 2) // token just before the dot
    }

    /// Types the *place expression* ending at token `r`: a typed local or
    /// `self`, one field hop through a typed base, the return type of a
    /// chained call (via [`Self::ret_at`]), or any of those under an
    /// index (`cols[i]` yields the element of a `[T]`-typed container).
    fn place_type(&self, r: usize) -> Option<String> {
        match self.kind(r)? {
            // `….prev()` — the chain map knows the type at the `)`.
            TokenKind::Punct(b')') => self.ret_at.get(&r).cloned(),
            // `…[i]` — indexing a container yields its element type.
            TokenKind::Punct(b']') => {
                let open = self.matching_open(r, b'[', b']')?;
                if open == 0 {
                    return None;
                }
                elem_of(&self.place_type(open - 1)?)
            }
            TokenKind::Ident => {
                let name = self.text(r);
                // `base.field` — one field hop through a typed base.
                if r >= 2 && self.is_punct(r - 1, b'.') {
                    let base_ty = self.place_type(r - 2)?;
                    return self.model.field_types.get(&(base_ty, name.to_string())).cloned();
                }
                if name == "self" {
                    return self.owner.clone();
                }
                self.locals.get(name).cloned()
            }
            _ => None,
        }
    }

    /// Types a whole-statement place expression starting at the ident at
    /// `v` (`base`, `base.field`, `base[i]`, and combinations). Only
    /// succeeds when the expression runs cleanly to the statement's `;` —
    /// a trailing operator or method call means the binding's value is
    /// something else entirely.
    fn place_expr_type(&self, v: usize) -> Option<String> {
        let mut j = v; // on the head ident
        loop {
            if self.is_punct(j + 1, b'.')
                && self.kind(j + 2) == Some(TokenKind::Ident)
                && !self.is_punct(j + 3, b'(')
            {
                j += 2;
                continue;
            }
            if self.is_punct(j + 1, b'[') {
                j = self.matching_close(j + 1, b'[', b']')?;
                continue;
            }
            break;
        }
        if !self.is_punct(j + 1, b';') {
            return None;
        }
        self.place_type(j)
    }

    /// Token index of the `close` bracket matching the `open` at `k`,
    /// scanning forwards.
    fn matching_close(&self, k: usize, open: u8, close: u8) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = k;
        loop {
            match self.kind(j)? {
                TokenKind::Punct(c) if c == open => depth += 1,
                TokenKind::Punct(c) if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }

    /// Token index of the `open` bracket matching the `close` at `r`,
    /// scanning backwards.
    fn matching_open(&self, r: usize, open: u8, close: u8) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = r;
        loop {
            match self.kind(k)? {
                TokenKind::Punct(c) if c == close => depth += 1,
                TokenKind::Punct(c) if c == open => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
            k = k.checked_sub(1)?;
        }
    }

    /// Method candidates on a type, filtered to the caller's crate
    /// dependency closure.
    fn method_candidates(&self, ty: &str, method: &str) -> Vec<FnId> {
        let caller_crate = &self.model.fns[self.caller].crate_name;
        self.model
            .methods
            .get(&(ty.to_string(), method.to_string()))
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        self.model.depends_on(caller_crate, &self.model.fns[id].crate_name)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Candidates for a `Q::m(…)` call at `k` (the method ident).
    fn resolve_path_call(&self, k: usize, method: &str) -> Vec<FnId> {
        if k < 3 || self.kind(k - 3) != Some(TokenKind::Ident) {
            return Vec::new();
        }
        let qualifier = self.text(k - 3);
        if qualifier == "Self" {
            let Some(owner) = &self.owner else { return Vec::new() };
            return self.method_candidates(owner, method);
        }
        // `scan_kb::f(…)` / `crate::f(…)` — a crate-qualified free call.
        let own_crate = &self.model.fns[self.caller].crate_name;
        if let Some(dep_crate) = crate_root(qualifier, own_crate) {
            if self.model.depends_on(own_crate, &dep_crate) {
                if let Some(ids) = self.model.free_fns.get(&(dep_crate.clone(), method.to_string()))
                {
                    return ids.clone();
                }
            }
        }
        // `module::f(…)` within the same crate.
        let as_free = self.model.free_fns.get(&(own_crate.clone(), method.to_string()));
        let type_candidates = self.method_candidates(qualifier, method);
        if !type_candidates.is_empty() {
            return type_candidates;
        }
        // An imported type's associated fn, or a same-crate module path.
        if let Some(src_crate) =
            self.model.files[self.model.fns[self.caller].file].imports.get(qualifier)
        {
            if let Some(ids) = self.model.free_fns.get(&(src_crate.clone(), method.to_string())) {
                return ids.clone();
            }
        }
        as_free.cloned().unwrap_or_default()
    }

    /// Candidates for a bare `f(…)` call.
    fn resolve_free(&self, name: &str) -> Vec<FnId> {
        let info = &self.model.fns[self.caller];
        let facts = &self.model.files[info.file];
        // Same file first (module-local helpers).
        let same_file: Vec<FnId> = (0..self.model.fns.len())
            .filter(|&id| {
                self.model.fns[id].file == info.file && {
                    let d = self.model.decl(id);
                    d.owner.is_none() && d.name == name
                }
            })
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        // Same crate.
        if let Some(ids) = self.model.free_fns.get(&(info.crate_name.clone(), name.to_string())) {
            if !ids.is_empty() {
                return ids.clone();
            }
        }
        // Imported by name.
        if let Some(src_crate) = facts.imports.get(name) {
            if let Some(ids) = self.model.free_fns.get(&(src_crate.clone(), name.to_string())) {
                return ids.clone();
            }
        }
        // Unique in the dependency closure.
        let mut found: Vec<FnId> = Vec::new();
        for ((crate_name, fn_name), ids) in &self.model.free_fns {
            if fn_name == name && self.model.depends_on(&info.crate_name, crate_name) {
                found.extend(ids);
            }
        }
        if found.len() == 1 {
            found
        } else {
            Vec::new()
        }
    }
}

/// The element type of a `[T]`-shaped container type, if any.
fn elem_of(ty: &str) -> Option<String> {
    ty.strip_prefix('[').and_then(|t| t.strip_suffix(']')).map(str::to_string)
}

/// The workspace crate a path qualifier refers to, if any (mirrors the
/// model's import-root convention).
fn crate_root(qualifier: &str, own_crate: &str) -> Option<String> {
    match qualifier {
        "crate" | "self" => Some(own_crate.to_string()),
        q if q.starts_with("scan") && q.contains('_') => Some(q.replace('_', "-")),
        _ => None,
    }
}
