//! A lexed source file plus the structural facts the rules share: which
//! byte regions are test-only code (`#[cfg(test)]` / `#[test]` items),
//! and where the file's `scan-lint: allow(…)` directives sit.

use crate::lex::{tokenize, Token, TokenKind};
use std::path::PathBuf;

/// What kind of compilation target a file belongs to. Rules scope
/// themselves by class: determinism and hygiene rules run on `Library`
/// code only — tests, benches and binaries are allowed wall clocks,
/// `unwrap()` and stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Part of a `lib` target (the code other crates can depend on).
    Library,
    /// A `src/bin/`, `main.rs` or `examples/` target.
    Binary,
    /// A criterion bench (or any file of the bench-harness crate).
    Bench,
    /// An integration-test file or a file-level test module.
    Test,
}

/// One lexed source file, ready for rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative when scanned
    /// through [`crate::workspace`]).
    pub path: PathBuf,
    /// The raw source text.
    pub text: String,
    /// All tokens, comments included, in source order.
    pub tokens: Vec<Token>,
    /// Byte ranges that belong to `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` and computes the test-region map.
    pub fn new(path: PathBuf, text: String) -> Self {
        let tokens = tokenize(&text);
        let test_regions = find_test_regions(&text, &tokens);
        SourceFile { path, text, tokens, test_regions }
    }

    /// Whether the byte offset falls inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| (s..e).contains(&offset))
    }

    /// The token's text.
    pub fn text_of(&self, token: &Token) -> &str {
        token.text(&self.text)
    }

    /// Iterates non-comment tokens with their indices into
    /// [`SourceFile::tokens`].
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment())
    }
}

/// Finds the byte spans of items marked test-only: an attribute whose
/// tokens include the `test` identifier (`#[cfg(test)]`, `#[cfg(any(test,
/// …))]`, `#[test]`) marks the item that follows it, up to the close of
/// its first top-level brace block or its terminating semicolon.
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(matches!(code[i].kind, TokenKind::Punct(b'#'))
            && i + 1 < code.len()
            && matches!(code[i + 1].kind, TokenKind::Punct(b'[')))
        {
            i += 1;
            continue;
        }
        let attr_start = code[i].start;
        let (attr_end_idx, is_test) = scan_attribute(src, &code, i + 1);
        let mut j = attr_end_idx;
        if is_test {
            // Skip any further attributes stacked on the same item.
            while j + 1 < code.len()
                && matches!(code[j].kind, TokenKind::Punct(b'#'))
                && matches!(code[j + 1].kind, TokenKind::Punct(b'['))
            {
                let (next, _) = scan_attribute(src, &code, j + 1);
                j = next;
            }
            let item_end = scan_item_end(&code, j);
            regions.push((attr_start, item_end));
            // Continue *after* the whole marked item so nested attributes
            // inside it are not re-scanned.
            while j < code.len() && code[j].start < item_end {
                j += 1;
            }
        }
        i = j.max(i + 1);
    }
    regions
}

/// Scans the bracketed attribute starting at the `[` token index.
/// Returns the index just past the closing `]` and whether the attribute
/// mentions the `test` identifier.
fn scan_attribute(src: &str, code: &[&Token], open_idx: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut is_test = false;
    let mut k = open_idx;
    while k < code.len() {
        match code[k].kind {
            TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, is_test);
                }
            }
            TokenKind::Ident if code[k].text(src) == "test" => is_test = true,
            _ => {}
        }
        k += 1;
    }
    (k, is_test)
}

/// Scans forward from an item's first token to its end: the close of its
/// first top-level `{…}` block, or a `;` outside any braces. Returns the
/// end byte offset.
fn scan_item_end(code: &[&Token], from: usize) -> usize {
    let mut depth = 0i32;
    let mut k = from;
    while k < code.len() {
        match code[k].kind {
            TokenKind::Punct(b'{') => depth += 1,
            TokenKind::Punct(b'}') => {
                depth -= 1;
                if depth <= 0 {
                    return code[k].end;
                }
            }
            TokenKind::Punct(b';') if depth == 0 => return code[k].end,
            _ => {}
        }
        k += 1;
    }
    code.last().map(|t| t.end).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(PathBuf::from("x.rs"), src.to_string())
    }

    fn offset_of(f: &SourceFile, needle: &str) -> usize {
        f.text.find(needle).unwrap_or_else(|| panic!("{needle} not in source"))
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let f = file(
            "pub fn lib_code() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { body(); }\n}\n\
             pub fn more_lib() {}\n",
        );
        assert!(!f.in_test_code(offset_of(&f, "lib_code")));
        assert!(f.in_test_code(offset_of(&f, "helper")));
        assert!(f.in_test_code(offset_of(&f, "body")));
        assert!(!f.in_test_code(offset_of(&f, "more_lib")));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let f = file(
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn explodes() { trigger(); }\n\
             fn ordinary() {}\n",
        );
        assert!(f.in_test_code(offset_of(&f, "trigger")));
        assert!(!f.in_test_code(offset_of(&f, "ordinary")));
    }

    #[test]
    fn cfg_any_test_counts() {
        let f = file("#[cfg(any(test, feature = \"slow\"))]\nfn gated() { g(); }\nfn free() {}\n");
        assert!(f.in_test_code(offset_of(&f, "g();")));
        assert!(!f.in_test_code(offset_of(&f, "free")));
    }

    #[test]
    fn non_test_attributes_mark_nothing() {
        let f = file("#[derive(Debug, Clone)]\npub struct S { pub x: u32 }\n");
        assert!(!f.in_test_code(offset_of(&f, "x")));
    }

    #[test]
    fn semicolon_items_end_the_region() {
        let f = file("#[cfg(test)]\nmod tests;\nfn after() {}\n");
        assert!(!f.in_test_code(offset_of(&f, "after")));
        assert!(f.in_test_code(offset_of(&f, "mod tests")));
    }

    #[test]
    fn const_with_braced_initializer() {
        // The region scanner ends at the close of the first brace block,
        // which for a braced initializer is slightly early — but never
        // late, so following items are never swallowed.
        let f = file("#[cfg(test)]\nconst X: P = P { a: 1 };\nfn after() {}\n");
        assert!(!f.in_test_code(offset_of(&f, "after")));
    }
}
