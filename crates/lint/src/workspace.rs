//! Workspace discovery and the full analyzer run.
//!
//! Discovery is filesystem-based and deliberately simple: every
//! `crates/*/` directory with a `Cargo.toml` is a member crate, plus the
//! root `scan` package (`src/`, `tests/`, `examples/`). The vendored
//! `compat/` stand-ins are out of scope (they mimic external crates and
//! follow those crates' conventions), as is `crates/lint/tests/fixtures`
//! (deliberate violations used as test inputs).

use crate::diag::{Allows, Diagnostic};
use crate::graph;
use crate::model::SemanticModel;
use crate::rules::{self, consistency, semantic, RuleCtx};
use crate::source::{FileClass, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates on the simulation path: determinism rules apply to their
/// library code. Everything else (kb, genomics, metrics, bench, lint,
/// the root facade) is free to use wall clocks and hash maps. The trace
/// store and the span deriver are included: their artefacts are
/// digest-pinned / byte-compared across thread counts in CI, so hash
/// iteration or entropy there breaks the determinism contract too.
pub const SIM_FACING_CRATES: &[&str] = &[
    "scan-sim",
    "scan-sched",
    "scan-cloud",
    "scan-workload",
    "scan-platform",
    "scan-tracestore",
    "scan-spans",
];

/// One discovered source file with the facts the rules scope by.
pub struct WorkspaceFile {
    /// Lexed source, `path` workspace-relative.
    pub file: SourceFile,
    /// Target class the path implies.
    pub class: FileClass,
    /// Owning Cargo package name.
    pub crate_name: String,
}

impl WorkspaceFile {
    /// The rule context for this file.
    pub fn ctx(&self) -> RuleCtx<'_> {
        RuleCtx {
            class: self.class,
            crate_name: &self.crate_name,
            sim_facing: SIM_FACING_CRATES.contains(&self.crate_name.as_str()),
        }
    }
}

/// The loaded workspace: every in-scope source file plus the four
/// reference documents.
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All discovered files, sorted by path.
    pub files: Vec<WorkspaceFile>,
    /// `docs/TRACE_SCHEMA.md` content, if present.
    pub trace_schema: Option<String>,
    /// `docs/METRICS.md` content, if present.
    pub metrics_doc: Option<String>,
    /// `docs/TRACESTORE.md` content, if present.
    pub tracestore_doc: Option<String>,
    /// `docs/SPANS.md` content, if present.
    pub spans_doc: Option<String>,
}

/// Outcome of a full run.
pub struct RunResult {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Workspace {
    /// Discovers and lexes every in-scope source file under `root`.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();

        let crates_dir = root.join("crates");
        for crate_dir in sorted_dirs(&crates_dir)? {
            let manifest = crate_dir.join("Cargo.toml");
            let Ok(manifest_text) = fs::read_to_string(&manifest) else { continue };
            let crate_name = package_name(&manifest_text).unwrap_or_else(|| {
                crate_dir.file_name().unwrap_or_default().to_string_lossy().into_owned()
            });
            collect_crate(root, &crate_dir, &crate_name, &mut files)?;
        }

        // The root `scan` facade package.
        for (dir, class) in [
            ("src", FileClass::Library),
            ("tests", FileClass::Test),
            ("examples", FileClass::Binary),
        ] {
            collect_rs(root, &root.join(dir), class, "scan", &mut files)?;
        }

        files.sort_by(|a, b| a.file.path.cmp(&b.file.path));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            trace_schema: fs::read_to_string(root.join("docs/TRACE_SCHEMA.md")).ok(),
            metrics_doc: fs::read_to_string(root.join("docs/METRICS.md")).ok(),
            tracestore_doc: fs::read_to_string(root.join("docs/TRACESTORE.md")).ok(),
            spans_doc: fs::read_to_string(root.join("docs/SPANS.md")).ok(),
        })
    }

    /// Runs every rule over the loaded workspace: the per-file token
    /// rules, the doc–code consistency rules and the semantic passes,
    /// with allow directives applied once, globally, at the end — a
    /// directive can excuse a per-file finding, a cross-file semantic
    /// finding, or act as a mid-analysis taint sink, all from one
    /// used-tracking ledger.
    pub fn run(&self) -> RunResult {
        let mut diagnostics = Vec::new();
        let mut allows =
            Allows::collect(self.files.iter().map(|wf| &wf.file), rules::is_known_rule);
        for wf in &self.files {
            diagnostics.extend(rules::check_file_raw(&wf.file, wf.ctx()));
        }
        diagnostics.extend(self.check_consistency());
        let model = SemanticModel::build(self);
        let call_graph = graph::build(&model);
        semantic::check(&model, &call_graph, &mut allows, &mut diagnostics);
        allows.apply(&mut diagnostics);
        allows.finish(&mut diagnostics);
        diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        RunResult { diagnostics, files_scanned: self.files.len() }
    }

    /// Runs *only* the semantic passes (model + call graph + the three
    /// interprocedural rules) with global allow application. Used by the
    /// semantic fixture harness and the `lint/semantic` benchmark; the
    /// CLI always runs the full [`Workspace::run`].
    pub fn run_semantic(&self) -> RunResult {
        let mut diagnostics = Vec::new();
        let mut allows =
            Allows::collect(self.files.iter().map(|wf| &wf.file), rules::is_known_rule);
        let model = SemanticModel::build(self);
        let call_graph = graph::build(&model);
        semantic::check(&model, &call_graph, &mut allows, &mut diagnostics);
        allows.apply(&mut diagnostics);
        // Meta findings are skipped here on purpose: a fixture workspace
        // exercising one pass would otherwise drown in unused-allow noise
        // from directives aimed at the other passes.
        diagnostics.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        RunResult { diagnostics, files_scanned: self.files.len() }
    }

    /// The workspace-level doc–code consistency checks.
    fn check_consistency(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();

        let trace_src = self
            .files
            .iter()
            .find(|wf| wf.crate_name == "scan-sim" && wf.file.path.ends_with("src/trace.rs"));
        match (&self.trace_schema, trace_src) {
            (Some(doc), Some(src)) => {
                let model = consistency::parse_trace_model(&src.file);
                diags.extend(consistency::check_trace_schema(
                    Path::new("docs/TRACE_SCHEMA.md"),
                    doc,
                    &src.file.path,
                    &model,
                ));
            }
            (None, _) => diags.push(missing_doc("docs/TRACE_SCHEMA.md", "trace-doc-drift")),
            (_, None) => diags.push(missing_doc("crates/sim/src/trace.rs", "trace-doc-drift")),
        }

        let store_src = self.files.iter().find(|wf| {
            wf.crate_name == "scan-tracestore" && wf.file.path.ends_with("src/schema.rs")
        });
        match (&self.tracestore_doc, store_src) {
            (Some(doc), Some(src)) => {
                let model = consistency::parse_store_model(&src.file);
                diags.extend(consistency::check_tracestore_doc(
                    Path::new("docs/TRACESTORE.md"),
                    doc,
                    &src.file.path,
                    &model,
                ));
            }
            (None, _) => diags.push(missing_doc("docs/TRACESTORE.md", "store-doc-drift")),
            (_, None) => {
                diags.push(missing_doc("crates/tracestore/src/schema.rs", "store-doc-drift"));
            }
        }

        let spans_src = self
            .files
            .iter()
            .find(|wf| wf.crate_name == "scan-spans" && wf.file.path.ends_with("src/schema.rs"));
        match (&self.spans_doc, spans_src) {
            (Some(doc), Some(src)) => {
                let model = consistency::parse_spans_model(&src.file);
                diags.extend(consistency::check_spans_doc(
                    Path::new("docs/SPANS.md"),
                    doc,
                    &src.file.path,
                    &model,
                ));
            }
            (None, _) => diags.push(missing_doc("docs/SPANS.md", "spans-doc-drift")),
            (_, None) => diags.push(missing_doc("crates/spans/src/schema.rs", "spans-doc-drift")),
        }

        match &self.metrics_doc {
            Some(doc) => {
                let lib_files: Vec<&SourceFile> = self
                    .files
                    .iter()
                    .filter(|wf| wf.class == FileClass::Library)
                    .map(|wf| &wf.file)
                    .collect();
                let registered = consistency::collect_registered_metrics(&lib_files);
                diags.extend(consistency::check_metrics_doc(
                    Path::new("docs/METRICS.md"),
                    doc,
                    &registered,
                ));
            }
            None => diags.push(missing_doc("docs/METRICS.md", "metrics-doc-drift")),
        }
        diags
    }
}

fn missing_doc(path: &str, rule: &'static str) -> Diagnostic {
    Diagnostic {
        rule,
        severity: crate::diag::Severity::Error,
        path: PathBuf::from(path),
        line: 1,
        col: 1,
        message: "reference file is missing; consistency cannot be checked".to_string(),
        chain: Vec::new(),
    }
}

/// Collects a member crate's files: `src/` (library, with `src/bin` and
/// `src/main.rs` as binaries), `tests/`, `benches/`. The whole
/// `scan-bench` crate is harness code and classes as `Bench`.
fn collect_crate(
    root: &Path,
    crate_dir: &Path,
    crate_name: &str,
    out: &mut Vec<WorkspaceFile>,
) -> io::Result<()> {
    let lib_class = if crate_name == "scan-bench" { FileClass::Bench } else { FileClass::Library };
    collect_rs(root, &crate_dir.join("src"), lib_class, crate_name, out)?;
    collect_rs(root, &crate_dir.join("tests"), FileClass::Test, crate_name, out)?;
    collect_rs(root, &crate_dir.join("benches"), FileClass::Bench, crate_name, out)?;
    Ok(())
}

/// Recursively collects `.rs` files under `dir`, refining `class` for
/// binary targets and skipping the lint fixtures.
fn collect_rs(
    root: &Path,
    dir: &Path,
    class: FileClass,
    crate_name: &str,
    out: &mut Vec<WorkspaceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") && crate_name == "scan-lint" {
                continue;
            }
            let sub_class = if path.file_name().is_some_and(|n| n == "bin") {
                FileClass::Binary
            } else {
                class
            };
            collect_rs(root, &path, sub_class, crate_name, out)?;
            continue;
        }
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let file_class =
            if class == FileClass::Library && path.file_name().is_some_and(|n| n == "main.rs") {
                FileClass::Binary
            } else {
                class
            };
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        out.push(WorkspaceFile {
            file: SourceFile::new(rel, text),
            class: file_class,
            crate_name: crate_name.to_string(),
        });
    }
    Ok(())
}

/// Immediate subdirectories of `dir`, sorted for deterministic output.
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Extracts `name = "…"` from a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(table) = line.strip_prefix('[') {
            in_package = table.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}
