//! `scan-lint`: the workspace's determinism-and-consistency analyzer.
//!
//! A source-level static analyzer purpose-built for this repository. It
//! lexes every workspace crate with its own lightweight Rust tokenizer
//! (no external parser — the workspace builds fully offline) and
//! enforces three families of project invariants that `rustc` and
//! `clippy` cannot express:
//!
//! 1. **Determinism** — sim-facing library code must not use
//!    `HashMap`/`HashSet`, wall clocks, OS entropy, `std::env` reads, or
//!    `partial_cmp().unwrap()` float ordering, so a fixed seed is
//!    byte-identical run to run (see `docs/LINTS.md`).
//! 2. **Hygiene** — panic discipline in library code, doc comments on
//!    every `pub` item, no orphaned TODOs.
//! 3. **Doc–code consistency** — `docs/TRACE_SCHEMA.md` must match the
//!    `TraceEvent` enum and `docs/METRICS.md` must match the registered
//!    metric families, in both directions.
//!
//! Findings can be silenced inline with
//! `// scan-lint: allow(<rule>) -- <reason>`; the reason is mandatory
//! and unused allows are themselves flagged. The `scan-lint` binary is a
//! step of `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lex;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use source::{FileClass, SourceFile};
pub use workspace::{RunResult, Workspace};
