//! `scan-lint`: the workspace's determinism-and-consistency analyzer.
//!
//! A source-level static analyzer purpose-built for this repository. It
//! lexes every workspace crate with its own lightweight Rust tokenizer
//! (no external parser — the workspace builds fully offline) and
//! enforces three families of project invariants that `rustc` and
//! `clippy` cannot express:
//!
//! 1. **Determinism** — sim-facing library code must not use
//!    `HashMap`/`HashSet`, wall clocks, OS entropy, `std::env` reads, or
//!    `partial_cmp().unwrap()` float ordering, so a fixed seed is
//!    byte-identical run to run (see `docs/LINTS.md`).
//! 2. **Hygiene** — panic discipline in library code, doc comments on
//!    every `pub` item, no orphaned TODOs.
//! 3. **Doc–code consistency** — `docs/TRACE_SCHEMA.md` must match the
//!    `TraceEvent` enum and `docs/METRICS.md` must match the registered
//!    metric families, in both directions.
//! 4. **Semantic (interprocedural)** — on top of the lexer sits an item
//!    parser ([`parse`]), a workspace symbol table ([`model`]) and a
//!    name-resolution-approximate call graph ([`graph`]); three passes
//!    walk it: nondeterminism *taint* flowing from any crate into
//!    sim-facing code, *panic reachability* from the platform's event
//!    loop and observer hot paths, and *dead telemetry* (trace variants,
//!    metric handles and observers that can never produce data). Their
//!    diagnostics carry the full call chain (`--explain-chain`).
//!
//! Findings can be silenced inline with
//! `// scan-lint: allow(<rule>) -- <reason>`; the reason is mandatory
//! and unused allows are themselves flagged. The `scan-lint` binary is a
//! step of `scripts/ci.sh`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod lex;
pub mod model;
pub mod parse;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use source::{FileClass, SourceFile};
pub use workspace::{RunResult, Workspace};
