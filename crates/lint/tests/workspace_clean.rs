//! The committed tree must lint clean: zero findings, warnings
//! included. This is the same bar `scripts/ci.sh` enforces with
//! `scan-lint --deny-warnings`; keeping it as a test means `cargo test`
//! alone catches a regression.

use scan_lint::Workspace;
use std::path::Path;

#[test]
fn committed_tree_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace root is readable");
    let result = ws.run();
    assert!(
        result.files_scanned > 100,
        "discovery collapsed: only {} files scanned",
        result.files_scanned
    );
    let rendered: Vec<String> = result.diagnostics.iter().map(|d| d.render()).collect();
    assert!(rendered.is_empty(), "committed tree has findings:\n{}", rendered.join("\n"));
}

#[test]
fn reference_docs_were_loaded() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace root is readable");
    assert!(ws.trace_schema.is_some(), "docs/TRACE_SCHEMA.md missing");
    assert!(ws.metrics_doc.is_some(), "docs/METRICS.md missing");
}
