//! Golden-file harness for the rule fixtures.
//!
//! Every `tests/fixtures/<name>.rs` is linted as library code of a
//! sim-facing crate and the rendered findings are compared against
//! `tests/fixtures/<name>.expected`. Regenerate the goldens after an
//! intentional rule change with:
//!
//! ```text
//! BLESS=1 cargo test -p scan-lint --test fixtures
//! ```

use scan_lint::rules::{check_file, RuleCtx};
use scan_lint::source::{FileClass, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(path: &Path) -> String {
    let text = fs::read_to_string(path).expect("fixture sources are readable");
    let name = path.file_name().expect("fixture paths have file names");
    let file = SourceFile::new(PathBuf::from(name), text);
    let ctx = RuleCtx { class: FileClass::Library, crate_name: "scan-fixture", sim_facing: true };
    let mut out = String::new();
    for diag in check_file(&file, ctx) {
        out.push_str(&diag.render());
        out.push('\n');
    }
    out
}

#[test]
fn fixtures_match_goldens() {
    let dir = fixture_dir();
    let bless = std::env::var_os("BLESS").is_some();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());

    let mut failures = Vec::new();
    for fixture in &fixtures {
        let got = lint_fixture(fixture);
        let golden = fixture.with_extension("expected");
        if bless {
            fs::write(&golden, &got).expect("golden files are writable under BLESS=1");
            continue;
        }
        let want = fs::read_to_string(&golden).unwrap_or_default();
        if got != want {
            failures.push(format!(
                "{}: output drifted from {}\n--- got ---\n{got}\n--- want ---\n{want}",
                fixture.display(),
                golden.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(lint_fixture(&fixture_dir().join("clean.rs")), "");
}

#[test]
fn every_non_meta_rule_appears_in_some_golden() {
    // The meta-rules fire from the allow machinery; the consistency
    // rules are exercised by tests/consistency.rs and the semantic
    // (interprocedural) rules by tests/semantic_fixtures.rs — they need
    // multi-crate workspaces, not single files.
    let covered_elsewhere = [
        "trace-doc-drift",
        "metrics-doc-drift",
        "store-doc-drift",
        "spans-doc-drift",
        "taint-nondet",
        "panic-path",
        "dead-telemetry",
    ];
    let dir = fixture_dir();
    let mut all = String::new();
    for entry in fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("fixture entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            all.push_str(&lint_fixture(&path));
        }
    }
    for rule in scan_lint::rules::RULES {
        if covered_elsewhere.contains(&rule.id) {
            continue;
        }
        assert!(
            all.contains(&format!("[{}]", rule.id)),
            "rule `{}` never fires on any fixture; add a fixture case",
            rule.id
        );
    }
}
