//! Doc–code drift detection: synthetic drift in each direction must be
//! caught, and the real committed tree must parse non-vacuously.

use scan_lint::rules::consistency::{
    check_metrics_doc, check_spans_doc, check_trace_schema, check_tracestore_doc,
    collect_registered_metrics, parse_spans_model, parse_store_model, parse_trace_model,
    RegisteredMetrics,
};
use scan_lint::source::SourceFile;
use std::path::{Path, PathBuf};

const CODE: &str = r#"
/// Events.
pub enum TraceEvent {
    /// A job arrived.
    JobArrived { job: u64, tasks: u32 },
    /// A VM was hired.
    VmHired { vm: u64 },
}

impl TraceEvent {
    /// Stable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::JobArrived { .. } => "job_arrived",
            Self::VmHired { .. } => "vm_hired",
        }
    }
}
"#;

const DOC: &str = "\
# Trace schema

## Event catalogue

### `job_arrived` — `TraceEvent::JobArrived`

| field | type | meaning |
|---|---|---|
| `job` | u64 | job id |
| `tasks` | u32 | task count |

### `vm_hired` — `TraceEvent::VmHired`

| field | type | meaning |
|---|---|---|
| `vm` | u64 | vm id |
";

fn trace_diags(doc: &str, code: &str) -> Vec<String> {
    let src = SourceFile::new(PathBuf::from("trace.rs"), code.to_string());
    let model = parse_trace_model(&src);
    check_trace_schema(Path::new("SCHEMA.md"), doc, Path::new("trace.rs"), &model)
        .into_iter()
        .map(|d| d.render())
        .collect()
}

#[test]
fn matching_schema_is_clean() {
    assert_eq!(trace_diags(DOC, CODE), Vec::<String>::new());
}

#[test]
fn undocumented_variant_is_drift() {
    let doc = DOC.split("### `vm_hired`").next().expect("doc splits");
    let out = trace_diags(doc, CODE);
    assert!(out.iter().any(|d| d.contains("VmHired has no section")), "{out:?}");
}

#[test]
fn phantom_section_is_drift() {
    let doc = format!("{DOC}\n### `vm_lost` — `TraceEvent::VmLost`\n");
    let out = trace_diags(&doc, CODE);
    assert!(out.iter().any(|d| d.contains("TraceEvent::VmLost does not exist")), "{out:?}");
}

#[test]
fn kind_tag_mismatch_is_drift() {
    let doc = DOC.replace("### `vm_hired`", "### `vm_acquired`");
    let out = trace_diags(&doc, CODE);
    assert!(out.iter().any(|d| d.contains("disagrees with TraceEvent::kind")), "{out:?}");
}

#[test]
fn missing_field_row_is_drift() {
    let doc = DOC.replace("| `tasks` | u32 | task count |\n", "");
    let out = trace_diags(&doc, CODE);
    assert!(out.iter().any(|d| d.contains("missing a row for field `tasks`")), "{out:?}");
}

#[test]
fn phantom_field_row_is_drift() {
    let doc =
        DOC.replace("| `vm` | u64 | vm id |", "| `vm` | u64 | vm id |\n| `ghost` | u8 | n/a |");
    let out = trace_diags(&doc, CODE);
    assert!(out.iter().any(|d| d.contains("documented field `ghost` does not exist")), "{out:?}");
}

const METRICS_DOC: &str = "\
# Metrics

## Metric catalogue

| name | unit |
|---|---|
| `jobs_done` | count |

## Export formats

| `not_a_metric` | this table is outside the catalogue |
";

fn registered(names: &[&str]) -> RegisteredMetrics {
    names.iter().map(|n| (n.to_string(), vec![(PathBuf::from("meters.rs"), 1)])).collect()
}

#[test]
fn matching_metrics_doc_is_clean() {
    let out = check_metrics_doc(Path::new("M.md"), METRICS_DOC, &registered(&["jobs_done"]));
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unregistered_documented_metric_is_drift() {
    let out = check_metrics_doc(Path::new("M.md"), METRICS_DOC, &registered(&["other"]));
    let rendered: Vec<String> = out.iter().map(|d| d.render()).collect();
    assert!(rendered.iter().any(|d| d.contains("`jobs_done` is not registered")), "{rendered:?}");
    assert!(rendered.iter().any(|d| d.contains("`other` is registered here")), "{rendered:?}");
}

#[test]
fn registration_sites_are_collected_outside_tests_only() {
    let src = SourceFile::new(
        PathBuf::from("meters.rs"),
        r#"
fn wire(reg: &mut Registry) {
    reg.counter("live_metric", "u");
    reg.histogram("lat_metric", "tu");
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        reg.counter("test_only_metric", "u");
    }
}
"#
        .to_string(),
    );
    let got = collect_registered_metrics(&[&src]);
    let names: Vec<&str> = got.keys().map(String::as_str).collect();
    assert_eq!(names, ["lat_metric", "live_metric"]);
}

#[test]
fn real_trace_model_parses_non_vacuously() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("crates/sim/src/trace.rs");
    let text = std::fs::read_to_string(&path).expect("trace.rs exists at the workspace root");
    let model = parse_trace_model(&SourceFile::new(path, text));
    assert!(model.variants.len() >= 10, "only {} variants parsed", model.variants.len());
    assert_eq!(model.variants.len(), model.kinds.len(), "every variant has a kind arm");
    assert!(!model.choice_names.is_empty(), "ScalingChoice labels parsed");
}

const STORE_CODE: &str = r#"
impl EventKind {
    /// Stable table tag.
    pub fn tag(self) -> &'static str {
        match self {
            Self::JobArrived => "job_arrived",
            Self::VmHired => "vm_hired",
        }
    }

    /// Declared columns.
    pub fn columns(self) -> &'static [ColumnSpec] {
        const JOB_ARRIVED: &[ColumnSpec] = &[u32c("job"), f64c("size_units")];
        const VM_HIRED: &[ColumnSpec] = &[u32c("vm"), dictc("tier")];
        match self {
            Self::JobArrived => JOB_ARRIVED,
            Self::VmHired => VM_HIRED,
        }
    }
}

impl Agg {
    /// Stable label.
    pub fn name(self) -> &'static str {
        match self {
            Self::Count => "count",
            Self::P95 => "p95",
        }
    }
}
"#;

const STORE_DOC: &str = "\
# Store

## Column layouts

### `job_arrived`

| column | type | notes |
|---|---|---|
| `job` | u32 | job id |
| `size_units` | f64 | size |

### `vm_hired`

| column | type | notes |
|---|---|---|
| `vm` | u32 | vm id |
| `tier` | dict | tier label |

## Aggregations

| aggregation | semantics |
|---|---|
| `count` | rows |
| `p95` | tail |
";

fn store_diags(doc: &str, code: &str) -> Vec<String> {
    let src = SourceFile::new(PathBuf::from("schema.rs"), code.to_string());
    let model = parse_store_model(&src);
    check_tracestore_doc(Path::new("TRACESTORE.md"), doc, Path::new("schema.rs"), &model)
        .into_iter()
        .map(|d| d.render())
        .collect()
}

#[test]
fn matching_store_doc_is_clean() {
    assert_eq!(store_diags(STORE_DOC, STORE_CODE), Vec::<String>::new());
}

#[test]
fn undocumented_store_kind_is_drift() {
    let doc = STORE_DOC.split("### `vm_hired`").next().expect("doc splits");
    let doc = format!("{doc}\n## Aggregations\n\n| `count` | rows |\n| `p95` | tail |\n");
    let out = store_diags(&doc, STORE_CODE);
    assert!(
        out.iter().any(|d| d.contains("EventKind::VmHired (`vm_hired`) has no column table")),
        "{out:?}"
    );
}

#[test]
fn phantom_store_table_is_drift() {
    let doc = STORE_DOC.replace("### `vm_hired`", "### `vm_acquired`");
    let out = store_diags(&doc, STORE_CODE);
    assert!(out.iter().any(|d| d.contains("`vm_hired`) has no column table")), "{out:?}");
    assert!(
        out.iter().any(|d| d.contains("table `vm_acquired` does not correspond to any EventKind")),
        "{out:?}"
    );
}

#[test]
fn missing_store_column_row_is_drift() {
    let doc = STORE_DOC.replace("| `size_units` | f64 | size |\n", "");
    let out = store_diags(&doc, STORE_CODE);
    assert!(out.iter().any(|d| d.contains("missing a row for column `size_units`")), "{out:?}");
}

#[test]
fn phantom_store_column_row_is_drift() {
    let doc = STORE_DOC.replace(
        "| `tier` | dict | tier label |",
        "| `tier` | dict | tier label |\n| `ghost` | u8 | n/a |",
    );
    let out = store_diags(&doc, STORE_CODE);
    assert!(
        out.iter().any(|d| d.contains("documented column `ghost` is not declared for `vm_hired`")),
        "{out:?}"
    );
}

#[test]
fn implicit_store_columns_are_never_drift() {
    let doc = STORE_DOC.replace(
        "| `vm` | u32 | vm id |",
        "| `t` | f64 | sim time |\n| `tenant` | u32 | tenant |\n| `vm` | u32 | vm id |",
    );
    assert_eq!(store_diags(&doc, STORE_CODE), Vec::<String>::new());
}

#[test]
fn aggregation_drift_is_caught_both_ways() {
    let doc = STORE_DOC.replace("| `p95` | tail |\n", "");
    let out = store_diags(&doc, STORE_CODE);
    assert!(out.iter().any(|d| d.contains("aggregation `p95` is missing")), "{out:?}");

    let doc = STORE_DOC.replace("| `p95` | tail |", "| `p95` | tail |\n| `p99` | tail |");
    let out = store_diags(&doc, STORE_CODE);
    assert!(out.iter().any(|d| d.contains("aggregation `p99` does not exist in Agg")), "{out:?}");
}

#[test]
fn store_tables_outside_column_layouts_are_ignored() {
    let doc = format!("{STORE_DOC}\n## Export format\n\n### `not_a_kind`\n\n| `x` | raw |\n");
    assert_eq!(store_diags(&doc, STORE_CODE), Vec::<String>::new());
}

const SPANS_CODE: &str = r#"
pub enum SegmentKind {
    QueueWait,
    Service,
}

impl SegmentKind {
    /// Stable label.
    pub fn name(self) -> &'static str {
        match self {
            Self::QueueWait => "queue_wait",
            Self::Service => "service",
        }
    }
}

/// Violation counter.
pub const SLO_VIOLATIONS_TOTAL: &str = "slo_violations_total";

/// Burn-rate series.
pub const SLO_BURN_RATE: &str = "slo_burn_rate";
"#;

const SPANS_DOC: &str = "\
# Spans

## Segment taxonomy

| segment | meaning |
|---|---|
| `queue_wait` | waiting for a worker |
| `service` | anchor subtask executing |

## SLO metrics

| metric | meaning |
|---|---|
| `slo_violations_total` | violation counter |
| `slo_burn_rate` | burn rate |

## Perfetto export

| `not_a_segment` | this table is outside both sections |
";

fn spans_diags(doc: &str, code: &str) -> Vec<String> {
    let src = SourceFile::new(PathBuf::from("schema.rs"), code.to_string());
    let model = parse_spans_model(&src);
    check_spans_doc(Path::new("SPANS.md"), doc, Path::new("schema.rs"), &model)
        .into_iter()
        .map(|d| d.render())
        .collect()
}

#[test]
fn matching_spans_doc_is_clean() {
    assert_eq!(spans_diags(SPANS_DOC, SPANS_CODE), Vec::<String>::new());
}

#[test]
fn undocumented_segment_is_drift() {
    let doc = SPANS_DOC.replace("| `service` | anchor subtask executing |\n", "");
    let out = spans_diags(&doc, SPANS_CODE);
    assert!(out.iter().any(|d| d.contains("segment `service` has no row")), "{out:?}");
}

#[test]
fn phantom_segment_row_is_drift() {
    let doc = SPANS_DOC.replace(
        "| `service` | anchor subtask executing |",
        "| `service` | anchor subtask executing |\n| `gc_pause` | n/a |",
    );
    let out = spans_diags(&doc, SPANS_CODE);
    assert!(
        out.iter().any(|d| d.contains("documented segment `gc_pause` does not exist")),
        "{out:?}"
    );
}

#[test]
fn undocumented_slo_metric_is_drift() {
    let doc = SPANS_DOC.replace("| `slo_burn_rate` | burn rate |\n", "");
    let out = spans_diags(&doc, SPANS_CODE);
    assert!(out.iter().any(|d| d.contains("SLO metric `slo_burn_rate` has no row")), "{out:?}");
}

#[test]
fn phantom_slo_metric_row_is_drift() {
    let doc = SPANS_DOC.replace(
        "| `slo_burn_rate` | burn rate |",
        "| `slo_burn_rate` | burn rate |\n| `slo_error_budget` | n/a |",
    );
    let out = spans_diags(&doc, SPANS_CODE);
    assert!(
        out.iter().any(|d| d.contains("`slo_error_budget` is not declared in the span schema")),
        "{out:?}"
    );
}

#[test]
fn spans_rows_outside_both_sections_are_ignored() {
    // The trailing "## Perfetto export" table in the fixture is already
    // outside both sections; a clean result proves it is skipped.
    assert_eq!(spans_diags(SPANS_DOC, SPANS_CODE), Vec::<String>::new());
}

#[test]
fn real_spans_model_parses_non_vacuously() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("crates/spans/src/schema.rs");
    let text = std::fs::read_to_string(&path).expect("schema.rs exists at the workspace root");
    let model = parse_spans_model(&SourceFile::new(path, text));
    assert_eq!(model.segments.len(), 6, "all SegmentKind labels parsed: {:?}", model.segments);
    assert_eq!(model.slo_metrics.len(), 3, "all SLO_* consts parsed: {:?}", model.slo_metrics);
}

#[test]
fn real_store_model_parses_non_vacuously() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("crates/tracestore/src/schema.rs");
    let text = std::fs::read_to_string(&path).expect("schema.rs exists at the workspace root");
    let model = parse_store_model(&SourceFile::new(path, text));
    assert!(model.columns.len() >= 15, "only {} kinds parsed", model.columns.len());
    assert_eq!(model.columns.len(), model.tags.len(), "every kind has a tag arm");
    assert_eq!(model.agg_names.len(), 6, "all Agg labels parsed");
    let (_, dispatched) = &model.columns["SubtaskDispatched"];
    assert!(dispatched.contains(&"tier".to_string()), "derived tier column parsed");
}
