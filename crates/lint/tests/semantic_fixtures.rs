//! Golden-file harness for the interprocedural (semantic) passes.
//!
//! Every `tests/fixtures/semantic/<case>/` directory is a miniature
//! multi-crate workspace (its own `crates/*/Cargo.toml` + sources) that
//! [`Workspace::load`] loads like the real one. The semantic passes run
//! over it and the rendered findings — including each finding's full
//! evidence chain — are compared against the case's `expected.txt`.
//! Regenerate after an intentional pass change with:
//!
//! ```text
//! BLESS=1 cargo test -p scan-lint --test semantic_fixtures
//! ```
//!
//! The drift tests then mutate a fixture workspace in memory (delete an
//! emission site, add a tainted helper) and assert the pass *fires*,
//! guarding against silently-vacuous analyses.

use scan_lint::source::SourceFile;
use scan_lint::workspace::Workspace;
use std::fs;
use std::path::{Path, PathBuf};

fn semantic_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semantic")
}

/// Renders a semantic run the way the goldens store it: one line per
/// finding, then one indented line per chain hop.
fn render(ws: &Workspace) -> String {
    let mut out = String::new();
    for diag in ws.run_semantic().diagnostics {
        out.push_str(&diag.render());
        out.push('\n');
        for hop in &diag.chain {
            out.push_str(&format!("  -> {} ({}:{})\n", hop.label, hop.path.display(), hop.line));
        }
    }
    out
}

#[test]
fn semantic_fixtures_match_goldens() {
    let dir = semantic_dir();
    let bless = std::env::var_os("BLESS").is_some();
    let mut cases: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures/semantic directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no semantic fixture cases in {}", dir.display());

    let mut failures = Vec::new();
    for case in &cases {
        let ws = Workspace::load(case).expect("fixture workspaces load");
        let got = render(&ws);
        let golden = case.join("expected.txt");
        if bless {
            fs::write(&golden, &got).expect("goldens are writable under BLESS=1");
            continue;
        }
        let want = fs::read_to_string(&golden).unwrap_or_default();
        if got != want {
            failures.push(format!(
                "{}: output drifted from {}\n--- got ---\n{got}\n--- want ---\n{want}",
                case.display(),
                golden.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

/// The acceptance shape for the taint pass: the cross-crate case flags
/// the sim boundary with a chain that reaches through the clean-looking
/// helper down to the wall-clock seed, and the *same* workspace with a
/// reasoned sink annotation scans clean.
#[test]
fn taint_is_interprocedural_and_sink_annotations_absorb() {
    let flagged = Workspace::load(&semantic_dir().join("taint_cross_crate")).unwrap();
    let result = flagged.run_semantic();
    let taint: Vec<_> = result.diagnostics.iter().filter(|d| d.rule == "taint-nondet").collect();
    assert_eq!(taint.len(), 1, "exactly one sim-boundary crossing");
    let d = taint[0];
    assert!(d.path.ends_with("crates/sched/src/lib.rs"), "reported at the crossing: {d:?}");
    assert!(d.chain.len() >= 4, "chain spans caller, helper, seeding fn and seed: {:?}", d.chain);
    let files: std::collections::BTreeSet<_> = d.chain.iter().map(|h| h.path.clone()).collect();
    assert!(files.len() >= 2, "chain crosses crates: {files:?}");

    let clean = Workspace::load(&semantic_dir().join("taint_sink_annotated")).unwrap();
    assert!(
        clean.run_semantic().diagnostics.is_empty(),
        "a reasoned allow(taint-nondet) on the helper absorbs the flow"
    );
}

/// Replaces one file of a loaded workspace with edited text.
fn patch(ws: &mut Workspace, suffix: &str, edit: impl Fn(&str) -> String) {
    let wf = ws
        .files
        .iter_mut()
        .find(|wf| wf.file.path.ends_with(suffix))
        .unwrap_or_else(|| panic!("workspace has a file ending in {suffix}"));
    let patched = edit(&wf.file.text);
    assert_ne!(patched, wf.file.text, "the drift edit must change {suffix}");
    wf.file = SourceFile::new(wf.file.path.clone(), patched);
}

/// Synthetic drift: deleting the one emission site of a live trace
/// variant must surface it as dead telemetry.
#[test]
fn deleting_an_emission_site_fires_dead_telemetry() {
    let mut ws = Workspace::load(&semantic_dir().join("dead_telemetry")).unwrap();
    patch(&mut ws, "crates/sim/src/lib.rs", |text| {
        text.replace("TraceEvent::JobSeen { job: 1 }", "todo!(\"drifted away\")")
    });
    let result = ws.run_semantic();
    assert!(
        result
            .diagnostics
            .iter()
            .any(|d| d.rule == "dead-telemetry" && d.message.contains("JobSeen")),
        "JobSeen lost its emission site and must be flagged: {:?}",
        result.diagnostics
    );
}

/// Synthetic drift: routing the sim-facing caller through a *new*
/// tainted helper must fire the taint pass even though the original
/// flow stays sink-annotated.
#[test]
fn adding_a_tainted_helper_fires_taint() {
    let mut ws = Workspace::load(&semantic_dir().join("taint_sink_annotated")).unwrap();
    patch(&mut ws, "crates/helpers/src/lib.rs", |text| {
        let mut t = text.to_string();
        t.push_str(
            "\n/// Drifted-in helper with a fresh hazard.\npub fn jitter() -> u64 {\n    \
             std::time::Instant::now().elapsed().subsec_nanos() as u64\n}\n",
        );
        t
    });
    patch(&mut ws, "crates/sched/src/lib.rs", |text| {
        text.replace("estimate()", "estimate() + scan_helpers::jitter() as f64")
    });
    let result = ws.run_semantic();
    assert!(
        result.diagnostics.iter().any(|d| d.rule == "taint-nondet" && d.message.contains("jitter")),
        "the new tainted helper must be flagged at the sim boundary: {:?}",
        result.diagnostics
    );
}
