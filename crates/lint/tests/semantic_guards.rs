//! Non-vacuity guards for the semantic layer, pinned against the real
//! workspace: a refactor that silently stops resolving calls (or stops
//! finding hazards) would otherwise keep every pass green by making it
//! blind. `workspace_clean` pins the *post-allow* result at zero; these
//! pin the machinery underneath at non-trivial sizes.

use scan_lint::diag::Allows;
use scan_lint::graph;
use scan_lint::model::SemanticModel;
use scan_lint::rules::{self, semantic};
use scan_lint::source::SourceFile;
use scan_lint::workspace::Workspace;
use std::path::Path;

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::load(&root).expect("workspace root is readable")
}

#[test]
fn call_graph_covers_the_workspace() {
    let ws = real_workspace();
    let model = SemanticModel::build(&ws);
    let g = graph::build(&model);
    assert!(model.fns.len() >= 1000, "symbol table shrank: {} fns", model.fns.len());
    assert!(g.edge_count() >= 500, "call graph shrank: {} edges", g.edge_count());
}

/// With allow directives ignored, the passes must find the workspace's
/// *annotated* hazards: the kb interner's lookup-only `HashMap` behind
/// the broker, and the trace-store columns' `# Panics` contract sites
/// behind the observer hot path. If this fails after removing one of
/// those, re-point it at another allowed site — the guard exists so the
/// passes can never silently go blind.
#[test]
fn passes_find_the_annotated_sites_when_allows_are_ignored() {
    let ws = real_workspace();
    let model = SemanticModel::build(&ws);
    let g = graph::build(&model);
    let mut no_allows = Allows::collect(std::iter::empty::<&SourceFile>(), rules::is_known_rule);
    let mut diags = Vec::new();
    semantic::check(&model, &g, &mut no_allows, &mut diags);
    let count = |rule: &str| diags.iter().filter(|d| d.rule == rule).count();
    assert!(count("taint-nondet") >= 1, "taint pass went blind: {diags:?}");
    assert!(count("panic-path") >= 1, "panic-path pass went blind: {diags:?}");
}
