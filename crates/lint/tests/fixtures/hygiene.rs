//! Hygiene fixture: every finding below is intentional.

// TODO tie the loose ends here
// TODO(#42) fine: carries an issue reference
// FIXME see https://example.com/ticket fine: carries a link

/// Documented, so only the body findings fire.
pub fn body_findings(x: Option<u32>) -> u32 {
    // Fires no-unwrap.
    let a = x.unwrap();
    // Fires no-expect: message too short to state an invariant.
    let b = x.expect("set");
    // Fine: the message states the invariant.
    let c = x.expect("caller checked is_some above");
    a + b + c
}

/// Fires no-panic three times.
pub fn panics(kind: u8) {
    match kind {
        0 => panic!("boom"),
        1 => todo!(),
        _ => unimplemented!(),
    }
}

// Fires pub-docs: no doc comment.
pub struct Undocumented {
    /// Documented field is fine.
    pub fine: u32,
    // Fires pub-docs: field without docs.
    pub bare: u32,
}

/// Fine: restricted visibility is not exported API.
pub(crate) fn internal() {}

#[doc(hidden)]
pub fn hidden_is_exempt() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
