//! Allow-machinery fixture: exercises suppression, bad-allow and
//! unused-allow.

/// Suppressed cleanly: nothing from this function reaches the report.
pub fn sanctioned(x: Option<u32>) -> u32 {
    x.unwrap() // scan-lint: allow(no-unwrap) -- fixture: trailing allow on the same line
}

/// Suppressed cleanly by a directive on the line above.
pub fn sanctioned_above(x: Option<u32>) -> u32 {
    // scan-lint: allow(no-unwrap) -- fixture: standalone allow covering the next line
    x.unwrap()
}

/// Fires bad-allow (no reason) and the no-unwrap survives.
pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // scan-lint: allow(no-unwrap)
}

/// Fires bad-allow: names a rule that does not exist.
pub fn unknown_rule(x: Option<u32>) -> u32 {
    x.unwrap() // scan-lint: allow(no-such-rule) -- misspelled rule id
}

/// Fires unused-allow: there is nothing to suppress here.
pub fn nothing_to_excuse() -> u32 {
    // scan-lint: allow(no-panic) -- fixture: stale escape hatch
    7
}
