//! Clean fixture: a sim-facing library file with nothing to report.

use std::collections::BTreeMap;

/// Deterministic state: ordered containers, no clocks, no entropy.
#[derive(Default)]
pub struct Ledger {
    /// Balances keyed by account, iterated in key order.
    pub balances: BTreeMap<u64, i64>,
}

impl Ledger {
    /// Applies a delta, creating the account on first touch.
    pub fn apply(&mut self, account: u64, delta: i64) -> i64 {
        let slot = self.balances.entry(account).or_insert(0);
        *slot += delta;
        *slot
    }

    /// Largest balance, ties broken by lowest account id.
    pub fn richest(&self) -> Option<(u64, i64)> {
        self.balances.iter().map(|(k, v)| (*k, *v)).max_by_key(|(k, v)| (*v, std::cmp::Reverse(*k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_accumulates() {
        let mut ledger = Ledger::default();
        ledger.apply(1, 5);
        assert_eq!(ledger.apply(1, -2), 3);
    }
}
