//! Fixture: a clean-looking estimation helper whose value comes from
//! the wall clock one call further down. Nothing here is sim-facing, so
//! the per-file determinism rules stay silent — only the interprocedural
//! taint pass can connect this to the scheduler.

/// Estimated staging seconds for one transfer.
pub fn estimate() -> f64 {
    wall_seed() as f64 / 1e9
}

fn wall_seed() -> u64 {
    let now = std::time::SystemTime::now();
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => u64::from(d.subsec_nanos()),
        Err(_) => 0,
    }
}
