//! Fixture: a sim-facing scheduler that calls the helper crate. The
//! helper looks clean at this call site; the taint pass must walk the
//! call graph to find the `SystemTime` two hops away.

use scan_helpers::estimate;

/// The fixture scheduler.
pub struct Scheduler;

impl Scheduler {
    /// Plans one transfer using the helper's estimate.
    pub fn plan(&self) -> f64 {
        estimate()
    }
}
