//! Fixture: an observer hot path that can reach two panic sources. The
//! cold-path panic in `validate` is *not* reachable from the root and
//! must not be reported.

/// The fixture event sink.
pub struct Store {
    rows: u64,
}

impl Observer for Store {
    fn on_event(&mut self) {
        self.write(1);
    }
}

impl Store {
    fn write(&mut self, n: u64) {
        self.rows = self.rows.checked_add(n).unwrap();
        if self.rows > 1_000_000 {
            panic!("fixture: table overflow");
        }
    }

    /// Cold path: only callable from tests, so unreachable from the root.
    pub fn validate(&self) {
        if self.rows == 0 {
            panic!("fixture: empty store");
        }
    }
}
