//! Fixture trace schema: one live variant, one ghost.

/// The fixture event vocabulary.
pub enum TraceEvent {
    /// Emitted by `emit` below — constructed, therefore live.
    JobSeen {
        /// Job id.
        job: u64,
    },
    /// Declared but never constructed anywhere outside tests.
    GhostStep {
        /// Step index.
        step: u32,
    },
}
