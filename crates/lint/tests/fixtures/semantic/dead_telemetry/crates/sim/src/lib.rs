//! Fixture sim crate: constructs exactly one of the two trace variants,
//! leaving `GhostStep` dead.

pub mod trace;

pub use trace::TraceEvent;

/// Emits the live variant.
pub fn emit() -> TraceEvent {
    TraceEvent::JobSeen { job: 1 }
}
