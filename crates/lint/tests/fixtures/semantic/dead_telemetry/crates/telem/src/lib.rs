//! Fixture telemetry crate: one live and one dead metric handle, one
//! factory-buildable observer and one no factory can produce.

/// The fixture metric registry.
pub struct Reg {
    n: u32,
}

impl Reg {
    /// Registers a counter and returns its handle.
    pub fn counter(&mut self, name: &str) -> u32 {
        let _ = name;
        self.n += 1;
        self.n
    }

    /// Adds to a counter by handle.
    pub fn counter_add(&mut self, id: u32, n: u64) {
        let _ = (id, n);
    }
}

/// Wires the fixture metrics: `live_total` reaches an update,
/// `dead_total` never does.
pub fn wire(reg: &mut Reg) {
    let live = reg.counter("live_total");
    let dead = reg.counter("dead_total");
    reg.counter_add(live, 1);
}

/// Buildable observer: the factory below names it.
pub struct Live;

impl Observer for Live {
    fn on_event(&mut self) {}
}

impl Merge for Live {
    fn merge(&mut self, _other: Live) {}
}

/// Observer no `ObserverFactory` impl can build.
pub struct Ghost;

impl Observer for Ghost {
    fn on_event(&mut self) {}
}

impl Merge for Ghost {
    fn merge(&mut self, _other: Ghost) {}
}

/// The fixture factory: builds only `Live`.
pub struct Factory;

impl ObserverFactory for Factory {
    fn build(&self) -> Live {
        Live
    }
}
