//! Fixture: the same helper as `taint_cross_crate`, but with a reasoned
//! sink annotation on `estimate` — the taint pass absorbs the flow
//! there and the workspace scans clean.

/// Estimated staging seconds for one transfer.
// scan-lint: allow(taint-nondet) -- fixture sink: the estimate is advisory, never ordering.
pub fn estimate() -> f64 {
    wall_seed() as f64 / 1e9
}

fn wall_seed() -> u64 {
    let now = std::time::SystemTime::now();
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => u64::from(d.subsec_nanos()),
        Err(_) => 0,
    }
}
