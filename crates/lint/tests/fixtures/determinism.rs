//! Determinism fixture: every finding below is intentional. Checked as
//! library code of a sim-facing crate.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::{Duration, Instant, SystemTime};

/// Container of intentional hazards.
pub struct State {
    /// Fires hash-iter.
    pub slots: HashMap<u64, u64>,
    /// Fires hash-iter.
    pub seen: HashSet<u64>,
    /// Fine: ordered map.
    pub ordered: BTreeMap<u64, u64>,
}

/// Fires wall-clock twice (Instant + SystemTime).
pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

/// Fine: Duration is a value type, not a clock read.
pub fn pause() -> Duration {
    Duration::from_millis(1)
}

/// Fires os-entropy twice (thread_rng + std::env read).
pub fn entropy() -> bool {
    let _ = rand::thread_rng();
    std::env::var("SCAN_SEED").is_ok()
}

/// Fires float-ord once: partial_cmp fed straight into unwrap.
pub fn float_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Fine: total_cmp is the sanctioned ordering.
    xs.sort_by(|a, b| a.total_cmp(b));
}

#[cfg(test)]
mod tests {
    /// Fine: tests may use anything.
    #[test]
    fn hash_in_tests_is_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, std::time::Instant::now());
        assert_eq!(m.len(), 1);
    }
}
