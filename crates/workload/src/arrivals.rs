//! The batch arrival process of Table III.
//!
//! Jobs arrive in bursts: arrival *events* are separated by exponential
//! intervals (mean 2.0–3.0 TU, the swept workload knob), each event brings
//! a normal number of jobs (mean 3, variance 2, at least 1), and each job
//! has a normal size (mean 5, variance 1, floored well above zero). The
//! paper chose these "to produce significant short-term workload
//! variation".

use crate::job::{Job, JobId};
use scan_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Arrival-process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean inter-arrival interval between batch events, TU (Table I:
    /// 2.0, 2.1, …, 3.0).
    pub mean_interval: f64,
    /// Mean jobs per arrival event (Table III: 3).
    pub mean_batch: f64,
    /// Variance of jobs per event (Table III: 2).
    pub batch_variance: f64,
    /// Mean job size, units (Table III: 5).
    pub mean_size: f64,
    /// Variance of job size (Table III: 1).
    pub size_variance: f64,
}

impl ArrivalConfig {
    /// Table III defaults at a given mean interval.
    pub fn paper(mean_interval: f64) -> Self {
        assert!(mean_interval > 0.0);
        ArrivalConfig {
            mean_interval,
            mean_batch: 3.0,
            batch_variance: 2.0,
            mean_size: 5.0,
            size_variance: 1.0,
        }
    }

    /// Long-run average job arrival rate (jobs per TU).
    pub fn mean_job_rate(&self) -> f64 {
        self.mean_batch / self.mean_interval
    }
}

/// One arrival event: a batch of jobs landing together.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalBatch {
    /// When the batch arrives.
    pub at: SimTime,
    /// The jobs (ids assigned sequentially by the process).
    pub jobs: Vec<Job>,
}

/// Generates the arrival stream deterministically from two named RNG
/// streams (one for timing, one for sizes — so a policy change that draws
/// differently elsewhere cannot perturb the workload).
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    config: ArrivalConfig,
    timing_rng: SimRng,
    size_rng: SimRng,
    next_job_id: u32,
    next_at: SimTime,
}

/// Smallest job size the generator will emit (units). Keeps sizes positive
/// and reward terms well-defined; ≈ 4σ below the paper's mean.
pub const MIN_JOB_SIZE: f64 = 1.0;

impl ArrivalProcess {
    /// Creates the process; the first batch arrives after one interval.
    pub fn new(config: ArrivalConfig, timing_rng: SimRng, size_rng: SimRng) -> Self {
        let mut p =
            ArrivalProcess { config, timing_rng, size_rng, next_job_id: 0, next_at: SimTime::ZERO };
        let gap = p.timing_rng.exponential(p.config.mean_interval);
        p.next_at = SimTime::ZERO + SimDuration::new(gap);
        p
    }

    /// When the next batch will arrive.
    pub fn next_arrival_at(&self) -> SimTime {
        self.next_at
    }

    /// Produces the next batch and schedules the one after.
    pub fn next_batch(&mut self) -> ArrivalBatch {
        let at = self.next_at;
        let n = self.size_rng.count_normal(self.config.mean_batch, self.config.batch_variance, 1);
        let jobs = (0..n)
            .map(|_| {
                let size = self.size_rng.truncated_normal(
                    self.config.mean_size,
                    self.config.size_variance,
                    MIN_JOB_SIZE,
                );
                let id = JobId(self.next_job_id);
                self.next_job_id += 1;
                Job::new(id, size, at)
            })
            .collect();
        let gap = self.timing_rng.exponential(self.config.mean_interval);
        self.next_at = at + SimDuration::new(gap);
        ArrivalBatch { at, jobs }
    }

    /// Generates all batches up to a horizon (convenience for tests and
    /// open-loop analysis).
    pub fn batches_until(&mut self, horizon: SimTime) -> Vec<ArrivalBatch> {
        let mut out = Vec::new();
        while self.next_at <= horizon {
            out.push(self.next_batch());
        }
        out
    }

    /// Jobs generated so far.
    pub fn jobs_generated(&self) -> u64 {
        self.next_job_id as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::RngHub;

    fn process(interval: f64, seed: u64) -> ArrivalProcess {
        let hub = RngHub::new(seed, 0);
        ArrivalProcess::new(
            ArrivalConfig::paper(interval),
            hub.stream("arrival-timing"),
            hub.stream("arrival-sizes"),
        )
    }

    #[test]
    fn batches_are_time_ordered_with_ids_sequential() {
        let mut p = process(2.0, 1);
        let batches = p.batches_until(SimTime::new(100.0));
        assert!(!batches.is_empty());
        let mut last = SimTime::ZERO;
        let mut expect_id = 0u32;
        for b in &batches {
            assert!(b.at >= last);
            last = b.at;
            assert!(!b.jobs.is_empty());
            for j in &b.jobs {
                assert_eq!(j.id.0, expect_id);
                expect_id += 1;
                assert_eq!(j.submitted_at, b.at);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<ArrivalBatch> = process(2.5, 7).batches_until(SimTime::new(50.0));
        let b: Vec<ArrivalBatch> = process(2.5, 7).batches_until(SimTime::new(50.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = process(2.5, 7).batches_until(SimTime::new(50.0));
        let b = process(2.5, 8).batches_until(SimTime::new(50.0));
        assert_ne!(a, b);
    }

    #[test]
    fn empirical_rates_match_table_iii() {
        let mut p = process(2.0, 42);
        let horizon = 20_000.0;
        let batches = p.batches_until(SimTime::new(horizon));
        let n_batches = batches.len() as f64;
        let n_jobs: usize = batches.iter().map(|b| b.jobs.len()).sum();
        // Inter-arrival mean ≈ 2.0.
        assert!((horizon / n_batches - 2.0).abs() < 0.1, "rate {}", horizon / n_batches);
        // Jobs per batch ≈ 3 (slightly above due to the ≥1 floor).
        let per_batch = n_jobs as f64 / n_batches;
        assert!((per_batch - 3.0).abs() < 0.15, "per-batch {per_batch}");
        // Mean size ≈ 5.
        let mean_size: f64 =
            batches.iter().flat_map(|b| b.jobs.iter().map(|j| j.size_units)).sum::<f64>()
                / n_jobs as f64;
        assert!((mean_size - 5.0).abs() < 0.05, "mean size {mean_size}");
    }

    #[test]
    fn sizes_respect_floor() {
        let mut p = process(2.0, 3);
        let batches = p.batches_until(SimTime::new(5000.0));
        assert!(batches.iter().flat_map(|b| &b.jobs).all(|j| j.size_units >= MIN_JOB_SIZE));
    }

    #[test]
    fn job_rate_helper() {
        assert!((ArrivalConfig::paper(2.0).mean_job_rate() - 1.5).abs() < 1e-12);
        assert!((ArrivalConfig::paper(3.0).mean_job_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_stream_independent_of_timing_stream() {
        // Same size seed, different timing seeds → same first-batch sizes
        // per job index is NOT guaranteed (batch boundaries move), but the
        // *job-size sequence* is identical because it comes from its own
        // stream.
        let hub1 = RngHub::new(5, 0);
        let hub2 = RngHub::new(5, 0);
        let mut p1 = ArrivalProcess::new(
            ArrivalConfig::paper(2.0),
            hub1.stream("timing-A"),
            hub1.stream("sizes"),
        );
        let mut p2 = ArrivalProcess::new(
            ArrivalConfig::paper(2.0),
            hub2.stream("timing-B"),
            hub2.stream("sizes"),
        );
        let sizes = |p: &mut ArrivalProcess| -> Vec<u64> {
            let mut out = Vec::new();
            while out.len() < 50 {
                for j in p.next_batch().jobs {
                    out.push((j.size_units * 1e6) as u64);
                }
            }
            out.truncate(50);
            out
        };
        assert_eq!(sizes(&mut p1), sizes(&mut p2));
    }
}
