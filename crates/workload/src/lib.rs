//! # scan-workload — the paper's GATK workload model
//!
//! §IV-1 models GATK pipeline stages "with single-threaded execution time
//! that is a linear function of the size of the first stage's input data":
//! `E_i(d) = a_i·d + b_i`, threaded per Amdahl as
//! `T_i(t, d) = c_i·E_i(d)/t + (1 − c_i)·E_i(d)`, with the constants of
//! Table II. This crate implements that model plus everything around it:
//!
//! * [`gatk`] — stage factors (Table II), the pipeline model, and the
//!   calibration constant mapping the paper's abstract "job size units"
//!   to GB (see `GB_PER_SIZE_UNIT`).
//! * [`job`] — jobs, per-stage tasks and shard-level subtasks.
//! * [`arrivals`] — the batch arrival process of Table III (exponential
//!   inter-arrival; normal batch size 3 ± var 2; normal job size 5 ± var 1).
//! * [`reward`] — §II-D's time-oriented and throughput-oriented reward
//!   schemes and the delay-cost building block of Eq. 1.
//! * [`profiletrace`] — synthetic offline-profiling traces (sizes 1–9 GB ×
//!   thread counts, like §III-A.1's GATK profiling) for knowledge-base
//!   bootstrap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod gatk;
pub mod job;
pub mod profiletrace;
pub mod reward;

pub use arrivals::{ArrivalBatch, ArrivalConfig, ArrivalProcess};
pub use gatk::{PipelineModel, StageFactors, GB_PER_SIZE_UNIT, N_STAGES, PAPER_STAGE_FACTORS};
pub use job::{Job, JobId, StageTask};
pub use profiletrace::generate_profile_trace;
pub use reward::RewardFn;
