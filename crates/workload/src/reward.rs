//! The reward schemes of §II-D and the delay-cost building block of Eq. 1.
//!
//! * Time-oriented: `R(d, t) = d · (Rmax − t · Rpenalty)` — every saved
//!   minute is worth the same.
//! * Throughput-oriented: `R(d, t) = d · Rscale / t` — rewards relative
//!   speedup.
//!
//! Table III fixes `Rmax = 400`, `Rpenalty = 15`, `Rscale = 15 000`.

use serde::{Deserialize, Serialize};

/// A task-completion reward function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RewardFn {
    /// `R(d, t) = d(Rmax − t·Rpenalty)`.
    TimeBased {
        /// Reward per size unit at zero latency (Table III: 400 CU).
        rmax: f64,
        /// Penalty per size unit per TU of latency (Table III: 15 CU/TU).
        rpenalty: f64,
    },
    /// `R(d, t) = d·Rscale / t`.
    ThroughputBased {
        /// Scale factor (Table III: 15 000 CU·TU).
        rscale: f64,
    },
    /// §III-A.2's deadline concept: full time-based reward until the
    /// deadline, zero after ("reward falls to zero as the results are
    /// useless thereafter"). Extension beyond Table I.
    Deadline {
        /// Reward per size unit at zero latency.
        rmax: f64,
        /// Penalty per size unit per TU before the deadline.
        rpenalty: f64,
        /// Latency beyond which the result is worthless, TU.
        deadline: f64,
    },
    /// §III-A.2's rapid-completion bonus: reward "slopes upwards before
    /// plateauing when execution is fast enough that the customer is not
    /// willing to pay for more" — i.e. the time-based reward capped at
    /// its value at `plateau` latency. Extension beyond Table I.
    Plateau {
        /// Reward per size unit at zero latency.
        rmax: f64,
        /// Penalty per size unit per TU past the plateau.
        rpenalty: f64,
        /// Latency below which no further reward accrues, TU.
        plateau: f64,
    },
}

impl RewardFn {
    /// Table III's time-based scheme.
    pub fn paper_time_based() -> Self {
        RewardFn::TimeBased { rmax: 400.0, rpenalty: 15.0 }
    }

    /// Table III's throughput-based scheme.
    pub fn paper_throughput_based() -> Self {
        RewardFn::ThroughputBased { rscale: 15_000.0 }
    }

    /// Short display name matching Table I's values.
    pub fn name(&self) -> &'static str {
        match self {
            RewardFn::TimeBased { .. } => "time-based",
            RewardFn::ThroughputBased { .. } => "throughput-based",
            RewardFn::Deadline { .. } => "deadline",
            RewardFn::Plateau { .. } => "plateau",
        }
    }

    /// Reward for completing a job of size `d` (units) with total pipeline
    /// latency `t` (TU).
    ///
    /// The time-based scheme can go negative for very late work — that is
    /// the paper's own model ("a constant penalty per unit time the work
    /// is delayed") and is what starves never-scale at heavy load.
    pub fn reward(&self, d: f64, t: f64) -> f64 {
        assert!(d > 0.0 && t >= 0.0, "size must be positive, latency non-negative");
        match *self {
            RewardFn::TimeBased { rmax, rpenalty } => d * (rmax - t * rpenalty),
            RewardFn::ThroughputBased { rscale } => {
                // Latency can be ~0 only for empty pipelines; guard the
                // division without distorting realistic values.
                d * rscale / t.max(1e-6)
            }
            RewardFn::Deadline { rmax, rpenalty, deadline } => {
                if t > deadline {
                    0.0
                } else {
                    d * (rmax - t * rpenalty)
                }
            }
            RewardFn::Plateau { rmax, rpenalty, plateau } => d * (rmax - t.max(plateau) * rpenalty),
        }
    }

    /// Marginal value (CU per TU) of shaving latency at operating point
    /// `t` — the latency price the plan optimiser trades against core
    /// cost. Computed analytically per scheme.
    pub fn latency_price(&self, d: f64, t: f64) -> f64 {
        match *self {
            RewardFn::TimeBased { rpenalty, .. } => d * rpenalty,
            RewardFn::ThroughputBased { rscale } => d * rscale / (t * t).max(1e-9),
            RewardFn::Deadline { rmax, rpenalty, deadline } => {
                if t > deadline {
                    // Past the deadline the only value is getting back
                    // under it: price the full reward against the gap.
                    d * rmax / (t - deadline).max(0.1)
                } else {
                    d * rpenalty
                }
            }
            RewardFn::Plateau { rpenalty, plateau, .. } => {
                if t <= plateau {
                    0.0
                } else {
                    d * rpenalty
                }
            }
        }
    }

    /// Reward lost by delaying a job currently estimated to finish at
    /// latency `t` by `delay` more TU: `R(d, t) − R(d, t + delay)` —
    /// the per-job term inside Eq. 1's sum.
    pub fn delay_loss(&self, d: f64, t: f64, delay: f64) -> f64 {
        assert!(delay >= 0.0);
        self.reward(d, t) - self.reward(d, t + delay)
    }

    /// Whether [`RewardFn::delay_loss`] depends on the job's latency
    /// operating point `t` (its ETT). The time-based scheme's loss is
    /// `d · rpenalty · delay` regardless of `t`, which is what lets
    /// Eq. 1 aggregate it per class as a plain Σd; every other scheme
    /// bends with `t` and needs per-job ETT terms.
    pub fn depends_on_ett(&self) -> bool {
        !matches!(self, RewardFn::TimeBased { .. })
    }

    /// Latency at which the reward hits zero (None if it never does).
    pub fn breakeven_latency(&self, _d: f64) -> Option<f64> {
        match *self {
            RewardFn::TimeBased { rmax, rpenalty } => (rpenalty > 0.0).then(|| rmax / rpenalty),
            RewardFn::ThroughputBased { .. } => None,
            RewardFn::Deadline { rmax, rpenalty, deadline } => {
                Some(if rpenalty > 0.0 { (rmax / rpenalty).min(deadline) } else { deadline })
            }
            RewardFn::Plateau { rmax, rpenalty, .. } => (rpenalty > 0.0).then(|| rmax / rpenalty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_based_matches_formula() {
        let r = RewardFn::paper_time_based();
        // d=5, t=10: 5 × (400 − 150) = 1250.
        assert!((r.reward(5.0, 10.0) - 1250.0).abs() < 1e-9);
        // Breakeven at 400/15 ≈ 26.67 TU.
        assert!((r.breakeven_latency(5.0).unwrap() - 400.0 / 15.0).abs() < 1e-9);
        // Negative past breakeven.
        assert!(r.reward(5.0, 30.0) < 0.0);
    }

    #[test]
    fn throughput_based_matches_formula() {
        let r = RewardFn::paper_throughput_based();
        // d=5, t=50: 5 × 15000 / 50 = 1500.
        assert!((r.reward(5.0, 50.0) - 1500.0).abs() < 1e-9);
        assert!(r.breakeven_latency(5.0).is_none());
        // Halving latency doubles reward.
        assert!((r.reward(5.0, 25.0) - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn delay_loss_time_based_is_linear() {
        let r = RewardFn::paper_time_based();
        // d × rpenalty × delay = 5 × 15 × 2 = 150, independent of t.
        assert!((r.delay_loss(5.0, 10.0, 2.0) - 150.0).abs() < 1e-9);
        assert!((r.delay_loss(5.0, 40.0, 2.0) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn delay_loss_throughput_shrinks_with_t() {
        let r = RewardFn::paper_throughput_based();
        // Delaying an already-slow job costs less than a fast one.
        let fast = r.delay_loss(5.0, 10.0, 2.0);
        let slow = r.delay_loss(5.0, 100.0, 2.0);
        assert!(fast > slow);
        assert!(slow > 0.0);
    }

    #[test]
    fn deadline_scheme() {
        let r = RewardFn::Deadline { rmax: 400.0, rpenalty: 15.0, deadline: 20.0 };
        assert!((r.reward(5.0, 10.0) - 1250.0).abs() < 1e-9, "before the deadline: time-based");
        assert_eq!(r.reward(5.0, 20.5), 0.0, "after the deadline: worthless");
        assert_eq!(r.breakeven_latency(5.0), Some(20.0));
        // Past the deadline the latency price spikes (recovering matters).
        assert!(r.latency_price(5.0, 25.0) > r.latency_price(5.0, 10.0));
    }

    #[test]
    fn plateau_scheme() {
        let r = RewardFn::Plateau { rmax: 400.0, rpenalty: 15.0, plateau: 10.0 };
        // Below the plateau the reward is pinned at its 10-TU value…
        assert_eq!(r.reward(5.0, 5.0), r.reward(5.0, 10.0));
        assert_eq!(r.latency_price(5.0, 8.0), 0.0, "no value in going faster");
        // …and slopes normally above it.
        assert!((r.reward(5.0, 20.0) - 5.0 * (400.0 - 300.0)).abs() < 1e-9);
        assert!((r.latency_price(5.0, 20.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn latency_price_matches_slope() {
        // Numeric check of the analytic marginal against a finite
        // difference, for every scheme at an interior point.
        let eps = 1e-6;
        for r in [
            RewardFn::paper_time_based(),
            RewardFn::paper_throughput_based(),
            RewardFn::Deadline { rmax: 400.0, rpenalty: 15.0, deadline: 50.0 },
            RewardFn::Plateau { rmax: 400.0, rpenalty: 15.0, plateau: 5.0 },
        ] {
            let t = 20.0;
            let numeric = (r.reward(5.0, t) - r.reward(5.0, t + eps)) / eps;
            let analytic = r.latency_price(5.0, t);
            assert!(
                (numeric - analytic).abs() < 1e-3 * analytic.abs().max(1.0),
                "{}: numeric {numeric} vs analytic {analytic}",
                r.name()
            );
        }
    }

    #[test]
    fn names() {
        assert_eq!(RewardFn::paper_time_based().name(), "time-based");
        assert_eq!(RewardFn::paper_throughput_based().name(), "throughput-based");
        assert_eq!(
            RewardFn::Deadline { rmax: 1.0, rpenalty: 0.0, deadline: 1.0 }.name(),
            "deadline"
        );
        assert_eq!(RewardFn::Plateau { rmax: 1.0, rpenalty: 0.0, plateau: 1.0 }.name(), "plateau");
    }

    #[test]
    fn only_the_time_based_loss_ignores_ett() {
        assert!(!RewardFn::paper_time_based().depends_on_ett());
        assert!(RewardFn::paper_throughput_based().depends_on_ett());
        assert!(RewardFn::Deadline { rmax: 1.0, rpenalty: 1.0, deadline: 1.0 }.depends_on_ett());
        assert!(RewardFn::Plateau { rmax: 1.0, rpenalty: 1.0, plateau: 1.0 }.depends_on_ett());
        // The claim itself: time-based delay_loss is flat in t.
        let r = RewardFn::paper_time_based();
        assert_eq!(r.delay_loss(5.0, 3.0, 2.0).to_bits(), r.delay_loss(5.0, 99.0, 2.0).to_bits());
    }

    proptest! {
        /// Rewards are non-increasing in latency for both schemes.
        #[test]
        fn prop_monotone_in_latency(d in 0.5f64..20.0, t in 0.01f64..200.0, dt in 0.0f64..50.0) {
            for r in [RewardFn::paper_time_based(), RewardFn::paper_throughput_based()] {
                prop_assert!(r.reward(d, t) >= r.reward(d, t + dt) - 1e-9);
                prop_assert!(r.delay_loss(d, t, dt) >= -1e-9);
            }
        }

        /// Rewards scale linearly with data size.
        #[test]
        fn prop_linear_in_size(d in 0.5f64..10.0, t in 0.1f64..100.0, k in 1.0f64..5.0) {
            for r in [RewardFn::paper_time_based(), RewardFn::paper_throughput_based()] {
                let lhs = r.reward(k * d, t);
                let rhs = k * r.reward(d, t);
                prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
            }
        }
    }
}
