//! The 7-stage GATK pipeline model with the paper's Table II constants.
//!
//! Two parallelisation levers exist per stage, mirroring §II-A.2's
//! "coarse-grained multi-process sharding and fine-grained \[threading\]":
//!
//! * **Sharding** into `s` pieces: each piece carries `d/s` of the data,
//!   so the *latency* of an a-dominated stage shrinks toward `b_i`, at the
//!   cost of paying `b_i` once per shard (`s` pieces × `E_i(d/s)` total
//!   work = `a_i·d + s·b_i`).
//! * **Threading** with `t` threads: latency scales per Amdahl with
//!   fraction `c_i`, at the cost of `t` cores held for the whole stage.
//!
//! High-`a`/low-`b` stages (stage 2: a=2.70, b=−0.53, c=0.02) want
//! sharding; high-`b`/high-`c` stages (stage 5: a=1.03, b=17.86, c=0.91)
//! want threading — exactly the heterogeneity the SCAN scheduler exploits.

use serde::{Deserialize, Serialize};

/// Number of pipeline stages.
pub const N_STAGES: usize = 7;

/// Calibration: GB of stage-1 input per abstract "job size unit".
///
/// Table III gives job sizes in "arbitrary units" (mean 5 ± var 1) while
/// the stage models were regressed over 1–9 GB profiling inputs, and §IV-1
/// states the knowledge base makes "the inputs … 2GB for each task". A
/// factor of 0.4 GB/unit reconciles the three: a mean job of 5 units is
/// 2 GB of data — the recommended GATK input size. Recorded in
/// EXPERIMENTS.md as the one calibrated constant of this reproduction.
pub const GB_PER_SIZE_UNIT: f64 = 0.4;

/// Per-stage scalability factors (Table II's `a_i`, `b_i`, `c_i`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFactors {
    /// Linear coefficient: TU per GB of stage-1 input.
    pub a: f64,
    /// Constant term, TU.
    pub b: f64,
    /// Amdahl parallelisable fraction in `[0, 1]`.
    pub c: f64,
}

impl StageFactors {
    /// Single-threaded execution time at stage-1 input size `d_gb`,
    /// clamped at zero (stage 2's `b = −0.53` extrapolates negative for
    /// tiny inputs).
    #[inline]
    pub fn exec_time(&self, d_gb: f64) -> f64 {
        (self.a * d_gb + self.b).max(0.0)
    }

    /// Threaded execution time: `T(t, d) = c·E(d)/t + (1 − c)·E(d)`.
    #[inline]
    pub fn threaded_time(&self, threads: u32, d_gb: f64) -> f64 {
        assert!(threads >= 1, "at least one thread");
        let e = self.exec_time(d_gb);
        self.c * e / threads as f64 + (1.0 - self.c) * e
    }

    /// Speedup of `t` threads over one.
    pub fn speedup(&self, threads: u32, d_gb: f64) -> f64 {
        let single = self.exec_time(d_gb);
        if single == 0.0 {
            return 1.0;
        }
        single / self.threaded_time(threads, d_gb)
    }

    /// Amdahl ceiling: `1 / (1 − c)`.
    pub fn max_speedup(&self) -> f64 {
        if self.c >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.c)
        }
    }
}

/// Table II, verbatim.
pub const PAPER_STAGE_FACTORS: [StageFactors; N_STAGES] = [
    StageFactors { a: 0.35, b: 5.38, c: 0.89 },
    StageFactors { a: 2.70, b: -0.53, c: 0.02 },
    StageFactors { a: 1.74, b: 3.93, c: 0.69 },
    StageFactors { a: 3.35, b: 0.53, c: 0.79 },
    StageFactors { a: 1.03, b: 17.86, c: 0.91 },
    StageFactors { a: 0.02, b: 0.39, c: 0.25 },
    StageFactors { a: 0.01, b: 5.10, c: 0.02 },
];

/// Whether a stage's output can be sharded for the next stage. Stage 7 is
/// the `VariantsToVCF`-style gather and must see all shards, so sharding
/// is only meaningful for stages 1–6.
pub fn stage_shardable(stage_index: usize) -> bool {
    stage_index < N_STAGES - 1
}

/// The full pipeline model: per-stage factors plus the size calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Factors per stage, index 0 = stage 1.
    pub stages: Vec<StageFactors>,
    /// GB of stage-1 input per job size unit.
    pub gb_per_unit: f64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl PipelineModel {
    /// The paper's model: Table II factors, 0.4 GB per size unit.
    pub fn paper() -> Self {
        PipelineModel { stages: PAPER_STAGE_FACTORS.to_vec(), gb_per_unit: GB_PER_SIZE_UNIT }
    }

    /// A model with custom factors (e.g. learned from the knowledge base).
    pub fn new(stages: Vec<StageFactors>, gb_per_unit: f64) -> Self {
        assert!(!stages.is_empty());
        assert!(gb_per_unit > 0.0);
        PipelineModel { stages, gb_per_unit }
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Converts a job size in abstract units to GB.
    #[inline]
    pub fn units_to_gb(&self, size_units: f64) -> f64 {
        size_units * self.gb_per_unit
    }

    /// Latency of one stage for a job of `size_units`, split into `shards`
    /// pieces each run with `threads` threads (pieces run concurrently, so
    /// stage latency is one piece's threaded time).
    #[inline]
    pub fn stage_latency(&self, stage: usize, size_units: f64, shards: u32, threads: u32) -> f64 {
        assert!(shards >= 1);
        let d = self.units_to_gb(size_units) / shards as f64;
        self.stages[stage].threaded_time(threads, d)
    }

    /// Core·TU consumed by one stage under `(shards, threads)`: each shard
    /// holds `threads` cores for its threaded time.
    pub fn stage_core_tu(&self, stage: usize, size_units: f64, shards: u32, threads: u32) -> f64 {
        shards as f64 * threads as f64 * self.stage_latency(stage, size_units, shards, threads)
    }

    /// Total pipeline latency under a per-stage plan (no queueing).
    pub fn pipeline_latency(&self, size_units: f64, plan: &[(u32, u32)]) -> f64 {
        assert_eq!(plan.len(), self.n_stages(), "plan must cover every stage");
        plan.iter().enumerate().map(|(i, &(s, t))| self.stage_latency(i, size_units, s, t)).sum()
    }

    /// Total core·TU under a per-stage plan.
    pub fn pipeline_core_tu(&self, size_units: f64, plan: &[(u32, u32)]) -> f64 {
        assert_eq!(plan.len(), self.n_stages());
        plan.iter().enumerate().map(|(i, &(s, t))| self.stage_core_tu(i, size_units, s, t)).sum()
    }

    /// Single-threaded, unsharded pipeline latency — the baseline an
    /// unassisted run pays.
    pub fn serial_latency(&self, size_units: f64) -> f64 {
        let d = self.units_to_gb(size_units);
        self.stages.iter().map(|f| f.exec_time(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_ii_verbatim() {
        // Spot-check against the paper.
        assert_eq!(PAPER_STAGE_FACTORS[0], StageFactors { a: 0.35, b: 5.38, c: 0.89 });
        assert_eq!(PAPER_STAGE_FACTORS[4], StageFactors { a: 1.03, b: 17.86, c: 0.91 });
        assert_eq!(PAPER_STAGE_FACTORS[6], StageFactors { a: 0.01, b: 5.10, c: 0.02 });
        assert_eq!(PAPER_STAGE_FACTORS.len(), 7);
    }

    #[test]
    fn exec_time_linear_and_clamped() {
        let s2 = PAPER_STAGE_FACTORS[1];
        assert!((s2.exec_time(5.0) - (2.70 * 5.0 - 0.53)).abs() < 1e-12);
        assert_eq!(s2.exec_time(0.1), 0.0, "negative extrapolation clamps");
    }

    #[test]
    fn threading_follows_amdahl() {
        let s5 = PAPER_STAGE_FACTORS[4];
        let e = s5.exec_time(5.0);
        let t16 = s5.threaded_time(16, 5.0);
        assert!((t16 - (0.91 * e / 16.0 + 0.09 * e)).abs() < 1e-12);
        // Speedup approaches but never exceeds the Amdahl ceiling.
        assert!(s5.speedup(16, 5.0) < s5.max_speedup());
        assert!((s5.max_speedup() - 1.0 / 0.09).abs() < 1e-9);
        // One thread is the identity.
        assert_eq!(s5.threaded_time(1, 5.0), e);
    }

    #[test]
    fn serial_stage_gains_nothing() {
        let s2 = PAPER_STAGE_FACTORS[1]; // c = 0.02
        assert!(s2.speedup(16, 5.0) < 1.02);
    }

    #[test]
    fn sharding_trades_latency_for_b_overhead() {
        let m = PipelineModel::paper();
        // Stage 2 (index 1): a-dominated, negative b → sharding is a
        // near-free latency win.
        let lat1 = m.stage_latency(1, 5.0, 1, 1);
        let lat4 = m.stage_latency(1, 5.0, 4, 1);
        assert!(lat4 < lat1 / 3.0, "sharding must slash stage-2 latency");
        let work1 = m.stage_core_tu(1, 5.0, 1, 1);
        let work4 = m.stage_core_tu(1, 5.0, 4, 1);
        assert!(work4 <= work1, "negative b: sharding does not inflate stage-2 work");

        // Stage 5 (index 4): b-dominated → sharding barely helps latency
        // and multiplies work.
        let lat1 = m.stage_latency(4, 5.0, 1, 1);
        let lat4 = m.stage_latency(4, 5.0, 4, 1);
        assert!(lat4 > 0.8 * lat1, "stage 5 latency is b-bound");
        assert!(m.stage_core_tu(4, 5.0, 4, 1) > 3.0 * m.stage_core_tu(4, 5.0, 1, 1));
    }

    #[test]
    fn pipeline_latency_sums_stages() {
        let m = PipelineModel::paper();
        let plan = [(1u32, 1u32); 7];
        let lat = m.pipeline_latency(5.0, &plan);
        assert!((lat - m.serial_latency(5.0)).abs() < 1e-9);
        // The paper's d=5-unit job = 2 GB: serial ≈ sum of E_i(2).
        let expect: f64 = PAPER_STAGE_FACTORS.iter().map(|f| f.exec_time(2.0)).sum();
        assert!((lat - expect).abs() < 1e-9);
    }

    #[test]
    fn calibration_makes_mean_job_2gb() {
        let m = PipelineModel::paper();
        assert!((m.units_to_gb(5.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn a_good_plan_beats_serial_latency_at_bounded_work() {
        // The economic premise of the whole paper: there exist plans that
        // cut latency by >3x while less than tripling core·TU.
        let m = PipelineModel::paper();
        let size = 5.0;
        // Shard the a-heavy stages (2, 4), thread the c-high ones (1,3,5).
        let plan = [(1, 4), (6, 1), (1, 4), (4, 2), (1, 8), (1, 1), (1, 1)];
        let lat = m.pipeline_latency(size, &plan);
        let serial = m.serial_latency(size);
        assert!(lat < serial / 3.0, "latency {lat} vs serial {serial}");
        let work = m.pipeline_core_tu(size, &plan);
        assert!(work < 3.0 * serial, "work {work} vs serial {serial}");
    }

    #[test]
    fn stage7_not_shardable() {
        assert!(stage_shardable(0));
        assert!(stage_shardable(5));
        assert!(!stage_shardable(6));
    }

    #[test]
    #[should_panic(expected = "cover every stage")]
    fn short_plan_rejected() {
        PipelineModel::paper().pipeline_latency(5.0, &[(1, 1); 3]);
    }

    proptest! {
        /// Threading never makes a stage slower, sharding never makes a
        /// stage's latency worse... (sharding CAN be neutral when b
        /// dominates; it must never increase latency).
        #[test]
        fn prop_levers_never_hurt_latency(
            stage in 0usize..7,
            size in 0.5f64..20.0,
            shards in 1u32..10,
            threads_exp in 0u32..5,
        ) {
            let m = PipelineModel::paper();
            let threads = 1u32 << threads_exp;
            let base = m.stage_latency(stage, size, 1, 1);
            let sharded = m.stage_latency(stage, size, shards, 1);
            let threaded = m.stage_latency(stage, size, 1, threads);
            prop_assert!(sharded <= base + 1e-9);
            prop_assert!(threaded <= base + 1e-9);
        }

        /// Total single-thread work is conserved by sharding up to the
        /// per-shard b overhead: `s·E(d/s) = a·d + s·b` (when no clamping).
        #[test]
        fn prop_shard_work_identity(size in 1.0f64..20.0, shards in 1u32..8, stage in 0usize..7) {
            let m = PipelineModel::paper();
            let f = m.stages[stage];
            let d = m.units_to_gb(size);
            // Skip cases where clamping engages (stage 2 tiny pieces).
            prop_assume!(f.a * d / shards as f64 + f.b > 0.0);
            let total = m.stage_core_tu(stage, size, shards, 1);
            let expect = f.a * d + shards as f64 * f.b;
            prop_assert!((total - expect).abs() < 1e-9);
        }
    }
}
