//! Jobs and stage tasks.
//!
//! A *job* is one user-submitted pipeline run with an input size. Each
//! pipeline stage of a job becomes a [`StageTask`]; the Data Broker may
//! split a stage task into shard-level subtasks (tracked by the platform's
//! scheduler as `(task, shard_index)` pairs).

use scan_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a job within a simulation run.
///
/// A plain `u32` slot index: arrivals assign ids sequentially from zero,
/// so the platform can keep per-job state in a dense `Vec` arena indexed
/// by `JobId.0`. Ids are never reused within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The arena slot this id names.
    #[inline]
    pub fn slot(self) -> usize {
        self.0 as usize
    }
}

/// One submitted pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Input size in abstract units (Table III: mean 5, variance 1).
    pub size_units: f64,
    /// "The number of records of input data supplied" — the reward
    /// function's record count; proportional to size in our model.
    pub records: u64,
    /// Submission instant ("latency measures the time from a task entering
    /// the queue for the first analysis stage").
    pub submitted_at: SimTime,
}

impl Job {
    /// Creates a job. Records are derived from size (1000 records/unit).
    pub fn new(id: JobId, size_units: f64, submitted_at: SimTime) -> Self {
        assert!(size_units > 0.0, "jobs must have positive size");
        Job { id, size_units, records: (size_units * 1000.0).round() as u64, submitted_at }
    }

    /// Latency from submission to `now`.
    pub fn latency(&self, now: SimTime) -> f64 {
        (now - self.submitted_at).as_tu()
    }
}

/// One stage of one job, as queued by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTask {
    /// Owning job.
    pub job: JobId,
    /// 0-based stage index.
    pub stage: usize,
    /// Number of shard subtasks this stage was split into.
    pub shards: u32,
    /// Threads each subtask will use.
    pub threads: u32,
    /// When this stage entered its queue.
    pub enqueued_at: SimTime,
}

impl StageTask {
    /// Cores one subtask occupies.
    pub fn cores_per_subtask(&self) -> u32 {
        self.threads
    }

    /// Total cores the whole stage occupies if all shards run at once.
    pub fn total_cores(&self) -> u32 {
        self.shards * self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_records_scale_with_size() {
        let j = Job::new(JobId(1), 5.0, SimTime::ZERO);
        assert_eq!(j.records, 5000);
        assert_eq!(Job::new(JobId(2), 2.5, SimTime::ZERO).records, 2500);
    }

    #[test]
    fn latency_measured_from_submission() {
        let j = Job::new(JobId(1), 5.0, SimTime::new(10.0));
        assert!((j.latency(SimTime::new(35.5)) - 25.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_rejected() {
        Job::new(JobId(1), 0.0, SimTime::ZERO);
    }

    #[test]
    fn stage_task_core_math() {
        let t = StageTask {
            job: JobId(1),
            stage: 2,
            shards: 4,
            threads: 8,
            enqueued_at: SimTime::ZERO,
        };
        assert_eq!(t.cores_per_subtask(), 8);
        assert_eq!(t.total_cores(), 32);
    }
}
