//! Synthetic offline-profiling traces for knowledge-base bootstrap.
//!
//! §III-A.1: "we profiled GATK performance under different hardware
//! configurations and with different inputs. The datasets include genome
//! inputs of different sizes, ranging from 1GByte to 9GBytes." This module
//! replays that study against the analytic stage models (plus measurement
//! noise) and emits [`ProfileRecord`]s the knowledge base ingests — so the
//! scheduler's estimators run on *learned* coefficients, closing the loop
//! the paper describes.

use crate::gatk::PipelineModel;
use scan_kb::ProfileRecord;
use scan_sim::SimRng;

/// The paper's profiling grid: input sizes 1–9 GB.
pub const PROFILE_SIZES_GB: [f64; 5] = [1.0, 3.0, 5.0, 7.0, 9.0];

/// Thread counts profiled (the instance catalogue).
pub const PROFILE_THREADS: [u32; 5] = [1, 2, 4, 8, 16];

/// Generates a profiling trace for every stage of `model`: each (size,
/// threads) cell is measured `replicates` times with multiplicative
/// Gaussian noise of relative σ `noise`.
pub fn generate_profile_trace(
    model: &PipelineModel,
    application: &str,
    replicates: usize,
    noise: f64,
    rng: &mut SimRng,
) -> Vec<ProfileRecord> {
    assert!(replicates >= 1);
    assert!((0.0..0.5).contains(&noise), "relative noise must be in [0, 0.5)");
    let mut out = Vec::new();
    for (stage_idx, factors) in model.stages.iter().enumerate() {
        for &size_gb in &PROFILE_SIZES_GB {
            for &threads in &PROFILE_THREADS {
                for _ in 0..replicates {
                    let truth = factors.threaded_time(threads, size_gb);
                    let factor = 1.0 + noise * rng.standard_normal();
                    let e_time = (truth * factor.max(0.1)).max(1e-3);
                    out.push(ProfileRecord {
                        application: application.to_string().into(),
                        stage: (stage_idx + 1) as u32,
                        input_gb: size_gb,
                        threads,
                        ram_gb: 4.0,
                        e_time,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatk::PAPER_STAGE_FACTORS;
    use scan_kb::KnowledgeBase;

    #[test]
    fn trace_covers_the_grid() {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(1);
        let trace = generate_profile_trace(&model, "GATK", 2, 0.0, &mut rng);
        assert_eq!(trace.len(), 7 * 5 * 5 * 2);
        assert!(trace.iter().all(|r| r.application == "GATK"));
        assert!(trace.iter().any(|r| r.stage == 7));
        assert!(trace.iter().any(|r| r.threads == 16));
    }

    #[test]
    fn noiseless_trace_reproduces_table_ii_exactly() {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(2);
        let trace = generate_profile_trace(&model, "GATK", 1, 0.0, &mut rng);
        let mut kb = KnowledgeBase::new();
        for r in &trace {
            kb.ingest(r);
        }
        for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
            let m = kb.stage_model("GATK", (i + 1) as u32).expect("model learned");
            assert!((m.a - truth.a).abs() < 1e-6, "stage {} a: {} vs {}", i + 1, m.a, truth.a);
            assert!((m.b - truth.b).abs() < 1e-6, "stage {} b: {} vs {}", i + 1, m.b, truth.b);
            assert!((m.c - truth.c).abs() < 1e-4, "stage {} c: {} vs {}", i + 1, m.c, truth.c);
        }
    }

    #[test]
    fn noisy_trace_recovers_table_ii_approximately() {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(3);
        let trace = generate_profile_trace(&model, "GATK", 5, 0.03, &mut rng);
        let mut kb = KnowledgeBase::new();
        for r in &trace {
            kb.ingest(r);
        }
        for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
            let m = kb.stage_model("GATK", (i + 1) as u32).expect("model learned");
            assert!(
                (m.a - truth.a).abs() < 0.15 * truth.a.abs().max(0.2),
                "stage {} a: {} vs {}",
                i + 1,
                m.a,
                truth.a
            );
            assert!((m.c - truth.c).abs() < 0.1, "stage {} c: {} vs {}", i + 1, m.c, truth.c);
        }
    }

    #[test]
    fn etimes_are_positive() {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(4);
        let trace = generate_profile_trace(&model, "GATK", 3, 0.2, &mut rng);
        assert!(trace.iter().all(|r| r.e_time > 0.0));
    }

    #[test]
    #[should_panic(expected = "relative noise")]
    fn excessive_noise_rejected() {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(5);
        generate_profile_trace(&model, "GATK", 1, 0.9, &mut rng);
    }
}
