//! Resource tiers: classes of cores hireable at a given price.
//!
//! "The cost function consists of tiers, representing a class of resources
//! that can be hired at a given price" (§III-A.2). The paper's evaluation
//! uses two: a capacity-limited private tier (624 cores at 5 CU/TU/core)
//! and an unbounded public tier (20–110 CU/TU/core).

use serde::{Deserialize, Serialize};

/// How a tier's cores are billed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingMode {
    /// Pay-as-you-go: cores cost money from hire to release (public
    /// clouds).
    HiredTime,
    /// Usage-metered: cores cost money only while running tasks — the
    /// paper's private tier, whose cost represents "depreciation of the
    /// owned machines or an internal incentive for fair sharing" (§IV-A).
    BusyTime,
}

/// Identifies a tier within a [`TierCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub usize);

/// One class of hireable resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Human-readable name.
    pub name: String,
    /// Cost in cost units per core per time unit.
    pub cost_per_core_tu: f64,
    /// Total cores available, or `None` for an effectively unbounded tier
    /// (the public cloud).
    pub capacity_cores: Option<u32>,
    /// How this tier's cores are billed.
    pub billing: BillingMode,
}

impl Tier {
    /// The paper's private tier: 624 cores at 5 CU/TU.
    pub fn paper_private() -> Tier {
        Tier {
            name: "private".into(),
            cost_per_core_tu: 5.0,
            capacity_cores: Some(624),
            billing: BillingMode::BusyTime,
        }
    }

    /// The paper's public tier at the given price (Table I varies it over
    /// 20, 50, 80, 110 CU/TU).
    pub fn paper_public(cost_per_core_tu: f64) -> Tier {
        Tier {
            name: "public".into(),
            cost_per_core_tu,
            capacity_cores: None,
            billing: BillingMode::HiredTime,
        }
    }
}

/// An ordered list of tiers, cheapest-preferred by convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierCatalog {
    tiers: Vec<Tier>,
}

impl TierCatalog {
    /// Builds a catalogue; order is preference order for hiring.
    ///
    /// # Panics
    /// Panics on an empty list or non-positive prices.
    pub fn new(tiers: Vec<Tier>) -> Self {
        assert!(!tiers.is_empty(), "at least one tier is required");
        for t in &tiers {
            assert!(
                t.cost_per_core_tu > 0.0 && t.cost_per_core_tu.is_finite(),
                "tier '{}' must have a positive finite price",
                t.name
            );
        }
        TierCatalog { tiers }
    }

    /// The paper's two-tier hybrid at a given public price.
    pub fn paper_hybrid(public_cost: f64) -> Self {
        TierCatalog::new(vec![Tier::paper_private(), Tier::paper_public(public_cost)])
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True if the catalogue is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The tier with the given id.
    pub fn get(&self, id: TierId) -> &Tier {
        &self.tiers[id.0]
    }

    /// Iterates `(TierId, &Tier)` in preference order.
    pub fn iter(&self) -> impl Iterator<Item = (TierId, &Tier)> {
        self.tiers.iter().enumerate().map(|(i, t)| (TierId(i), t))
    }

    /// The cheapest price at which at least one core could ever be hired.
    pub fn min_price(&self) -> f64 {
        self.tiers.iter().map(|t| t.cost_per_core_tu).fold(f64::INFINITY, f64::min)
    }

    /// The price of the most expensive tier (the marginal cost of scaling
    /// once cheaper tiers are exhausted).
    pub fn max_price(&self) -> f64 {
        self.tiers.iter().map(|t| t.cost_per_core_tu).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hybrid_matches_table_iii() {
        let cat = TierCatalog::paper_hybrid(50.0);
        assert_eq!(cat.len(), 2);
        let private = cat.get(TierId(0));
        assert_eq!(private.cost_per_core_tu, 5.0);
        assert_eq!(private.capacity_cores, Some(624));
        let public = cat.get(TierId(1));
        assert_eq!(public.cost_per_core_tu, 50.0);
        assert_eq!(public.capacity_cores, None);
        assert_eq!(cat.min_price(), 5.0);
        assert_eq!(cat.max_price(), 50.0);
    }

    #[test]
    fn iteration_order_is_preference_order() {
        let cat = TierCatalog::paper_hybrid(20.0);
        let names: Vec<&str> = cat.iter().map(|(_, t)| t.name.as_str()).collect();
        assert_eq!(names, vec!["private", "public"]);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_catalog_rejected() {
        TierCatalog::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive finite price")]
    fn free_tier_rejected() {
        TierCatalog::new(vec![Tier {
            name: "free".into(),
            cost_per_core_tu: 0.0,
            capacity_cores: None,
            billing: BillingMode::HiredTime,
        }]);
    }
}
