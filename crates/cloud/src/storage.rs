//! The shared store: the CIFS filesystem + Cassandra database stand-in.
//!
//! §III-B: the prototype used "CIFS for the shared filesystem and Apache
//! Cassandra for the database"; §I motivates SCAN partly by "blocked I/O
//! due to the volume of data that must be fetched". The platform models
//! that staging delay explicitly: each dataset has a size, and moving it
//! to a worker costs `latency + size / bandwidth` time units. The broker's
//! trick of staging data "just before they are needed" shows up as
//! overlapping this delay with queue time.

use scan_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dataset registered in the shared store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Path-like identifier (`/input/fasta/s1.fa` in Fig. 2).
    pub path: String,
    /// Size in GB.
    pub size_gb: f64,
    /// Format tag (FASTQ, BAM, VCF, …) for sharder dispatch.
    pub format: String,
}

/// Transfer-performance model of the shared store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed per-transfer latency, TU.
    pub latency_tu: f64,
    /// Sustained bandwidth, GB per TU.
    pub bandwidth_gb_per_tu: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        // 1 TU = 1 minute: ~6 GB/min sustained (≈100 MB/s NAS), 0.02 TU
        // (~1 s) of protocol latency.
        TransferModel { latency_tu: 0.02, bandwidth_gb_per_tu: 6.0 }
    }
}

impl TransferModel {
    /// Time to stage `size_gb` to or from a worker.
    pub fn transfer_time(&self, size_gb: f64) -> SimDuration {
        assert!(size_gb >= 0.0);
        SimDuration::new(self.latency_tu + size_gb / self.bandwidth_gb_per_tu)
    }
}

/// The shared filesystem/database: dataset registry + transfer model.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    datasets: BTreeMap<String, Dataset>,
    model: TransferModel,
}

impl SharedStore {
    /// An empty store with the default transfer model.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with a custom transfer model.
    pub fn with_model(model: TransferModel) -> Self {
        SharedStore { datasets: BTreeMap::new(), model }
    }

    /// The transfer model.
    pub fn model(&self) -> TransferModel {
        self.model
    }

    /// Registers (or replaces) a dataset. Returns the previous entry.
    pub fn put(&mut self, dataset: Dataset) -> Option<Dataset> {
        self.datasets.insert(dataset.path.clone(), dataset)
    }

    /// Looks up a dataset by path.
    pub fn get(&self, path: &str) -> Option<&Dataset> {
        self.datasets.get(path)
    }

    /// Removes a dataset.
    pub fn remove(&mut self, path: &str) -> Option<Dataset> {
        self.datasets.remove(path)
    }

    /// Registers the shards of a dataset as `<path>.shard<K>` entries and
    /// returns their paths — what the Data Broker does after splitting.
    pub fn put_shards(&mut self, base: &Dataset, shard_sizes: &[f64]) -> Vec<String> {
        shard_sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let path = format!("{}.shard{}", base.path, i);
                self.put(Dataset {
                    path: path.clone(),
                    size_gb: size,
                    format: base.format.clone(),
                });
                path
            })
            .collect()
    }

    /// Staging time for a dataset (zero-size datasets still pay latency).
    ///
    /// # Panics
    /// Panics on an unknown path — staging a dataset that was never
    /// registered is a platform bug.
    pub fn staging_time(&self, path: &str) -> SimDuration {
        let ds = self
            .datasets
            .get(path)
            // scan-lint: allow(no-panic) -- documented `# Panics` contract: unknown path is a bug.
            .unwrap_or_else(|| panic!("staging_time for unregistered dataset '{path}'"));
        self.model.transfer_time(ds.size_gb)
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True when no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Total bytes under management, GB.
    pub fn total_gb(&self) -> f64 {
        self.datasets.values().map(|d| d.size_gb).sum()
    }

    /// Iterates datasets in path order.
    pub fn iter(&self) -> impl Iterator<Item = &Dataset> {
        self.datasets.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(path: &str, gb: f64) -> Dataset {
        Dataset { path: path.into(), size_gb: gb, format: "BAM".into() }
    }

    #[test]
    fn put_get_remove() {
        let mut s = SharedStore::new();
        assert!(s.put(ds("/input/s1.bam", 2.0)).is_none());
        assert_eq!(s.get("/input/s1.bam").unwrap().size_gb, 2.0);
        assert_eq!(s.len(), 1);
        let old = s.put(ds("/input/s1.bam", 3.0)).unwrap();
        assert_eq!(old.size_gb, 2.0);
        assert!(s.remove("/input/s1.bam").is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn transfer_time_formula() {
        let m = TransferModel { latency_tu: 0.1, bandwidth_gb_per_tu: 4.0 };
        assert!((m.transfer_time(2.0).as_tu() - 0.6).abs() < 1e-12);
        assert!((m.transfer_time(0.0).as_tu() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn staging_time_uses_registered_size() {
        let mut s =
            SharedStore::with_model(TransferModel { latency_tu: 0.0, bandwidth_gb_per_tu: 2.0 });
        s.put(ds("/x", 8.0));
        assert!((s.staging_time("/x").as_tu() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unregistered dataset")]
    fn staging_unknown_panics() {
        SharedStore::new().staging_time("/nope");
    }

    #[test]
    fn put_shards_registers_pieces() {
        let mut s = SharedStore::new();
        let base = ds("/input/wgs.fastq", 100.0);
        s.put(base.clone());
        let paths = s.put_shards(&base, &[4.0, 4.0, 2.0]);
        assert_eq!(paths.len(), 3);
        assert_eq!(s.get("/input/wgs.fastq.shard0").unwrap().size_gb, 4.0);
        assert_eq!(s.get("/input/wgs.fastq.shard2").unwrap().size_gb, 2.0);
        assert_eq!(s.len(), 4);
        assert!((s.total_gb() - 110.0).abs() < 1e-12);
    }
}
