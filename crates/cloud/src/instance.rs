//! Instance shapes: how many (virtual) CPU cores a worker VM carries.
//!
//! Table III: "Possible instance sizes (cores): 1, 2, 4, 8, 16".

use serde::{Deserialize, Serialize};

/// The paper's instance catalogue.
pub const INSTANCE_SIZES: [u32; 5] = [1, 2, 4, 8, 16];

/// A validated instance size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceSize(u32);

impl InstanceSize {
    /// Wraps a core count if it is in the catalogue.
    pub fn new(cores: u32) -> Option<Self> {
        INSTANCE_SIZES.contains(&cores).then_some(InstanceSize(cores))
    }

    /// The smallest catalogue size that fits `cores` (e.g. a 5-thread plan
    /// needs an 8-core instance), or the largest size if nothing fits.
    pub fn fitting(cores: u32) -> Self {
        for &s in &INSTANCE_SIZES {
            if s >= cores {
                return InstanceSize(s);
            }
        }
        InstanceSize(*INSTANCE_SIZES.last().expect("catalogue is non-empty"))
    }

    /// Core count.
    pub fn cores(self) -> u32 {
        self.0
    }

    /// All sizes, smallest first.
    pub fn all() -> impl Iterator<Item = InstanceSize> {
        INSTANCE_SIZES.iter().map(|&c| InstanceSize(c))
    }
}

impl std::fmt::Display for InstanceSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-core", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_sizes_valid() {
        for c in INSTANCE_SIZES {
            assert_eq!(InstanceSize::new(c).unwrap().cores(), c);
        }
        assert!(InstanceSize::new(3).is_none());
        assert!(InstanceSize::new(0).is_none());
        assert!(InstanceSize::new(32).is_none());
    }

    #[test]
    fn fitting_rounds_up() {
        assert_eq!(InstanceSize::fitting(1).cores(), 1);
        assert_eq!(InstanceSize::fitting(3).cores(), 4);
        assert_eq!(InstanceSize::fitting(5).cores(), 8);
        assert_eq!(InstanceSize::fitting(9).cores(), 16);
        assert_eq!(InstanceSize::fitting(16).cores(), 16);
        // Oversized demand saturates at the largest shape.
        assert_eq!(InstanceSize::fitting(64).cores(), 16);
    }

    #[test]
    fn all_iterates_in_order() {
        let v: Vec<u32> = InstanceSize::all().map(InstanceSize::cores).collect();
        assert_eq!(v, vec![1, 2, 4, 8, 16]);
    }
}
