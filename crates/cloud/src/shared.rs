//! Shared provider capacity for multi-tenant fleets.
//!
//! A fleet run puts N tenant platforms on *one* provider: the private
//! tier's cores are a single finite pool arbitrated across tenants, and
//! the public tier's on-demand price surges with fleet-wide contention.
//! [`SharedCapacity`] is that arbiter — a small ledger of who holds how
//! many shared private cores and how many public cores the whole fleet
//! has on hire. Each tenant's [`CloudProvider`] holds a
//! [`SharedLease`] (an `Rc<RefCell<…>>` clone; sessions are
//! single-threaded) and consults it on every hire, release and price
//! quote.
//!
//! Single-tenant sessions never attach a lease, so their capacity checks
//! and billing arithmetic are byte-for-byte the pre-fleet code paths.
//!
//! [`CloudProvider`]: crate::CloudProvider

use scan_sim::TenantId;
use std::cell::RefCell;
use std::rc::Rc;

/// Contention-sensitive on-demand pricing for the shared public tier.
///
/// The quoted price is `base × (1 + factor × hired/per_cores)`: the more
/// public cores the fleet holds, the more the next core costs — a linear
/// stand-in for spot-market pressure. The multiplier is sampled at hire
/// time and locked into the VM for its whole life (on-demand instances
/// keep their launch price).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgePricing {
    /// Price increase per `per_cores` public cores on hire fleet-wide.
    pub factor: f64,
    /// Core-count granularity of the surge.
    pub per_cores: f64,
}

impl SurgePricing {
    /// No surge: the public price is flat regardless of contention.
    pub const FLAT: SurgePricing = SurgePricing { factor: 0.0, per_cores: 1.0 };
}

/// The fleet-wide capacity ledger one provider pool shares across
/// tenants.
#[derive(Debug, Clone)]
pub struct SharedCapacity {
    /// Total private cores in the shared pool.
    private_cores: u32,
    /// Private cores currently reserved, per tenant.
    used_by_tenant: Vec<u32>,
    /// Private cores currently reserved, fleet-wide.
    used_total: u32,
    /// High-water mark of `used_total`.
    peak_used: u32,
    /// Public cores currently on hire, fleet-wide (drives the surge).
    public_cores: u32,
    surge: SurgePricing,
}

impl SharedCapacity {
    /// A shared pool of `private_cores` across `tenants` tenants.
    ///
    /// # Panics
    /// Panics if `tenants` is zero.
    pub fn new(private_cores: u32, tenants: usize, surge: SurgePricing) -> Self {
        assert!(tenants > 0, "a shared pool needs at least one tenant");
        SharedCapacity {
            private_cores,
            used_by_tenant: vec![0; tenants],
            used_total: 0,
            peak_used: 0,
            public_cores: 0,
            surge,
        }
    }

    /// Wraps the pool in the handle tenants clone.
    pub fn into_lease(self) -> SharedLease {
        Rc::new(RefCell::new(self))
    }

    /// Total private cores in the pool.
    pub fn private_cores(&self) -> u32 {
        self.private_cores
    }

    /// Private cores not currently reserved by any tenant.
    pub fn free_private(&self) -> u32 {
        self.private_cores - self.used_total
    }

    /// Private cores `tenant` currently holds.
    pub fn used_by(&self, tenant: TenantId) -> u32 {
        self.used_by_tenant[tenant.index()]
    }

    /// Number of tenants sharing the pool.
    pub fn tenants(&self) -> usize {
        self.used_by_tenant.len()
    }

    /// Each tenant's fair share of the private pool (floor division; the
    /// remainder is first-come-first-served headroom).
    pub fn fair_share(&self) -> u32 {
        self.private_cores / self.used_by_tenant.len() as u32
    }

    /// High-water mark of fleet-wide private reservation.
    pub fn peak_used(&self) -> u32 {
        self.peak_used
    }

    /// Public cores the fleet currently has on hire.
    pub fn public_cores(&self) -> u32 {
        self.public_cores
    }

    /// Attempts to reserve `cores` private cores for `tenant`; false if
    /// the pool cannot cover them.
    pub fn try_reserve_private(&mut self, tenant: TenantId, cores: u32) -> bool {
        if self.free_private() < cores {
            return false;
        }
        self.used_by_tenant[tenant.index()] += cores;
        self.used_total += cores;
        self.peak_used = self.peak_used.max(self.used_total);
        true
    }

    /// Returns `cores` private cores from `tenant` to the pool.
    ///
    /// # Panics
    /// Panics if `tenant` does not hold that many cores.
    pub fn release_private(&mut self, tenant: TenantId, cores: u32) {
        assert!(
            self.used_by_tenant[tenant.index()] >= cores,
            "tenant {tenant} releasing {cores} shared cores but holds {}",
            self.used_by_tenant[tenant.index()]
        );
        self.used_by_tenant[tenant.index()] -= cores;
        self.used_total -= cores;
    }

    /// Records `cores` public cores coming on hire fleet-wide.
    pub fn add_public(&mut self, cores: u32) {
        self.public_cores += cores;
    }

    /// Records `cores` public cores leaving hire fleet-wide.
    pub fn remove_public(&mut self, cores: u32) {
        debug_assert!(self.public_cores >= cores);
        self.public_cores = self.public_cores.saturating_sub(cores);
    }

    /// The current on-demand price multiplier for the public tier, given
    /// fleet-wide contention (≥ 1.0; exactly 1.0 under [`SurgePricing::FLAT`]).
    pub fn public_price_multiplier(&self) -> f64 {
        1.0 + self.surge.factor * (self.public_cores as f64 / self.surge.per_cores)
    }
}

/// The handle each tenant's provider holds on the shared pool. Sessions
/// are single-threaded (parallelism lives across fleet replications), so
/// a plain `Rc<RefCell<…>>` suffices.
pub type SharedLease = Rc<RefCell<SharedCapacity>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_is_arbitrated_across_tenants() {
        let mut pool = SharedCapacity::new(10, 2, SurgePricing::FLAT);
        assert!(pool.try_reserve_private(TenantId(0), 6));
        assert!(!pool.try_reserve_private(TenantId(1), 6), "only 4 left");
        assert!(pool.try_reserve_private(TenantId(1), 4));
        assert_eq!(pool.free_private(), 0);
        assert_eq!(pool.used_by(TenantId(0)), 6);
        assert_eq!(pool.peak_used(), 10);
        pool.release_private(TenantId(0), 6);
        assert_eq!(pool.free_private(), 6);
        assert_eq!(pool.peak_used(), 10, "peak is a high-water mark");
    }

    #[test]
    fn fair_share_is_floor_division() {
        let pool = SharedCapacity::new(10, 3, SurgePricing::FLAT);
        assert_eq!(pool.fair_share(), 3);
        assert_eq!(pool.tenants(), 3);
    }

    #[test]
    fn surge_multiplier_tracks_public_cores() {
        let mut pool = SharedCapacity::new(0, 1, SurgePricing { factor: 0.5, per_cores: 100.0 });
        assert_eq!(pool.public_price_multiplier(), 1.0);
        pool.add_public(200);
        assert!((pool.public_price_multiplier() - 2.0).abs() < 1e-12);
        pool.remove_public(100);
        assert!((pool.public_price_multiplier() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut pool = SharedCapacity::new(10, 1, SurgePricing::FLAT);
        pool.release_private(TenantId(0), 1);
    }
}
