//! The worker-VM state machine.
//!
//! A VM is hired from a tier with an instance shape, boots for
//! [`BOOT_PENALTY_TU`] (the paper's 30 s = 0.5 TU), serves tasks, and can be
//! *reshaped* to a different thread count — "CELAR would need to shut it
//! down, adjust the number of VCPUs, and restart it for its new role"
//! (§IV-B) — paying the same penalty again.

use crate::instance::InstanceSize;
use crate::tier::TierId;
use scan_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The 30-second start/reshape penalty in TU (1 TU = 1 minute, so 0.5).
pub const BOOT_PENALTY_TU: f64 = 0.5;

/// The boot/reshape penalty as a duration.
pub fn boot_penalty() -> SimDuration {
    SimDuration::new(BOOT_PENALTY_TU)
}

/// Identifies a VM within a [`crate::provider::CloudProvider`].
///
/// A plain `u32` slot index into the provider's arena: lookups are array
/// indexing, not map searches. Ids are handed out monotonically and
/// **never reused within a session** — a released VM's slot stays
/// tombstoned — so "lowest id" always means "hired earliest", the
/// ordering every deterministic selection rule in the platform relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl VmId {
    /// The arena slot this id names.
    #[inline]
    pub fn slot(self) -> usize {
        self.0 as usize
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmState {
    /// Provisioning/booting until the given instant.
    Booting {
        /// When the VM becomes available.
        ready_at: SimTime,
    },
    /// Up and waiting for work since the given instant.
    Idle {
        /// When the VM last became idle.
        since: SimTime,
    },
    /// Executing a task.
    Busy,
    /// Released; retained only for accounting.
    Stopped {
        /// When the VM was released.
        at: SimTime,
    },
}

/// One hired worker VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Identifier.
    pub id: VmId,
    /// Which tier its cores are billed against.
    pub tier: TierId,
    /// Instance shape.
    pub size: InstanceSize,
    /// Current lifecycle state.
    pub state: VmState,
    /// When the VM was hired (billing starts here).
    pub hired_at: SimTime,
    /// Cumulative busy time (for utilisation metrics).
    pub busy_time: SimDuration,
    /// When the current busy period started, if busy.
    busy_since: Option<SimTime>,
    /// How many times this VM has been reshaped.
    pub reshape_count: u32,
}

impl Vm {
    /// Creates a VM in `Booting` state; it becomes ready after the boot
    /// penalty.
    pub fn hire(id: VmId, tier: TierId, size: InstanceSize, now: SimTime) -> Vm {
        Vm {
            id,
            tier,
            size,
            state: VmState::Booting { ready_at: now + boot_penalty() },
            hired_at: now,
            busy_time: SimDuration::ZERO,
            busy_since: None,
            reshape_count: 0,
        }
    }

    /// True when the VM can accept a task right now.
    pub fn is_idle(&self) -> bool {
        matches!(self.state, VmState::Idle { .. })
    }

    /// True while booting or reshaping.
    pub fn is_booting(&self) -> bool {
        matches!(self.state, VmState::Booting { .. })
    }

    /// True while running a task.
    pub fn is_busy(&self) -> bool {
        matches!(self.state, VmState::Busy)
    }

    /// True once released.
    pub fn is_stopped(&self) -> bool {
        matches!(self.state, VmState::Stopped { .. })
    }

    /// Marks boot completion.
    ///
    /// # Panics
    /// Panics unless the VM was booting and `now` has reached `ready_at`.
    pub fn finish_boot(&mut self, now: SimTime) {
        match self.state {
            VmState::Booting { ready_at } => {
                assert!(now >= ready_at, "finish_boot before ready_at");
                self.state = VmState::Idle { since: now };
            }
            // scan-lint: allow(no-panic) -- documented `# Panics` contract; callers gate on state.
            _ => panic!("finish_boot on a VM that is not booting"),
        }
    }

    /// Assigns a task.
    ///
    /// # Panics
    /// Panics unless the VM is idle.
    pub fn start_task(&mut self, now: SimTime) {
        assert!(self.is_idle(), "start_task on a non-idle VM ({:?})", self.state);
        self.state = VmState::Busy;
        self.busy_since = Some(now);
    }

    /// Completes the current task, returning the VM to idle.
    ///
    /// # Panics
    /// Panics unless the VM is busy.
    pub fn finish_task(&mut self, now: SimTime) {
        assert!(self.is_busy(), "finish_task on a non-busy VM ({:?})", self.state);
        let since = self.busy_since.take().expect("busy VM has busy_since");
        self.busy_time += now - since;
        self.state = VmState::Idle { since: now };
    }

    /// Reshapes an idle VM to a new instance size: re-enters `Booting` for
    /// the penalty period. Returns when it will be ready.
    ///
    /// # Panics
    /// Panics unless the VM is idle.
    pub fn reshape(&mut self, new_size: InstanceSize, now: SimTime) -> SimTime {
        assert!(self.is_idle(), "reshape on a non-idle VM ({:?})", self.state);
        self.size = new_size;
        self.reshape_count += 1;
        let ready_at = now + boot_penalty();
        self.state = VmState::Booting { ready_at };
        ready_at
    }

    /// Releases the VM. Billing stops at `now`.
    ///
    /// # Panics
    /// Panics if the VM is busy (running tasks must finish first) or
    /// already stopped.
    pub fn release(&mut self, now: SimTime) {
        assert!(
            !self.is_busy() && !self.is_stopped(),
            "release on a busy or stopped VM ({:?})",
            self.state
        );
        self.state = VmState::Stopped { at: now };
    }

    /// Span the VM has been hired for, up to `now` (or its release time).
    pub fn hired_span(&self, now: SimTime) -> SimDuration {
        match self.state {
            VmState::Stopped { at } => at - self.hired_at,
            _ => now - self.hired_at,
        }
    }

    /// Busy span up to `now`, including any open busy period.
    pub fn busy_span(&self, now: SimTime) -> SimDuration {
        let mut busy = self.busy_time;
        if let Some(since) = self.busy_since {
            busy += now - since;
        }
        busy
    }

    /// Idle span since the VM last became idle (zero otherwise).
    pub fn idle_span(&self, now: SimTime) -> SimDuration {
        match self.state {
            VmState::Idle { since } => now - since,
            _ => SimDuration::ZERO,
        }
    }

    /// Fraction of hired time spent busy, up to `now`.
    pub fn utilisation(&self, now: SimTime) -> f64 {
        let hired = self.hired_span(now);
        if hired.is_zero() {
            return 0.0;
        }
        self.busy_span(now) / hired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(c: u32) -> InstanceSize {
        InstanceSize::new(c).unwrap()
    }

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(4), t(10.0));
        assert!(vm.is_booting());
        assert_eq!(vm.state, VmState::Booting { ready_at: t(10.5) });
        vm.finish_boot(t(10.5));
        assert!(vm.is_idle());
        vm.start_task(t(11.0));
        assert!(vm.is_busy());
        vm.finish_task(t(14.0));
        assert!(vm.is_idle());
        assert_eq!(vm.busy_time, SimDuration::new(3.0));
        vm.release(t(15.0));
        assert!(vm.is_stopped());
        assert_eq!(vm.hired_span(t(99.0)), SimDuration::new(5.0));
    }

    #[test]
    fn reshape_pays_the_penalty_again() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(4), t(0.0));
        vm.finish_boot(t(0.5));
        let ready = vm.reshape(size(16), t(2.0));
        assert_eq!(ready, t(2.5));
        assert!(vm.is_booting());
        assert_eq!(vm.size.cores(), 16);
        assert_eq!(vm.reshape_count, 1);
        vm.finish_boot(t(2.5));
        assert!(vm.is_idle());
    }

    #[test]
    fn utilisation_accounts_open_busy_period() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(1), t(0.0));
        vm.finish_boot(t(0.5));
        vm.start_task(t(1.0));
        // At t=3: hired 3 TU, busy 2 TU (still busy).
        assert!((vm.utilisation(t(3.0)) - 2.0 / 3.0).abs() < 1e-12);
        vm.finish_task(t(4.0));
        assert!((vm.utilisation(t(4.0)) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn idle_span_tracks_last_idle() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(1), t(0.0));
        assert_eq!(vm.idle_span(t(0.3)), SimDuration::ZERO);
        vm.finish_boot(t(0.5));
        assert_eq!(vm.idle_span(t(2.5)), SimDuration::new(2.0));
        vm.start_task(t(2.5));
        assert_eq!(vm.idle_span(t(3.0)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-idle")]
    fn start_task_while_booting_panics() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(1), t(0.0));
        vm.start_task(t(0.1));
    }

    #[test]
    #[should_panic(expected = "busy or stopped")]
    fn release_while_busy_panics() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(1), t(0.0));
        vm.finish_boot(t(0.5));
        vm.start_task(t(1.0));
        vm.release(t(2.0));
    }

    #[test]
    #[should_panic(expected = "not booting")]
    fn double_finish_boot_panics() {
        let mut vm = Vm::hire(VmId(1), TierId(0), size(1), t(0.0));
        vm.finish_boot(t(0.5));
        vm.finish_boot(t(0.6));
    }
}
