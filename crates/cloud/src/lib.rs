//! # scan-cloud — the simulated hybrid cloud
//!
//! §IV-A: "we setup a hybrid cloud for our evaluation which consist of two
//! tiers: a private tier (624 CPU cores …) and a public tier. Using cores
//! at either tier has a constant cost per core per unit time, with private
//! cores being cheaper than public cores." The paper ran this under
//! (simulated) CELAR middleware; this crate is that substrate:
//!
//! * [`tier`] — resource tiers with per-core-per-TU pricing and optional
//!   capacity limits.
//! * [`instance`] — the instance catalogue (1/2/4/8/16 cores, Table III).
//! * [`vm`] — the VM state machine: booting → idle ⇄ busy → stopped, with
//!   the 30 s (0.5 TU) start/reshape penalty of §IV-B.
//! * [`provider`] — the provisioner: hire/release/reshape against tier
//!   capacity, tracking which cores are in use where.
//! * [`billing`] — the cost ledger: integrates `cores × rate` over each
//!   VM's hired lifetime, queryable mid-run.
//! * [`storage`] — the shared filesystem/database stand-in (CIFS +
//!   Cassandra in the prototype): datasets with simulated staging latency.
//! * [`shared`] — multi-tenant fleet mode: one finite private pool
//!   arbitrated across N tenant providers, with contention-sensitive
//!   surge pricing on the public tier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod instance;
pub mod provider;
pub mod shared;
pub mod storage;
pub mod tier;
pub mod vm;

pub use billing::CostLedger;
pub use instance::{InstanceSize, INSTANCE_SIZES};
pub use provider::{CloudProvider, HireError};
pub use shared::{SharedCapacity, SharedLease, SurgePricing};
pub use storage::SharedStore;
pub use tier::{Tier, TierCatalog, TierId};
pub use vm::{boot_penalty, Vm, VmId, VmState, BOOT_PENALTY_TU};
