//! The provisioner: hiring, releasing and reshaping VMs against tier
//! capacity — the piece of CELAR the SCAN Scheduler "issues scaling
//! commands" to (§III-B).

use crate::instance::InstanceSize;
use crate::shared::SharedLease;
use crate::tier::{BillingMode, TierCatalog, TierId};
use crate::vm::{Vm, VmId, VmState};
use scan_metrics::{CounterId, HistogramId, Metrics};
use scan_sim::{SimDuration, SimTime, TenantId, TraceEvent, Tracer};
use std::fmt;

/// Metric ids the provider records through (present only when a metrics
/// registry is attached; see [`CloudProvider::set_metrics`]).
#[derive(Debug, Clone)]
struct ProviderMeters {
    metrics: Metrics,
    /// `vm_hired_total{tier}`, one id per tier in catalogue order.
    hired: Vec<CounterId>,
    /// `vm_released_total{tier}`, one id per tier in catalogue order.
    released: Vec<CounterId>,
    /// `vm_reshaped_total` (reshapes are private-tier only in practice).
    reshaped: CounterId,
    /// `vm_reshape_penalty_tu`: boot penalty paid per reshape.
    reshape_penalty: HistogramId,
}

/// Why a hire request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HireError {
    /// Every allowed tier is at capacity.
    NoCapacity,
}

impl fmt::Display for HireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HireError::NoCapacity => write!(f, "no tier has capacity for the requested cores"),
        }
    }
}

impl std::error::Error for HireError {}

/// The simulated cloud provider.
///
/// VM state lives in a dense arena indexed by [`VmId`]: slot `i` holds VM
/// `i` for the whole session (released VMs tombstone their slot — ids are
/// never reused), so `vm`/`vm_mut` are a bounds check and a pointer add
/// where they used to be a `BTreeMap` descent. A separate ascending
/// `live` list keeps iteration over the (much smaller) set of live VMs in
/// deterministic id order.
#[derive(Debug, Clone)]
pub struct CloudProvider {
    catalog: TierCatalog,
    /// Arena: slot = `VmId.0`. `None` = released (tombstoned) slot.
    vms: Vec<Option<Vm>>,
    /// Live (not yet released) VM ids, ascending. Hires append (ids are
    /// monotone); releases splice out — live counts are small, so the
    /// memmove beats tree rebalancing.
    live: Vec<VmId>,
    cores_in_use: Vec<u32>, // per tier
    /// Cost already incurred by released VMs (live VMs are integrated on
    /// demand).
    settled_cost: f64,
    /// The same settled cost broken out per tier (for end-of-run
    /// settlement events).
    settled_cost_by_tier: Vec<f64>,
    /// Total core·TU consumed by released VMs, per tier.
    settled_core_tu_by_tier: Vec<f64>,
    /// VMs ever hired (diagnostic).
    hired_total: u64,
    /// Per-VM price captured at hire time (slot-parallel to `vms`). For
    /// a solo provider this is always the catalogue price; under a
    /// shared lease the public tier's surge multiplier is folded in at
    /// hire, and the VM keeps its launch price for life.
    price_per_core_tu: Vec<f64>,
    /// Fleet mode: the shared capacity pool and this provider's tenant
    /// identity within it. `None` for single-tenant sessions, whose
    /// capacity checks and billing are exactly the pre-fleet arithmetic.
    lease: Option<(SharedLease, TenantId)>,
    /// Lifecycle event sink (disabled by default; see [`Tracer`]).
    tracer: Tracer,
    /// Metric ids (absent unless a registry is attached).
    meters: Option<ProviderMeters>,
}

impl CloudProvider {
    /// Creates a provider over a tier catalogue.
    pub fn new(catalog: TierCatalog) -> Self {
        let n = catalog.len();
        CloudProvider {
            catalog,
            vms: Vec::new(),
            live: Vec::new(),
            cores_in_use: vec![0; n],
            settled_cost: 0.0,
            settled_cost_by_tier: vec![0.0; n],
            settled_core_tu_by_tier: vec![0.0; n],
            hired_total: 0,
            price_per_core_tu: Vec::new(),
            lease: None,
            tracer: Tracer::disabled(),
            meters: None,
        }
    }

    /// Puts this provider on a shared capacity pool as `tenant`: hires on
    /// capacity-bounded tiers reserve from the pool (arbitrated across
    /// all leaseholders), and unbounded tiers are priced with the pool's
    /// contention-sensitive surge multiplier at hire time.
    pub fn attach_shared(&mut self, lease: SharedLease, tenant: TenantId) {
        self.lease = Some((lease, tenant));
    }

    /// The tenant identity under the shared lease ([`TenantId::SOLO`]
    /// when unleased).
    pub fn tenant(&self) -> TenantId {
        self.lease.as_ref().map_or(TenantId::SOLO, |(_, t)| *t)
    }

    /// The shared pool this provider draws from, if any.
    pub fn shared(&self) -> Option<&SharedLease> {
        self.lease.as_ref().map(|(l, _)| l)
    }

    /// Routes VM lifecycle events (hire / reshape / release) to `tracer`'s
    /// observers. The provider emits; it never reads the trace.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a metrics registry: the provider registers per-tier
    /// hire/release counters, a reshape counter and the reshape-penalty
    /// histogram, and records into them on every lifecycle transition.
    /// A disabled handle leaves the provider un-instrumented.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        let names: Vec<String> = self.catalog.iter().map(|(_, t)| t.name.clone()).collect();
        let registered = metrics.with_registry(|r| {
            let hired = names
                .iter()
                .map(|n| r.counter("vm_hired_total", "tier", n, "1", "VMs hired, by tier"))
                .collect();
            let released = names
                .iter()
                .map(|n| r.counter("vm_released_total", "tier", n, "1", "VMs released, by tier"))
                .collect();
            let reshaped =
                r.counter("vm_reshaped_total", "", "", "1", "Idle-VM reshape operations");
            let reshape_penalty = r.histogram(
                "vm_reshape_penalty_tu",
                "",
                "",
                "tu",
                "Boot penalty paid per reshape (ready time minus reshape time)",
            );
            (hired, released, reshaped, reshape_penalty)
        });
        if let Some((hired, released, reshaped, reshape_penalty)) = registered {
            self.meters = Some(ProviderMeters {
                metrics: metrics.clone(),
                hired,
                released,
                reshaped,
                reshape_penalty,
            });
        }
    }

    /// The tier catalogue.
    pub fn catalog(&self) -> &TierCatalog {
        &self.catalog
    }

    /// Cores currently allocated on a tier.
    pub fn cores_in_use(&self, tier: TierId) -> u32 {
        self.cores_in_use[tier.0]
    }

    /// Free cores on a tier (`u32::MAX` for unbounded tiers). Under a
    /// shared lease a bounded tier is additionally capped by what is left
    /// in the shared pool, so the answer already reflects other tenants'
    /// reservations.
    pub fn free_cores(&self, tier: TierId) -> u32 {
        match self.catalog.get(tier).capacity_cores {
            Some(cap) => {
                let local = cap.saturating_sub(self.cores_in_use[tier.0]);
                match &self.lease {
                    Some((lease, _)) => local.min(lease.borrow().free_private()),
                    None => local,
                }
            }
            None => u32::MAX,
        }
    }

    /// Whether a hire of `size` could succeed on `tier` right now.
    pub fn has_capacity(&self, tier: TierId, size: InstanceSize) -> bool {
        self.free_cores(tier) >= size.cores()
    }

    /// The cheapest tier (in catalogue preference order) that can host
    /// `size` right now.
    pub fn cheapest_available_tier(&self, size: InstanceSize) -> Option<TierId> {
        self.catalog.iter().map(|(id, _)| id).find(|&id| self.has_capacity(id, size))
    }

    /// Hires a VM of `size` on the preferred tier (private first); it
    /// starts booting at `now`. Returns the new VM's id and ready time.
    pub fn hire(&mut self, size: InstanceSize, now: SimTime) -> Result<(VmId, SimTime), HireError> {
        let tier = self.cheapest_available_tier(size).ok_or(HireError::NoCapacity)?;
        self.hire_on(tier, size, now)
    }

    /// Hires on a specific tier.
    pub fn hire_on(
        &mut self,
        tier: TierId,
        size: InstanceSize,
        now: SimTime,
    ) -> Result<(VmId, SimTime), HireError> {
        if !self.has_capacity(tier, size) {
            return Err(HireError::NoCapacity);
        }
        let bounded = self.catalog.get(tier).capacity_cores.is_some();
        let base_price = self.catalog.get(tier).cost_per_core_tu;
        let price = match &self.lease {
            Some((lease, tenant)) => {
                let mut pool = lease.borrow_mut();
                if bounded {
                    if !pool.try_reserve_private(*tenant, size.cores()) {
                        return Err(HireError::NoCapacity);
                    }
                    base_price
                } else {
                    // Lock the contention-priced launch rate in before
                    // this hire raises the pressure.
                    let quoted = base_price * pool.public_price_multiplier();
                    pool.add_public(size.cores());
                    quoted
                }
            }
            None => base_price,
        };
        let id = VmId(self.vms.len() as u32);
        let vm = Vm::hire(id, tier, size, now);
        let ready_at = match vm.state {
            VmState::Booting { ready_at } => ready_at,
            _ => unreachable!("freshly hired VMs boot"),
        };
        self.cores_in_use[tier.0] += size.cores();
        self.hired_total += 1;
        self.vms.push(Some(vm));
        self.price_per_core_tu.push(price);
        self.live.push(id);
        self.tracer.emit(
            now,
            TraceEvent::VmHired { vm: id.0 as u64, tier: tier.0 as u32, cores: size.cores() },
        );
        if let Some(m) = &self.meters {
            m.metrics.counter_add(m.hired[tier.0], 1);
        }
        Ok((id, ready_at))
    }

    /// Releases a VM: its cores return to the tier and its cost is
    /// settled.
    ///
    /// # Panics
    /// Panics on an unknown id or a busy VM.
    pub fn release(&mut self, id: VmId, now: SimTime) {
        let mut vm = self.vms[id.slot()].take().expect("release of unknown VM");
        vm.release(now);
        let cores = vm.size.cores();
        let tier = vm.tier;
        let span = vm.hired_span(now);
        let t = self.catalog.get(tier);
        let billed = match t.billing {
            BillingMode::HiredTime => span,
            BillingMode::BusyTime => vm.busy_span(now),
        };
        let cost = cores as f64 * self.price_per_core_tu[id.slot()] * billed.as_tu();
        self.settled_cost += cost;
        self.settled_cost_by_tier[tier.0] += cost;
        self.settled_core_tu_by_tier[tier.0] += cores as f64 * span.as_tu();
        self.cores_in_use[tier.0] -= cores;
        if let Some((lease, tenant)) = &self.lease {
            let mut pool = lease.borrow_mut();
            if t.capacity_cores.is_some() {
                pool.release_private(*tenant, cores);
            } else {
                pool.remove_public(cores);
            }
        }
        let pos = self.live.binary_search(&id).expect("released VM was live");
        self.live.remove(pos);
        self.tracer
            .emit(now, TraceEvent::VmReleased { vm: id.0 as u64, tier: tier.0 as u32, cores });
        if let Some(m) = &self.meters {
            m.metrics.counter_add(m.released[tier.0], 1);
        }
    }

    /// Reshapes an idle VM to `new_size` (paying the boot penalty).
    /// Capacity accounting moves with the size change. Returns the ready
    /// time, or `Err` if the tier cannot absorb a size increase.
    pub fn reshape(
        &mut self,
        id: VmId,
        new_size: InstanceSize,
        now: SimTime,
    ) -> Result<SimTime, HireError> {
        let vm = self.vms[id.slot()].as_mut().expect("reshape of unknown VM");
        let old = vm.size.cores();
        let new = new_size.cores();
        let tier = vm.tier;
        let bounded = self.catalog.get(tier).capacity_cores.is_some();
        if new > old {
            let extra = new - old;
            let free = match self.catalog.get(tier).capacity_cores {
                Some(cap) => cap.saturating_sub(self.cores_in_use[tier.0]),
                None => u32::MAX,
            };
            if free < extra {
                return Err(HireError::NoCapacity);
            }
            if let Some((lease, tenant)) = &self.lease {
                if bounded && !lease.borrow_mut().try_reserve_private(*tenant, extra) {
                    return Err(HireError::NoCapacity);
                }
            }
        } else if new < old {
            if let Some((lease, tenant)) = &self.lease {
                if bounded {
                    lease.borrow_mut().release_private(*tenant, old - new);
                }
            }
        }
        let ready = vm.reshape(new_size, now);
        self.cores_in_use[tier.0] = self.cores_in_use[tier.0] + new - old;
        self.tracer.emit(
            now,
            TraceEvent::VmReshaped {
                vm: id.0 as u64,
                tier: tier.0 as u32,
                cores_from: old,
                cores_to: new,
            },
        );
        if let Some(m) = &self.meters {
            m.metrics.counter_add(m.reshaped, 1);
            m.metrics.record(m.reshape_penalty, (ready - now).as_tu());
        }
        Ok(ready)
    }

    /// Access a VM. Released (tombstoned) ids return `None`.
    #[inline]
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(id.slot())?.as_ref()
    }

    /// Mutable access to a VM (to drive its task lifecycle).
    #[inline]
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(id.slot())?.as_mut()
    }

    /// Iterates over live VMs in id order (deterministic).
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.live.iter().map(|id| self.vms[id.slot()].as_ref().expect("live VM present"))
    }

    /// Number of live (not yet released) VMs.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total cost incurred up to `now`: settled cost of released VMs plus
    /// the running cost of live ones. This is the paper's "cost function
    /// … maps the number of machines currently active and their
    /// configuration to the cost per unit time of keeping them running",
    /// integrated over time.
    pub fn total_cost(&self, now: SimTime) -> f64 {
        let live: f64 = self
            .vms()
            .map(|vm| {
                let t = self.catalog.get(vm.tier);
                let billed = match t.billing {
                    BillingMode::HiredTime => vm.hired_span(now),
                    BillingMode::BusyTime => vm.busy_span(now),
                };
                vm.size.cores() as f64 * self.price_per_core_tu[vm.id.slot()] * billed.as_tu()
            })
            .sum();
        self.settled_cost + live
    }

    /// Cost incurred on one tier up to `now` (live + settled). Summing
    /// this over tiers equals [`CloudProvider::total_cost`] up to f64
    /// addition order.
    pub fn cost_on_tier(&self, tier: TierId, now: SimTime) -> f64 {
        let live: f64 = self
            .vms()
            .filter(|vm| vm.tier == tier)
            .map(|vm| {
                let t = self.catalog.get(vm.tier);
                let billed = match t.billing {
                    BillingMode::HiredTime => vm.hired_span(now),
                    BillingMode::BusyTime => vm.busy_span(now),
                };
                vm.size.cores() as f64 * self.price_per_core_tu[vm.id.slot()] * billed.as_tu()
            })
            .sum();
        self.settled_cost_by_tier[tier.0] + live
    }

    /// Total core·TU consumed up to `now` (live + settled).
    pub fn total_core_tu(&self, now: SimTime) -> f64 {
        (0..self.catalog.len()).map(|i| self.core_tu_on_tier(TierId(i), now)).sum()
    }

    /// Core·TU consumed on one tier up to `now` (live + settled).
    pub fn core_tu_on_tier(&self, tier: TierId, now: SimTime) -> f64 {
        let live: f64 = self
            .vms()
            .filter(|vm| vm.tier == tier)
            .map(|vm| vm.size.cores() as f64 * vm.hired_span(now).as_tu())
            .sum();
        self.settled_core_tu_by_tier[tier.0] + live
    }

    /// Total VMs ever hired (diagnostic).
    pub fn hired_total(&self) -> u64 {
        self.hired_total
    }

    /// Current cost per TU of keeping all live VMs running.
    pub fn burn_rate(&self) -> f64 {
        self.vms().map(|vm| vm.size.cores() as f64 * self.price_per_core_tu[vm.id.slot()]).sum()
    }

    /// The price a core on `tier` would be billed at if hired *now*:
    /// the catalogue rate, surge-adjusted for fleet contention when a
    /// shared lease is attached. Scaling policies price Eq. 1 with this.
    pub fn quoted_price(&self, tier: TierId) -> f64 {
        let base = self.catalog.get(tier).cost_per_core_tu;
        match &self.lease {
            Some((lease, _)) if self.catalog.get(tier).capacity_cores.is_none() => {
                base * lease.borrow().public_price_multiplier()
            }
            _ => base,
        }
    }

    /// Idle live VMs whose idle span at `now` is at least `min_idle`,
    /// in id order — candidates for release by the scaling policy.
    /// (`live` is kept ascending, so no sort is needed.)
    pub fn idle_candidates(&self, now: SimTime, min_idle: SimDuration) -> Vec<VmId> {
        self.vms()
            .filter(|vm| vm.is_idle() && vm.idle_span(now) >= min_idle)
            .map(|vm| vm.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierCatalog;

    fn provider() -> CloudProvider {
        CloudProvider::new(TierCatalog::paper_hybrid(50.0))
    }

    fn sz(c: u32) -> InstanceSize {
        InstanceSize::new(c).unwrap()
    }

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn hire_prefers_private_until_full() {
        let mut p = provider();
        // 39 × 16 = 624 cores fill the private tier exactly.
        for _ in 0..39 {
            let (id, _) = p.hire(sz(16), t(0.0)).unwrap();
            assert_eq!(p.vm(id).unwrap().tier, TierId(0));
        }
        assert_eq!(p.cores_in_use(TierId(0)), 624);
        assert_eq!(p.free_cores(TierId(0)), 0);
        // The 40th lands on the public tier.
        let (id, _) = p.hire(sz(16), t(0.0)).unwrap();
        assert_eq!(p.vm(id).unwrap().tier, TierId(1));
    }

    #[test]
    fn private_only_catalog_can_exhaust() {
        let mut p = CloudProvider::new(TierCatalog::new(vec![crate::tier::Tier::paper_private()]));
        for _ in 0..39 {
            p.hire(sz(16), t(0.0)).unwrap();
        }
        assert_eq!(p.hire(sz(1), t(0.0)), Err(HireError::NoCapacity));
    }

    #[test]
    fn release_returns_cores_and_settles_cost() {
        let mut p = provider();
        let (id, ready) = p.hire(sz(8), t(0.0)).unwrap();
        assert_eq!(ready, t(0.5));
        assert_eq!(p.cores_in_use(TierId(0)), 8);
        // Run a task for 1 TU: the private tier bills busy time only.
        p.vm_mut(id).unwrap().finish_boot(ready);
        p.vm_mut(id).unwrap().start_task(t(1.0));
        p.vm_mut(id).unwrap().finish_task(t(2.0));
        p.release(id, t(2.0));
        assert_eq!(p.cores_in_use(TierId(0)), 0);
        assert_eq!(p.live_count(), 0);
        // 8 cores × 5 CU × 1 busy TU = 40.
        assert!((p.total_cost(t(10.0)) - 40.0).abs() < 1e-9);
        // Core·TU accounting still reports the hired span (2 TU × 8).
        assert!((p.total_core_tu(t(10.0)) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn live_cost_integrates_continuously() {
        let mut p = provider();
        let (id, ready) = p.hire(sz(4), t(0.0)).unwrap();
        // Busy-billed tier: nothing accrues while idle…
        assert_eq!(p.total_cost(t(3.0)), 0.0);
        // …and an open busy period accrues continuously.
        p.vm_mut(id).unwrap().finish_boot(ready);
        p.vm_mut(id).unwrap().start_task(t(1.0));
        // 4 cores × 5 CU × 2 busy TU = 40.
        assert!((p.total_cost(t(3.0)) - 40.0).abs() < 1e-9);
        assert!((p.burn_rate() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn public_tier_bills_hired_time() {
        let mut p = provider();
        // Fill private, then hire public.
        for _ in 0..39 {
            p.hire(sz(16), t(0.0)).unwrap();
        }
        let (pub_id, _) = p.hire(sz(1), t(0.0)).unwrap();
        assert_eq!(p.vm(pub_id).unwrap().tier, TierId(1));
        // Private VMs are all idle (busy-billed → free); the public VM
        // bills from hire: 1 core × 50 CU × 1 TU.
        let cost = p.total_cost(t(1.0));
        assert!((cost - 50.0).abs() < 1e-6, "{cost}");
    }

    #[test]
    fn per_tier_costs_sum_to_total() {
        let mut p = provider();
        // Fill private, spill one onto public, settle one of each.
        for _ in 0..39 {
            let (id, r) = p.hire(sz(16), t(0.0)).unwrap();
            p.vm_mut(id).unwrap().finish_boot(r);
        }
        let (pub_id, _) = p.hire(sz(4), t(0.0)).unwrap();
        assert_eq!(p.vm(pub_id).unwrap().tier, TierId(1));
        let first = VmId(0);
        p.vm_mut(first).unwrap().start_task(t(1.0));
        p.vm_mut(first).unwrap().finish_task(t(2.0));
        p.release(first, t(2.0));
        p.release(pub_id, t(3.0));
        let now = t(5.0);
        let by_tier = p.cost_on_tier(TierId(0), now) + p.cost_on_tier(TierId(1), now);
        assert!((by_tier - p.total_cost(now)).abs() < 1e-9, "{by_tier}");
        // Private released VM billed busy time: 16 cores × 5 CU × 1 TU.
        assert!((p.cost_on_tier(TierId(0), now) - 80.0).abs() < 1e-9);
        // Public released VM billed hired time: 4 cores × 50 CU × 3 TU.
        assert!((p.cost_on_tier(TierId(1), now) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn reshape_adjusts_capacity_accounting() {
        let mut p = provider();
        let (id, ready) = p.hire(sz(4), t(0.0)).unwrap();
        p.vm_mut(id).unwrap().finish_boot(ready);
        let ready2 = p.reshape(id, sz(16), t(1.0)).unwrap();
        assert_eq!(ready2, t(1.5));
        assert_eq!(p.cores_in_use(TierId(0)), 16);
        p.vm_mut(id).unwrap().finish_boot(ready2);
        // Shrink back.
        let _ = p.reshape(id, sz(1), t(2.0)).unwrap();
        assert_eq!(p.cores_in_use(TierId(0)), 1);
    }

    #[test]
    fn reshape_respects_capacity() {
        let mut p = CloudProvider::new(TierCatalog::new(vec![crate::tier::Tier {
            name: "tiny".into(),
            cost_per_core_tu: 1.0,
            capacity_cores: Some(8),
            billing: crate::tier::BillingMode::HiredTime,
        }]));
        let (id, ready) = p.hire(sz(8), t(0.0)).unwrap();
        p.vm_mut(id).unwrap().finish_boot(ready);
        assert_eq!(p.reshape(id, sz(16), t(1.0)), Err(HireError::NoCapacity));
        // Unchanged on failure.
        assert_eq!(p.vm(id).unwrap().size.cores(), 8);
        assert_eq!(p.cores_in_use(TierId(0)), 8);
    }

    #[test]
    fn idle_candidates_filter_by_span() {
        let mut p = provider();
        let (a, ra) = p.hire(sz(1), t(0.0)).unwrap();
        let (b, rb) = p.hire(sz(1), t(0.0)).unwrap();
        p.vm_mut(a).unwrap().finish_boot(ra);
        p.vm_mut(b).unwrap().finish_boot(rb);
        p.vm_mut(b).unwrap().start_task(t(1.0));
        // At t=3, a has been idle 2.5 TU; b is busy.
        let c = p.idle_candidates(t(3.0), SimDuration::new(2.0));
        assert_eq!(c, vec![a]);
        let none = p.idle_candidates(t(3.0), SimDuration::new(3.0));
        assert!(none.is_empty());
    }

    #[test]
    fn leased_providers_contend_for_the_shared_pool() {
        use crate::shared::{SharedCapacity, SurgePricing};
        use scan_sim::TenantId;
        // 32 shared private cores across two tenants, each with a local
        // catalogue that could take far more.
        let lease = SharedCapacity::new(32, 2, SurgePricing::FLAT).into_lease();
        let mut a = provider();
        let mut b = provider();
        a.attach_shared(lease.clone(), TenantId(0));
        b.attach_shared(lease.clone(), TenantId(1));
        let (id, _) = a.hire_on(TierId(0), sz(16), t(0.0)).unwrap();
        b.hire_on(TierId(0), sz(16), t(0.0)).unwrap();
        // The pool is exhausted even though each local catalogue has
        // 624-core headroom.
        assert_eq!(a.free_cores(TierId(0)), 0);
        assert!(!b.has_capacity(TierId(0), sz(1)));
        assert_eq!(b.hire_on(TierId(0), sz(1), t(0.0)), Err(HireError::NoCapacity));
        assert_eq!(lease.borrow().peak_used(), 32);
        // Releasing returns the cores to *both* tenants.
        a.release(id, t(1.0));
        assert!(b.has_capacity(TierId(0), sz(16)));
        assert_eq!(lease.borrow().used_by(TenantId(0)), 0);
    }

    #[test]
    fn surge_pricing_locks_the_launch_rate_per_vm() {
        use crate::shared::{SharedCapacity, SurgePricing};
        use scan_sim::TenantId;
        // No shared private cores: every hire spills to the public tier,
        // whose price doubles per 16 fleet-wide cores on hire.
        let lease =
            SharedCapacity::new(0, 1, SurgePricing { factor: 1.0, per_cores: 16.0 }).into_lease();
        let mut p = provider();
        p.attach_shared(lease.clone(), TenantId(0));
        assert_eq!(p.quoted_price(TierId(1)), 50.0, "no contention yet");
        let (first, _) = p.hire_on(TierId(1), sz(16), t(0.0)).unwrap();
        // The second hire is quoted at 2× while the first keeps 1×.
        assert!((p.quoted_price(TierId(1)) - 100.0).abs() < 1e-9);
        let (_second, _) = p.hire_on(TierId(1), sz(16), t(0.0)).unwrap();
        // Both billed HiredTime for 1 TU: 16·50·1 + 16·100·1.
        let cost = p.total_cost(t(1.0));
        assert!((cost - (800.0 + 1600.0)).abs() < 1e-6, "{cost}");
        // Releasing the first VM drops contention; its settled cost used
        // its launch price, not today's quote.
        p.release(first, t(1.0));
        assert!((p.quoted_price(TierId(1)) - 100.0).abs() < 1e-9);
        // Private quotes never surge.
        assert_eq!(p.quoted_price(TierId(0)), 5.0);
    }

    #[test]
    fn unleased_provider_quotes_catalogue_prices() {
        let p = provider();
        assert_eq!(p.quoted_price(TierId(0)), 5.0);
        assert_eq!(p.quoted_price(TierId(1)), 50.0);
        assert_eq!(p.tenant(), scan_sim::TenantId::SOLO);
        assert!(p.shared().is_none());
    }

    #[test]
    fn vms_iteration_is_deterministic() {
        let mut p = provider();
        let mut expect = Vec::new();
        for _ in 0..10 {
            expect.push(p.hire(sz(1), t(0.0)).unwrap().0);
        }
        let got: Vec<VmId> = p.vms().map(|v| v.id).collect();
        assert_eq!(got, expect);
    }
}
