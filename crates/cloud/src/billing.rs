//! Standalone cost ledger for experiment-level accounting.
//!
//! [`crate::provider::CloudProvider`] integrates infrastructure cost; the
//! ledger here attributes cost and reward to *pipeline runs* so the
//! platform can report the paper's headline metrics: mean profit per
//! pipeline run (Fig. 4) and reward-to-cost ratio (Fig. 5).

use serde::{Deserialize, Serialize};

/// Accumulates rewards and costs over a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostLedger {
    total_reward: f64,
    total_cost: f64,
    completed_runs: u64,
    /// Reward broken out per completed run (for distributional metrics).
    run_rewards: Vec<f64>,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed pipeline run and its reward.
    pub fn record_run(&mut self, reward: f64) {
        assert!(reward.is_finite(), "reward must be finite");
        self.total_reward += reward;
        self.completed_runs += 1;
        self.run_rewards.push(reward);
    }

    /// Sets the total infrastructure cost (taken from the provider at the
    /// end of the run).
    pub fn settle_cost(&mut self, cost: f64) {
        assert!(cost.is_finite() && cost >= 0.0, "cost must be finite and non-negative");
        self.total_cost = cost;
    }

    /// Total reward earned.
    pub fn total_reward(&self) -> f64 {
        self.total_reward
    }

    /// Total infrastructure cost.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Completed pipeline runs.
    pub fn completed_runs(&self) -> u64 {
        self.completed_runs
    }

    /// Total profit: reward − cost. The quantity the scheduler maximises
    /// ("Tasks are scheduled by a 'reward' algorithm with the aim to
    /// maximise profit").
    pub fn profit(&self) -> f64 {
        self.total_reward - self.total_cost
    }

    /// Mean profit per completed pipeline run — Fig. 4's y-axis.
    pub fn profit_per_run(&self) -> f64 {
        if self.completed_runs == 0 {
            0.0
        } else {
            self.profit() / self.completed_runs as f64
        }
    }

    /// Reward-to-cost ratio — Fig. 5's y-axis (0 when cost is 0).
    pub fn reward_to_cost(&self) -> f64 {
        if self.total_cost <= 0.0 {
            0.0
        } else {
            self.total_reward / self.total_cost
        }
    }

    /// Per-run rewards (in completion order).
    pub fn run_rewards(&self) -> &[f64] {
        &self.run_rewards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profit_arithmetic() {
        let mut l = CostLedger::new();
        l.record_run(100.0);
        l.record_run(250.0);
        l.record_run(-30.0); // late job, negative reward
        l.settle_cost(200.0);
        assert_eq!(l.completed_runs(), 3);
        assert!((l.total_reward() - 320.0).abs() < 1e-12);
        assert!((l.profit() - 120.0).abs() < 1e-12);
        assert!((l.profit_per_run() - 40.0).abs() < 1e-12);
        assert!((l.reward_to_cost() - 1.6).abs() < 1e-12);
        assert_eq!(l.run_rewards(), &[100.0, 250.0, -30.0]);
    }

    #[test]
    fn empty_ledger_is_safe() {
        let l = CostLedger::new();
        assert_eq!(l.profit_per_run(), 0.0);
        assert_eq!(l.reward_to_cost(), 0.0);
        assert_eq!(l.profit(), 0.0);
    }

    #[test]
    fn settle_cost_replaces() {
        let mut l = CostLedger::new();
        l.settle_cost(10.0);
        l.settle_cost(25.0);
        assert_eq!(l.total_cost(), 25.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_reward_rejected() {
        CostLedger::new().record_run(f64::NAN);
    }
}
