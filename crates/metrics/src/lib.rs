//! # scan-metrics
//!
//! Zero-alloc-on-hot-path metrics for the SCAN platform: typed counters,
//! gauges, log2-bucket histograms, and sim-time-windowed series, with
//! JSONL and Prometheus text exporters written at session end.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is (almost) free.** Subsystems hold a [`Metrics`] handle
//!    that is `None` inside unless the run asked for metrics; every hot-path
//!    update is a branch on that option. The overhead guard in
//!    `benches/metrics.rs` keeps this honest.
//! 2. **No allocation per event.** Ids are indices into dense vecs,
//!    histograms are fixed arrays, series append to a `Vec` only at window
//!    boundaries (amortised, a handful per session).
//! 3. **Deterministic.** Export bytes are a pure function of registry
//!    contents; registries merge in fixed repetition order, so snapshots
//!    are byte-identical across `RAYON_NUM_THREADS` — the same guarantee
//!    the trace/observer layer gives.
//!
//! The crate is dependency-free and knows nothing about the simulator:
//! time is raw `f64` TU, and the platform crates do the wiring.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod series;

use std::cell::RefCell;
use std::rc::Rc;

pub use export::{write_jsonl, write_prometheus};
pub use hist::{Log2Histogram, N_BUCKETS};
pub use registry::{CounterId, GaugeId, HistogramId, MetricMeta, Registry, SeriesId};
pub use series::{SeriesKind, WindowedSeries};

/// Cheap cloneable handle to a shared [`Registry`], or a no-op when
/// metrics are disabled (the default).
///
/// Subsystems store one of these plus the ids they registered; every
/// update method is a no-op (one branch) on a disabled handle, so the
/// instrumented code path costs nearly nothing when metrics are off.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Metrics {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// An enabled handle wrapping a fresh registry with `window_tu`-wide
    /// series windows.
    pub fn enabled(window_tu: f64) -> Self {
        Metrics { inner: Some(Rc::new(RefCell::new(Registry::new(window_tu)))) }
    }

    /// Whether updates through this handle reach a registry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` against the registry if enabled (use for registration at
    /// wiring time; hot paths should go through the typed update methods).
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> Option<T> {
        self.inner.as_ref().map(|r| f(&mut r.borrow_mut()))
    }

    /// Adds to a counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&self, id: CounterId, n: u64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().counter_add(id, n);
        }
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, v: f64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().gauge_set(id, v);
        }
    }

    /// Records a histogram sample (no-op when disabled).
    #[inline]
    pub fn record(&self, id: HistogramId, v: f64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().record(id, v);
        }
    }

    /// Samples a time-weighted-mean series (no-op when disabled).
    #[inline]
    pub fn sample(&self, id: SeriesId, at_tu: f64, v: f64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().sample(id, at_tu, v);
        }
    }

    /// Adds a delta to a rate series (no-op when disabled).
    #[inline]
    pub fn rate_add(&self, id: SeriesId, at_tu: f64, delta: f64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().rate_add(id, at_tu, delta);
        }
    }

    /// Closes every series at the horizon `end_tu` (no-op when disabled).
    pub fn finish_windows(&self, end_tu: f64) {
        if let Some(r) = &self.inner {
            r.borrow_mut().finish(end_tu);
        }
    }

    /// Unwraps the registry. Returns `None` if disabled or if other
    /// handles are still alive (drop the subsystems first).
    pub fn into_registry(self) -> Option<Registry> {
        let rc = self.inner?;
        Rc::try_unwrap(rc).ok().map(|cell| cell.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_no_op_everywhere() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        // Ids never came from a registry, but disabled updates must not
        // touch (or need) one.
        m.counter_add(CounterId(0), 1);
        m.record(HistogramId(7), 1.0);
        m.sample(SeriesId(3), 1.0, 1.0);
        m.rate_add(SeriesId(3), 1.0, 1.0);
        m.finish_windows(10.0);
        assert!(m.with_registry(|_| ()).is_none());
        assert!(m.into_registry().is_none());
    }

    #[test]
    fn enabled_handle_shares_one_registry_across_clones() {
        let m = Metrics::enabled(5.0);
        let c = m.with_registry(|r| r.counter("jobs", "", "", "1", "jobs")).unwrap();
        let m2 = m.clone();
        m.counter_add(c, 1);
        m2.counter_add(c, 2);
        drop(m2);
        let reg = m.into_registry().expect("sole handle unwraps");
        assert_eq!(reg.counters()[0].1, 3);
    }

    #[test]
    fn into_registry_refuses_while_clones_are_live() {
        let m = Metrics::enabled(5.0);
        let m2 = m.clone();
        assert!(m.into_registry().is_none());
        drop(m2);
    }
}
