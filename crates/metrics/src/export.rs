//! Exporters: JSONL snapshots and Prometheus text exposition.
//!
//! Both walk the registry in registration order and format floats with
//! Rust's shortest-roundtrip `Display`, so the bytes are a pure function
//! of the registry contents — the foundation of the thread-count
//! determinism guarantee.

use std::io::{self, Write};

use crate::hist::Log2Histogram;
use crate::registry::{MetricMeta, Registry};

/// Writes the registry as JSONL: one self-describing object per metric
/// instance, in registration order.
pub fn write_jsonl<W: Write>(reg: &Registry, mut w: W) -> io::Result<()> {
    let mut line = String::with_capacity(256);
    for (m, v) in reg.counters() {
        line.clear();
        open(&mut line, m, "counter");
        line.push_str(",\"value\":");
        push_u64(&mut line, *v);
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for (m, v) in reg.gauges() {
        line.clear();
        open(&mut line, m, "gauge");
        line.push_str(",\"value\":");
        push_f64(&mut line, *v);
        line.push('}');
        writeln!(w, "{line}")?;
    }
    for (m, h) in reg.histograms() {
        line.clear();
        open(&mut line, m, "histogram");
        line.push_str(",\"count\":");
        push_u64(&mut line, h.count());
        line.push_str(",\"sum\":");
        push_f64(&mut line, h.sum());
        line.push_str(",\"buckets\":[");
        let mut first = true;
        for (le, n) in h.nonzero() {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str("{\"le\":");
            push_f64(&mut line, le);
            line.push_str(",\"n\":");
            push_u64(&mut line, n);
            line.push('}');
        }
        line.push_str("]}");
        writeln!(w, "{line}")?;
    }
    for (m, s) in reg.series_entries() {
        line.clear();
        open(&mut line, m, "series");
        line.push_str(",\"kind\":\"");
        line.push_str(s.kind().name());
        line.push_str("\",\"window_tu\":");
        push_f64(&mut line, s.window_tu());
        line.push_str(",\"points\":[");
        for (i, v) in s.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_f64(&mut line, *v);
        }
        line.push_str("]}");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes the registry in Prometheus text exposition format (version
/// 0.0.4). Histograms get cumulative `le` buckets plus `+Inf`, `_sum`
/// and `_count`; series are flattened to a `<family>_mean` gauge holding
/// the overall weighted mean (the per-window points live in the JSONL
/// snapshot — text exposition has no native series type).
pub fn write_prometheus<W: Write>(reg: &Registry, mut w: W) -> io::Result<()> {
    let mut last_family = String::new();
    for (m, v) in reg.counters() {
        header(&mut w, &mut last_family, &m.family, "counter", m)?;
        writeln!(w, "{}{} {}", m.family, labels(m), v)?;
    }
    for (m, v) in reg.gauges() {
        header(&mut w, &mut last_family, &m.family, "gauge", m)?;
        writeln!(w, "{}{} {}", m.family, labels(m), v)?;
    }
    for (m, h) in reg.histograms() {
        header(&mut w, &mut last_family, &m.family, "histogram", m)?;
        let mut cum = 0u64;
        for (i, &n) in h.buckets().iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            writeln!(
                w,
                "{}_bucket{} {}",
                m.family,
                labels_with(m, "le", &fmt_f64(Log2Histogram::upper_bound(i))),
                cum
            )?;
        }
        writeln!(w, "{}_bucket{} {}", m.family, labels_with(m, "le", "+Inf"), h.count())?;
        writeln!(w, "{}_sum{} {}", m.family, labels(m), h.sum())?;
        writeln!(w, "{}_count{} {}", m.family, labels(m), h.count())?;
    }
    for (m, s) in reg.series_entries() {
        let fam = format!("{}_mean", m.family);
        header(&mut w, &mut last_family, &fam, "gauge", m)?;
        writeln!(w, "{}{} {}", fam, labels(m), s.overall_mean())?;
    }
    Ok(())
}

fn header<W: Write>(
    w: &mut W,
    last: &mut String,
    family: &str,
    kind: &str,
    m: &MetricMeta,
) -> io::Result<()> {
    if last == family {
        return Ok(());
    }
    writeln!(w, "# HELP {family} {}", m.help)?;
    writeln!(w, "# TYPE {family} {kind}")?;
    last.clear();
    last.push_str(family);
    Ok(())
}

fn labels(m: &MetricMeta) -> String {
    if m.label_key.is_empty() {
        String::new()
    } else {
        format!("{{{}=\"{}\"}}", m.label_key, m.label_value)
    }
}

fn labels_with(m: &MetricMeta, extra_key: &str, extra_value: &str) -> String {
    if m.label_key.is_empty() {
        format!("{{{extra_key}=\"{extra_value}\"}}")
    } else {
        format!("{{{}=\"{}\",{extra_key}=\"{extra_value}\"}}", m.label_key, m.label_value)
    }
}

fn open(line: &mut String, m: &MetricMeta, ty: &str) {
    line.push_str("{\"metric\":\"");
    line.push_str(&m.family);
    line.push('"');
    if !m.label_key.is_empty() {
        line.push_str(",\"labels\":{\"");
        line.push_str(m.label_key);
        line.push_str("\":\"");
        line.push_str(&m.label_value);
        line.push_str("\"}");
    }
    line.push_str(",\"type\":\"");
    line.push_str(ty);
    line.push_str("\",\"unit\":\"");
    line.push_str(m.unit);
    line.push_str("\",\"help\":\"");
    line.push_str(m.help);
    line.push('"');
}

fn push_u64(line: &mut String, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(line, "{v}");
}

fn push_f64(line: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(line, "{v}");
    } else {
        // JSON has no inf/nan literals; null keeps the line parseable.
        line.push_str("null");
    }
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::series::SeriesKind;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(5.0);
        let c = r.counter("vm_hired_total", "tier", "private", "1", "VMs hired per tier");
        let h = r.histogram("dispatch_queue_wait_tu", "stage", "0", "tu", "Queue wait per stage");
        let s = r.series(
            SeriesKind::TimeWeightedMean,
            "vm_utilisation",
            "",
            "",
            "ratio",
            "Busy over hired cores",
        );
        r.counter_add(c, 3);
        r.record(h, 0.75);
        r.record(h, 3.0);
        r.sample(s, 0.0, 0.5);
        r.finish(10.0);
        r
    }

    #[test]
    fn jsonl_lines_are_self_describing_and_parseable_shapes() {
        let mut buf = Vec::new();
        write_jsonl(&sample_registry(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"metric\":\"vm_hired_total\",\"labels\":{\"tier\":\"private\"},\
             \"type\":\"counter\",\"unit\":\"1\",\"help\":\"VMs hired per tier\",\"value\":3}"
        );
        assert!(lines[1].contains("\"count\":2"));
        assert!(lines[1].contains("{\"le\":1,\"n\":1}"));
        assert!(lines[1].contains("{\"le\":4,\"n\":1}"));
        assert!(lines[2].contains("\"kind\":\"time_weighted_mean\""));
        assert!(lines[2].contains("\"points\":[0.5,0.5]"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_with_inf_sum_count() {
        let mut buf = Vec::new();
        write_prometheus(&sample_registry(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE vm_hired_total counter"));
        assert!(text.contains("vm_hired_total{tier=\"private\"} 3"));
        assert!(text.contains("dispatch_queue_wait_tu_bucket{stage=\"0\",le=\"1\"} 1"));
        assert!(text.contains("dispatch_queue_wait_tu_bucket{stage=\"0\",le=\"4\"} 2"));
        assert!(text.contains("dispatch_queue_wait_tu_bucket{stage=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("dispatch_queue_wait_tu_sum{stage=\"0\"} 3.75"));
        assert!(text.contains("dispatch_queue_wait_tu_count{stage=\"0\"} 2"));
        assert!(text.contains("vm_utilisation_mean 0.5"));
    }

    #[test]
    fn export_bytes_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_jsonl(&sample_registry(), &mut a).unwrap();
        write_jsonl(&sample_registry(), &mut b).unwrap();
        assert_eq!(a, b);
    }
}
