//! Sim-time-windowed series: fixed-width time windows appended to dense
//! vectors (the LocustDB idea of keeping aggregates columnar and dense —
//! one `Vec<f64>` pair per series, no per-sample allocation).
//!
//! Two accumulation kinds cover the platform's needs:
//!
//! * [`SeriesKind::TimeWeightedMean`] — a gauge sampled at irregular
//!   instants, integrated piecewise-constant over each window (VM
//!   utilisation, queue depth).
//! * [`SeriesKind::Rate`] — deltas accumulated per window and divided by
//!   the window width at export (spend per TU).
//!
//! Windows close lazily as samples advance past their end; [`WindowedSeries::finish`]
//! closes the tail at the horizon. Each closed window keeps its raw
//! `(value, weight)` accumulator pair rather than the derived mean, so
//! merging repetitions is an element-wise add — exact in shape and
//! deterministic when folded in a fixed repetition order.

/// How a series accumulates samples into its windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Piecewise-constant integral of a sampled gauge, divided by covered
    /// time at export.
    TimeWeightedMean,
    /// Sum of deltas per window, divided by the window width at export.
    Rate,
}

impl SeriesKind {
    /// Stable lowercase name (used in exports).
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::TimeWeightedMean => "time_weighted_mean",
            SeriesKind::Rate => "rate",
        }
    }
}

/// One windowed series. Sample times are raw simulation TU (`f64`);
/// window `i` covers `[i·w, (i+1)·w)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    kind: SeriesKind,
    window_tu: f64,
    /// Closed windows, dense from window 0: `(value_acc, weight_acc)`.
    /// For [`SeriesKind::TimeWeightedMean`]: `(∫v dt, ∫dt)` over the
    /// window. For [`SeriesKind::Rate`]: `(Σ deltas, 0)`.
    closed: Vec<(f64, f64)>,
    cur: (f64, f64),
    /// Gauge state for time-weighted integration.
    last_t: f64,
    last_v: f64,
    finished: bool,
}

impl WindowedSeries {
    /// A new series with `window_tu`-wide windows starting at t = 0. The
    /// gauge value is taken as 0 until the first sample.
    pub fn new(kind: SeriesKind, window_tu: f64) -> Self {
        assert!(window_tu > 0.0 && window_tu.is_finite());
        WindowedSeries {
            kind,
            window_tu,
            closed: Vec::new(),
            cur: (0.0, 0.0),
            last_t: 0.0,
            last_v: 0.0,
            finished: false,
        }
    }

    /// The accumulation kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The window width in TU.
    pub fn window_tu(&self) -> f64 {
        self.window_tu
    }

    fn cur_end(&self) -> f64 {
        (self.closed.len() + 1) as f64 * self.window_tu
    }

    /// Integrates the held gauge value forward to `t`, closing any
    /// windows passed on the way.
    fn advance_to(&mut self, t: f64) {
        debug_assert!(!self.finished, "sample after finish");
        debug_assert!(t >= self.last_t, "time went backwards");
        while t >= self.cur_end() {
            let end = self.cur_end();
            let span = end - self.last_t;
            self.cur.0 += self.last_v * span;
            self.cur.1 += span;
            self.last_t = end;
            self.closed.push(self.cur);
            self.cur = (0.0, 0.0);
        }
        let span = t - self.last_t;
        self.cur.0 += self.last_v * span;
        self.cur.1 += span;
        self.last_t = t;
    }

    /// Records that the gauge takes `value` from instant `at_tu` on
    /// ([`SeriesKind::TimeWeightedMean`] only).
    #[inline]
    pub fn sample(&mut self, at_tu: f64, value: f64) {
        debug_assert_eq!(self.kind, SeriesKind::TimeWeightedMean);
        self.advance_to(at_tu);
        self.last_v = value;
    }

    /// Adds `delta` to the window containing `at_tu` ([`SeriesKind::Rate`]
    /// only).
    #[inline]
    pub fn add(&mut self, at_tu: f64, delta: f64) {
        debug_assert_eq!(self.kind, SeriesKind::Rate);
        debug_assert!(!self.finished, "sample after finish");
        while at_tu >= self.cur_end() {
            self.closed.push(self.cur);
            self.cur = (0.0, 0.0);
        }
        self.cur.0 += delta;
    }

    /// Closes the series at the horizon `end_tu`; the final (possibly
    /// partial) window is kept with its true covered span. Idempotent.
    pub fn finish(&mut self, end_tu: f64) {
        if self.finished {
            return;
        }
        match self.kind {
            SeriesKind::TimeWeightedMean => {
                if end_tu > self.last_t {
                    self.advance_to(end_tu);
                }
            }
            SeriesKind::Rate => {
                while end_tu >= self.cur_end() {
                    self.closed.push(self.cur);
                    self.cur = (0.0, 0.0);
                }
            }
        }
        // Keep the trailing partial window only if the horizon actually
        // extends into it — a horizon exactly on a window boundary leaves
        // the next window uncovered, not empty-but-present.
        if end_tu > self.closed.len() as f64 * self.window_tu {
            self.closed.push(self.cur);
        }
        self.cur = (0.0, 0.0);
        self.finished = true;
    }

    /// The raw `(value, weight)` accumulators of the closed windows.
    pub fn accumulators(&self) -> &[(f64, f64)] {
        &self.closed
    }

    /// The exported per-window values: time-weighted mean (`0` for
    /// uncovered windows) or rate per TU, window 0 first.
    pub fn values(&self) -> Vec<f64> {
        self.closed
            .iter()
            .map(|&(a, b)| match self.kind {
                SeriesKind::TimeWeightedMean => {
                    if b > 0.0 {
                        a / b
                    } else {
                        0.0
                    }
                }
                SeriesKind::Rate => a / self.window_tu,
            })
            .collect()
    }

    /// Overall mean across the whole run: time-weighted mean of the gauge
    /// or total delta over total covered time.
    pub fn overall_mean(&self) -> f64 {
        let (va, wa) = self.closed.iter().fold((0.0, 0.0), |(x, y), &(a, b)| (x + a, y + b));
        match self.kind {
            SeriesKind::TimeWeightedMean => {
                if wa > 0.0 {
                    va / wa
                } else {
                    0.0
                }
            }
            SeriesKind::Rate => {
                let span = self.closed.len() as f64 * self.window_tu;
                if span > 0.0 {
                    va / span
                } else {
                    0.0
                }
            }
        }
    }

    /// Folds another (finished) series in, window by window. Shapes must
    /// match; a shorter series is treated as padded with empty windows.
    pub fn merge(&mut self, other: &WindowedSeries) {
        assert_eq!(self.kind, other.kind, "cannot merge different series kinds");
        assert_eq!(
            self.window_tu.to_bits(),
            other.window_tu.to_bits(),
            "cannot merge different window widths"
        );
        if other.closed.len() > self.closed.len() {
            self.closed.resize(other.closed.len(), (0.0, 0.0));
        }
        for (s, o) in self.closed.iter_mut().zip(other.closed.iter()) {
            s.0 += o.0;
            s.1 += o.1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_integrates_piecewise() {
        let mut s = WindowedSeries::new(SeriesKind::TimeWeightedMean, 10.0);
        s.sample(0.0, 2.0); // v=2 over [0,5)
        s.sample(5.0, 4.0); // v=4 over [5,10)
        s.sample(12.0, 0.0); // v=4 over [10,12), then 0
        s.finish(20.0);
        let v = s.values();
        assert_eq!(v.len(), 2);
        assert!((v[0] - 3.0).abs() < 1e-12, "window 0: {}", v[0]);
        // Window 1: 4 for 2 TU + 0 for 8 TU = 0.8 mean.
        assert!((v[1] - 0.8).abs() < 1e-12, "window 1: {}", v[1]);
    }

    #[test]
    fn rate_accumulates_per_window() {
        let mut s = WindowedSeries::new(SeriesKind::Rate, 5.0);
        s.add(1.0, 10.0);
        s.add(4.0, 10.0);
        s.add(7.0, 5.0);
        s.finish(15.0);
        let v = s.values();
        assert_eq!(v.len(), 3);
        assert!((v[0] - 4.0).abs() < 1e-12); // 20 over 5 TU
        assert!((v[1] - 1.0).abs() < 1e-12); // 5 over 5 TU
        assert_eq!(v[2], 0.0);
    }

    #[test]
    fn finish_is_idempotent_and_partial_windows_keep_true_span() {
        let mut s = WindowedSeries::new(SeriesKind::TimeWeightedMean, 10.0);
        s.sample(0.0, 6.0);
        s.finish(5.0);
        s.finish(5.0);
        let v = s.values();
        assert_eq!(v.len(), 1);
        assert!((v[0] - 6.0).abs() < 1e-12, "partial window mean is unbiased");
        assert!((s.overall_mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_accumulators_elementwise() {
        let mk = |v: f64| {
            let mut s = WindowedSeries::new(SeriesKind::TimeWeightedMean, 10.0);
            s.sample(0.0, v);
            s.finish(20.0);
            s
        };
        let mut a = mk(2.0);
        a.merge(&mk(4.0));
        let v = a.values();
        assert_eq!(v.len(), 2);
        assert!((v[0] - 3.0).abs() < 1e-12, "merged mean weights both runs");
    }

    #[test]
    #[should_panic]
    fn merging_mismatched_kinds_panics() {
        let mut a = WindowedSeries::new(SeriesKind::Rate, 10.0);
        let b = WindowedSeries::new(SeriesKind::TimeWeightedMean, 10.0);
        a.merge(&b);
    }
}
