//! The metric registry: typed ids into dense storage.
//!
//! Registration happens once at wiring time and returns a small `Copy` id
//! (an index into a dense `Vec`); the hot path then updates through the id
//! with no hashing, no string work, and no allocation. Registration is
//! idempotent by `(family, label)` so independent subsystems can ask for
//! the same metric and share storage.

use crate::hist::Log2Histogram;
use crate::series::{SeriesKind, WindowedSeries};

/// Identity and documentation of one metric instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricMeta {
    /// Metric family name (`snake_case`, e.g. `vm_hired_total`).
    pub family: String,
    /// Label key, or `""` for an unlabelled metric.
    pub label_key: &'static str,
    /// Label value (empty when unlabelled).
    pub label_value: String,
    /// Unit of the recorded values (e.g. `"tu"`, `"cores"`, `"1"`).
    pub unit: &'static str,
    /// One-line human description, used as Prometheus `# HELP`.
    pub help: &'static str,
}

impl MetricMeta {
    fn matches(&self, family: &str, label_value: &str) -> bool {
        self.family == family && self.label_value == label_value
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) u32);

/// Handle to a registered windowed series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(pub(crate) u32);

/// Dense storage for all metrics of one run (or one merged set of runs).
///
/// Deterministic by construction: iteration order is registration order,
/// and [`Registry::merge`] requires identical registration order on both
/// sides (guaranteed when every repetition wires metrics through the same
/// code path).
#[derive(Debug, Clone)]
pub struct Registry {
    window_tu: f64,
    counters: Vec<(MetricMeta, u64)>,
    gauges: Vec<(MetricMeta, f64)>,
    histograms: Vec<(MetricMeta, Log2Histogram)>,
    series: Vec<(MetricMeta, WindowedSeries)>,
}

impl Registry {
    /// An empty registry whose series use `window_tu`-wide windows.
    pub fn new(window_tu: f64) -> Self {
        assert!(window_tu > 0.0 && window_tu.is_finite());
        Registry {
            window_tu,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            series: Vec::new(),
        }
    }

    /// The series window width in TU.
    pub fn window_tu(&self) -> f64 {
        self.window_tu
    }

    /// Registers (or finds) a counter.
    pub fn counter(
        &mut self,
        family: &str,
        label_key: &'static str,
        label_value: &str,
        unit: &'static str,
        help: &'static str,
    ) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(m, _)| m.matches(family, label_value)) {
            return CounterId(i as u32);
        }
        self.counters.push((meta(family, label_key, label_value, unit, help), 0));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(
        &mut self,
        family: &str,
        label_key: &'static str,
        label_value: &str,
        unit: &'static str,
        help: &'static str,
    ) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(m, _)| m.matches(family, label_value)) {
            return GaugeId(i as u32);
        }
        self.gauges.push((meta(family, label_key, label_value, unit, help), 0.0));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Registers (or finds) a log2-bucket histogram.
    pub fn histogram(
        &mut self,
        family: &str,
        label_key: &'static str,
        label_value: &str,
        unit: &'static str,
        help: &'static str,
    ) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(m, _)| m.matches(family, label_value)) {
            return HistogramId(i as u32);
        }
        self.histograms
            .push((meta(family, label_key, label_value, unit, help), Log2Histogram::new()));
        HistogramId((self.histograms.len() - 1) as u32)
    }

    /// Registers (or finds) a windowed time series of the given kind.
    pub fn series(
        &mut self,
        kind: SeriesKind,
        family: &str,
        label_key: &'static str,
        label_value: &str,
        unit: &'static str,
        help: &'static str,
    ) -> SeriesId {
        if let Some(i) = self.series.iter().position(|(m, _)| m.matches(family, label_value)) {
            return SeriesId(i as u32);
        }
        let w = self.window_tu;
        self.series
            .push((meta(family, label_key, label_value, unit, help), WindowedSeries::new(kind, w)));
        SeriesId((self.series.len() - 1) as u32)
    }

    /// Adds to a counter.
    #[inline]
    pub fn counter_add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1 += n;
    }

    /// Sets a gauge to its latest value.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize].1 = v;
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0 as usize].1.record(v);
    }

    /// Samples a time-weighted-mean series at sim time `at_tu`.
    #[inline]
    pub fn sample(&mut self, id: SeriesId, at_tu: f64, v: f64) {
        self.series[id.0 as usize].1.sample(at_tu, v);
    }

    /// Adds a delta to a rate series at sim time `at_tu`.
    #[inline]
    pub fn rate_add(&mut self, id: SeriesId, at_tu: f64, delta: f64) {
        self.series[id.0 as usize].1.add(at_tu, delta);
    }

    /// Closes every series at the horizon `end_tu`. Call once when the
    /// session ends, before exporting or merging.
    pub fn finish(&mut self, end_tu: f64) {
        for (_, s) in &mut self.series {
            s.finish(end_tu);
        }
    }

    /// Counters in registration order.
    pub fn counters(&self) -> &[(MetricMeta, u64)] {
        &self.counters
    }

    /// Gauges in registration order.
    pub fn gauges(&self) -> &[(MetricMeta, f64)] {
        &self.gauges
    }

    /// Histograms in registration order.
    pub fn histograms(&self) -> &[(MetricMeta, Log2Histogram)] {
        &self.histograms
    }

    /// Series in registration order.
    pub fn series_entries(&self) -> &[(MetricMeta, WindowedSeries)] {
        &self.series
    }

    /// Folds another registry in. Both sides must have registered the
    /// same metrics in the same order (the instrumentation code path is
    /// identical across repetitions, so this holds by construction);
    /// counters and histogram counts add exactly, gauges add (the
    /// platform uses none; summing keeps merge associative), and series
    /// add window accumulators element-wise. Merge in a fixed repetition
    /// order for bit-stable float sums.
    pub fn merge(&mut self, other: &Registry) {
        assert_eq!(self.window_tu.to_bits(), other.window_tu.to_bits());
        assert_eq!(self.counters.len(), other.counters.len(), "registry shapes differ");
        assert_eq!(self.gauges.len(), other.gauges.len(), "registry shapes differ");
        assert_eq!(self.histograms.len(), other.histograms.len(), "registry shapes differ");
        assert_eq!(self.series.len(), other.series.len(), "registry shapes differ");
        for ((m, v), (om, ov)) in self.counters.iter_mut().zip(other.counters.iter()) {
            debug_assert_eq!(m, om);
            *v += ov;
        }
        for ((m, v), (om, ov)) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            debug_assert_eq!(m, om);
            *v += ov;
        }
        for ((m, h), (om, oh)) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            debug_assert_eq!(m, om);
            h.merge(oh);
        }
        for ((m, s), (om, os)) in self.series.iter_mut().zip(other.series.iter()) {
            debug_assert_eq!(m, om);
            s.merge(os);
        }
    }
}

fn meta(
    family: &str,
    label_key: &'static str,
    label_value: &str,
    unit: &'static str,
    help: &'static str,
) -> MetricMeta {
    debug_assert!(
        label_key.is_empty() == label_value.is_empty(),
        "label key and value must both be set or both empty"
    );
    MetricMeta {
        family: family.to_string(),
        label_key,
        label_value: label_value.to_string(),
        unit,
        help,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_family_and_label() {
        let mut r = Registry::new(5.0);
        let a = r.counter("vm_hired_total", "tier", "private", "1", "VMs hired");
        let b = r.counter("vm_hired_total", "tier", "private", "1", "VMs hired");
        let c = r.counter("vm_hired_total", "tier", "public", "1", "VMs hired");
        assert_eq!(a, b);
        assert_ne!(a, c);
        r.counter_add(a, 2);
        r.counter_add(b, 3);
        assert_eq!(r.counters()[0].1, 5);
        assert_eq!(r.counters().len(), 2);
    }

    #[test]
    fn typed_updates_land_in_their_slots() {
        let mut r = Registry::new(5.0);
        let h = r.histogram("queue_wait", "stage", "0", "tu", "queue wait");
        let g = r.gauge("depth", "", "", "1", "depth");
        let s = r.series(SeriesKind::Rate, "spend", "tier", "public", "cu_per_tu", "spend");
        r.record(h, 1.5);
        r.gauge_set(g, 7.0);
        r.rate_add(s, 2.0, 10.0);
        r.finish(5.0);
        assert_eq!(r.histograms()[0].1.count(), 1);
        assert_eq!(r.gauges()[0].1, 7.0);
        assert_eq!(r.series_entries()[0].1.values(), vec![2.0]);
    }

    #[test]
    fn merge_folds_all_metric_types() {
        let build = |n: u64| {
            let mut r = Registry::new(5.0);
            let c = r.counter("jobs", "", "", "1", "jobs");
            let h = r.histogram("wait", "", "", "tu", "wait");
            let s = r.series(SeriesKind::TimeWeightedMean, "util", "", "", "ratio", "util");
            r.counter_add(c, n);
            r.record(h, n as f64);
            r.sample(s, 0.0, n as f64);
            r.finish(10.0);
            r
        };
        let mut a = build(2);
        a.merge(&build(4));
        assert_eq!(a.counters()[0].1, 6);
        assert_eq!(a.histograms()[0].1.count(), 2);
        let v = a.series_entries()[0].1.values();
        assert_eq!(v.len(), 2);
        assert!((v[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "registry shapes differ")]
    fn merging_mismatched_shapes_panics() {
        let mut a = Registry::new(5.0);
        a.counter("x", "", "", "1", "x");
        let b = Registry::new(5.0);
        a.merge(&b);
    }
}
