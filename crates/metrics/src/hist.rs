//! Log2-bucketed histograms.
//!
//! Bucket boundaries are powers of two, derived straight from the IEEE-754
//! exponent field — recording a sample is a handful of integer ops with no
//! search, no float comparison ladder, and no allocation. The bucket array
//! is fixed-size, so a histogram is `Copy`-free but heap-free, and merging
//! two histograms is an element-wise integer add (exact, order-free for
//! the counts).

/// Smallest kept binary exponent: values below `2^EXP_MIN` land in the
/// lowest power-of-two bucket.
const EXP_MIN: i32 = -64;
/// Largest kept binary exponent: values at `2^(EXP_MAX+1)` and beyond
/// land in the highest bucket.
const EXP_MAX: i32 = 63;

/// Number of buckets: one zero/non-positive bucket plus one per kept
/// binary exponent (`EXP_MIN..=EXP_MAX`).
pub const N_BUCKETS: usize = (EXP_MAX - EXP_MIN + 1) as usize + 1;

/// `2^e` built from bits (exact; valid for normal-range exponents).
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// A histogram over positive reals with power-of-two bucket boundaries.
///
/// Bucket 0 collects non-positive (and NaN) samples; bucket `k ≥ 1`
/// collects samples in `[2^e, 2^(e+1))` for `e = EXP_MIN + k − 1`, with
/// the extreme buckets absorbing under/overflow. `count` and `sum` track
/// the full stream, so means stay exact even though bucket membership is
/// quantised.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    count: u64,
    sum: f64,
    buckets: [u64; N_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram { count: 0, sum: 0.0, buckets: [0; N_BUCKETS] }
    }

    /// The bucket a value falls into. Non-positive (and NaN) values map
    /// to bucket 0; positive values map by binary exponent, clamped to
    /// the kept range.
    pub fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || value.is_nan() {
            return 0;
        }
        // Biased exponent 0 (subnormals) yields −1023, far below EXP_MIN,
        // so the clamp handles it; ±inf yields +1024, above EXP_MAX.
        let e = ((value.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        (e.clamp(EXP_MIN, EXP_MAX) - EXP_MIN) as usize + 1
    }

    /// Inclusive upper bound of a bucket (Prometheus `le` semantics up to
    /// the open/closed edge; the lowest bucket's bound is 0). The bounds
    /// are strictly increasing in the bucket index.
    pub fn upper_bound(index: usize) -> f64 {
        assert!(index < N_BUCKETS);
        if index == 0 {
            0.0
        } else {
            pow2(EXP_MIN + index as i32)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::upper_bound(i), n))
    }

    /// Folds another histogram in: counts add exactly; the sample sum
    /// adds in call order (merge in a fixed order for bit-stable sums).
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_power_of_two_buckets() {
        let mut h = Log2Histogram::new();
        h.record(0.75); // [2^-1, 2^0)
        h.record(1.0); // [2^0, 2^1)
        h.record(1.5);
        h.record(3.0); // [2^1, 2^2)
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 6.25).abs() < 1e-12);
        let nz: Vec<(f64, u64)> = h.nonzero().collect();
        assert_eq!(nz, vec![(1.0, 1), (2.0, 2), (4.0, 1)]);
    }

    #[test]
    fn zero_negative_and_nan_take_the_floor_bucket() {
        let mut h = Log2Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.buckets()[0], 3);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn extremes_clamp_to_edge_buckets() {
        assert_eq!(Log2Histogram::bucket_index(1e-300), 1);
        assert_eq!(Log2Histogram::bucket_index(f64::MIN_POSITIVE / 4.0), 1);
        assert_eq!(Log2Histogram::bucket_index(1e300), N_BUCKETS - 1);
        assert_eq!(Log2Histogram::bucket_index(f64::INFINITY), N_BUCKETS - 1);
    }

    proptest! {
        /// Bucket upper bounds are strictly monotone — the boundary
        /// invariant every quantile/exposition consumer relies on.
        #[test]
        fn prop_bucket_bounds_are_monotone(i in 0usize..N_BUCKETS - 1) {
            prop_assert!(Log2Histogram::upper_bound(i) < Log2Histogram::upper_bound(i + 1));
        }

        /// Every positive sample falls inside its bucket's bounds.
        #[test]
        fn prop_samples_respect_their_bounds(v in 1e-12f64..1e12) {
            let i = Log2Histogram::bucket_index(v);
            prop_assert!(i >= 1);
            prop_assert!(v < Log2Histogram::upper_bound(i));
            if i > 1 {
                prop_assert!(v >= Log2Histogram::upper_bound(i - 1));
            }
        }

        /// Merge is associative: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c). Counts are
        /// integer-exact; the sample sum matches to f64 tolerance (its
        /// addition order differs between the two groupings).
        #[test]
        fn prop_merge_is_associative(
            xs in proptest::collection::vec(0.0f64..1e6, 0..20),
            ys in proptest::collection::vec(0.0f64..1e6, 0..20),
            zs in proptest::collection::vec(0.0f64..1e6, 0..20),
        ) {
            let h = |vals: &[f64]| {
                let mut h = Log2Histogram::new();
                for &v in vals { h.record(v); }
                h
            };
            let (a, b, c) = (h(&xs), h(&ys), h(&zs));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.buckets(), right.buckets());
            let scale = left.sum().abs().max(1.0);
            prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * scale);
        }
    }
}
