//! Microbenchmarks of the simulation kernel's hot paths: event calendar
//! throughput and RNG stream draws — the operations every simulated TU
//! exercises thousands of times.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_sim::{Calendar, SimDuration, SimRng, SimTime};

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut cal: Calendar<u64> = Calendar::with_capacity(n);
                // Interleaved times exercise heap reordering.
                for i in 0..n {
                    let t = ((i * 2_654_435_761) % 1_000_000) as f64 / 1000.0;
                    cal.schedule(SimTime::new(t), i as u64);
                }
                let mut sum = 0u64;
                while let Some(ev) = cal.pop() {
                    sum = sum.wrapping_add(ev.event);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_hold_model(c: &mut Criterion) {
    // The classic "hold" pattern: pop one, schedule one — steady-state
    // event-loop throughput.
    c.bench_function("calendar/hold_1024", |b| {
        let mut cal: Calendar<u32> = Calendar::new();
        let mut rng = SimRng::from_seed_u64(1);
        for i in 0..1024 {
            cal.schedule(SimTime::new(rng.uniform(0.0, 100.0)), i);
        }
        b.iter(|| {
            let ev = cal.pop().expect("non-empty");
            let next = ev.at + SimDuration::new(0.1 + (ev.event % 7) as f64);
            cal.schedule(next, ev.event);
            black_box(ev.at)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("exponential", |b| {
        let mut rng = SimRng::from_seed_u64(2);
        b.iter(|| black_box(rng.exponential(2.5)))
    });
    group.bench_function("truncated_normal", |b| {
        let mut rng = SimRng::from_seed_u64(3);
        b.iter(|| black_box(rng.truncated_normal(5.0, 1.0, 1.0)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_calendar, bench_hold_model, bench_rng
}
criterion_main!(benches);
