//! Benchmarks of the Data Sharders and the functional genomics path:
//! record-boundary FASTQ sharding, SBAM round trips and batch alignment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_genomics::fastq::write_fastq;
use scan_genomics::sam::{parse_sbam, write_sbam};
use scan_genomics::shard::shard_fastq;
use scan_genomics::{KmerIndex, ReadSimulator, ReferenceGenome};
use scan_sim::SimRng;

fn bench_fastq_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard/fastq");
    for &n_reads in &[1_000usize, 10_000] {
        let mut rng = SimRng::from_seed_u64(10);
        let genome = ReferenceGenome::generate(&mut rng, 1, 50_000);
        let sim = ReadSimulator::default();
        let reads = sim.simulate(&mut rng, &genome, n_reads);
        let buf = write_fastq(&reads);
        group.throughput(Throughput::Bytes(buf.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_reads), &buf, |b, buf| {
            b.iter(|| black_box(shard_fastq(buf, 64 * 1024).expect("valid").len()))
        });
    }
    group.finish();
}

fn bench_sbam_roundtrip(c: &mut Criterion) {
    let mut rng = SimRng::from_seed_u64(11);
    let genome = ReferenceGenome::generate(&mut rng, 1, 20_000);
    let sim = ReadSimulator::default();
    let reads = sim.simulate(&mut rng, &genome, 5_000);
    let index = KmerIndex::build(&genome, 17);
    let alignments = index.align_batch(&genome, &reads);
    let mut group = c.benchmark_group("sbam");
    group.throughput(Throughput::Elements(alignments.len() as u64));
    group.bench_function("write_5000", |b| b.iter(|| black_box(write_sbam(&alignments).len())));
    let buf = write_sbam(&alignments);
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.bench_function("parse_5000", |b| {
        b.iter(|| black_box(parse_sbam(&buf).expect("valid").len()))
    });
    group.finish();
}

fn bench_alignment(c: &mut Criterion) {
    let mut rng = SimRng::from_seed_u64(12);
    let genome = ReferenceGenome::generate(&mut rng, 2, 50_000);
    let index = KmerIndex::build(&genome, 17);
    let sim = ReadSimulator::default();
    let reads = sim.simulate(&mut rng, &genome, 2_000);
    let mut group = c.benchmark_group("align");
    group.throughput(Throughput::Elements(reads.len() as u64));
    group.bench_function("batch_rayon_2000", |b| {
        b.iter(|| black_box(index.align_batch(&genome, &reads).len()))
    });
    group.bench_function("sequential_2000", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for r in &reads {
                black_box(index.align_read(&genome, r));
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_fastq_shard, bench_sbam_roundtrip, bench_alignment
}
criterion_main!(benches);
