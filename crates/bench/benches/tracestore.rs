//! Columnar trace-store economics: ingest cost per event against the
//! JSONL sink it replaces, query latency over a populated store, and the
//! on-disk footprint of the SCTS export against the equivalent JSONL.
//!
//! Acceptance criteria (ISSUE 7, ledgered into BENCH_PR7.json by
//! `scripts/bench.sh`): ingest ≤ 2× the JSONL sink per event, export
//! ≥ 5× smaller on disk. The byte counts are printed to stderr here and
//! measured on real fig4 artefacts by the bench script's size step.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session_with;
use scan_sched::scaling::ScalingPolicy;
use scan_sim::{JsonlWriter, Observer, SimTime, TraceEvent};
use scan_tracestore::{Agg, EventKind, Filter, Query, TraceStore};

/// Captures a session's raw event stream so both sinks replay the exact
/// same events.
#[derive(Default)]
struct Capture {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Observer for Capture {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        self.events.push((at, *event));
    }
}

fn captured_stream() -> Vec<(SimTime, TraceEvent)> {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 99);
    cfg.fixed.sim_time_tu = 300.0;
    let (_, capture) = run_session_with(&cfg, 0, Capture::default());
    capture.events
}

fn store_of(stream: &[(SimTime, TraceEvent)]) -> TraceStore {
    let mut store = TraceStore::new();
    for (at, event) in stream {
        store.ingest(*at, event);
    }
    store
}

fn bench_ingest(c: &mut Criterion) {
    let stream = captured_stream();
    let mut group = c.benchmark_group("tracestore");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("ingest_store", |b| {
        b.iter(|| {
            let mut store = TraceStore::new();
            for (at, event) in &stream {
                store.ingest(*at, event);
            }
            black_box(store.events())
        })
    });

    // The sink the store replaces: same events through the JSONL writer
    // into an in-memory buffer (no filesystem noise in either side).
    group.bench_function("ingest_jsonl", |b| {
        b.iter(|| {
            let mut sink = JsonlWriter::new(Vec::<u8>::with_capacity(1 << 20));
            for (at, event) in &stream {
                sink.on_event(*at, event);
            }
            black_box(sink.into_inner().len())
        })
    });

    group.bench_function("export_bytes", |b| {
        let store = store_of(&stream);
        b.iter(|| black_box(store.to_bytes().len()))
    });

    group.finish();

    // Footprint report (informational; the ledgered measurement runs on
    // the full fig4 artefacts in scripts/bench.sh).
    let store = store_of(&stream);
    let mut jsonl = JsonlWriter::new(Vec::<u8>::with_capacity(1 << 20));
    for (at, event) in &stream {
        jsonl.on_event(*at, event);
    }
    let jsonl_len = jsonl.into_inner().len();
    let scts_len = store.to_bytes().len();
    eprintln!(
        "tracestore footprint: {} events, jsonl {} B, scts {} B ({:.1}x smaller)",
        stream.len(),
        jsonl_len,
        scts_len,
        jsonl_len as f64 / scts_len as f64
    );
}

fn bench_query(c: &mut Criterion) {
    let stream = captured_stream();
    let store = store_of(&stream);
    let mut group = c.benchmark_group("tracestore");

    group.bench_function("query_p95_wait_by_tier", |b| {
        let query = Query::over(EventKind::SubtaskDispatched)
            .group_by("tier")
            .aggregate(Agg::P95, "waited_tu");
        b.iter(|| black_box(query.run(&store).expect("columns are declared in the schema")))
    });

    group.bench_function("query_filtered_bucketed_count", |b| {
        let query = Query::over(EventKind::ScalingDecision)
            .filter(Filter::EqLabel { column: "choice".into(), label: "wait".into() })
            .bucket_tu(50.0)
            .count();
        b.iter(|| black_box(query.run(&store).expect("choice is declared in the schema")))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_ingest, bench_query
}
criterion_main!(benches);
