//! Span-derivation economics: what the causal-span observer adds to the
//! instrumented ingest path, and what the downstream consumers cost.
//!
//! Acceptance criterion (ISSUE 9, ledgered into BENCH_PR9.json by
//! `scripts/bench.sh`): `session_recorder` (a full traced session —
//! store + incremental span stitching) within 5% of `session_store`
//! (the same session with the store alone). The observer earns that by
//! ignoring the high-volume kinds (`subtask_done`, `queue_depth`,
//! `scaling_decision`) entirely — only seven event kinds carry span
//! information — so its per-event work is a fraction of the columnar
//! append it rides along with, which is itself a fraction of simulating
//! the event. The replay-level `ingest_*` benches below isolate the
//! per-sink costs outside the simulation for diagnosis.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session_with;
use scan_sched::scaling::ScalingPolicy;
use scan_sim::{Observer, SimTime, TraceEvent};
use scan_spans::{aggregate, derive, export, render, Recorder, SpanObserver};
use scan_tracestore::TraceStore;

/// The medium fig4 cell every trace bench uses (same as
/// `benches/tracestore.rs`), with the SLO monitor armed.
fn cell() -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 99);
    cfg.fixed.sim_time_tu = 300.0;
    cfg.slo_target_tu = Some(cfg.breakeven_latency_tu());
    cfg
}

/// Captures a session's raw event stream so the replay benches feed
/// every sink the exact same events.
#[derive(Default)]
struct Capture {
    events: Vec<(SimTime, TraceEvent)>,
}

impl Observer for Capture {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        self.events.push((at, *event));
    }
}

fn bench_spans(c: &mut Criterion) {
    let cfg = cell();
    let (_, capture) = run_session_with(&cfg, 0, Capture::default());
    let stream = capture.events;
    let mut group = c.benchmark_group("spans");
    group.throughput(Throughput::Elements(stream.len() as u64));

    // The ingest path as sessions actually run it: simulate + store.
    group.bench_function("session_store", |b| {
        b.iter(|| {
            let (metrics, store) = run_session_with(&cfg, 0, TraceStore::new());
            black_box((metrics.jobs_completed, store.events()))
        })
    });

    // Simulate + store + incremental span stitching — the ≤5% criterion
    // compares this against `session_store`.
    group.bench_function("session_recorder", |b| {
        b.iter(|| {
            let (metrics, rec) = run_session_with(&cfg, 0, Recorder::default());
            black_box((metrics.jobs_completed, rec.store.events(), rec.spans.completed()))
        })
    });

    // Replay-level isolation: the same captured events through each sink
    // without the simulation around them.
    group.bench_function("ingest_store", |b| {
        b.iter(|| {
            let mut store = TraceStore::new();
            for (at, event) in &stream {
                store.ingest(*at, event);
            }
            black_box(store.events())
        })
    });

    group.bench_function("ingest_recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::default();
            for (at, event) in &stream {
                rec.on_event(*at, event);
            }
            black_box((rec.store.events(), rec.spans.completed()))
        })
    });

    group.bench_function("ingest_observer_only", |b| {
        b.iter(|| {
            let mut obs = SpanObserver::new();
            for (at, event) in &stream {
                obs.on_event(*at, event);
            }
            black_box(obs.completed())
        })
    });

    group.finish();

    let mut rec = Recorder::default();
    for (at, event) in &stream {
        rec.on_event(*at, event);
    }
    let store = rec.store;
    let spans = rec.spans.into_spans();

    let mut group = c.benchmark_group("spans");
    group.bench_function("derive_batch", |b| b.iter(|| black_box(derive(&store).jobs.len())));
    group.bench_function("aggregate_report", |b| {
        b.iter(|| black_box(render(&aggregate(&spans)).len()))
    });
    group.bench_function("perfetto_export", |b| b.iter(|| black_box(export(&store, &spans).len())));
    group.finish();

    eprintln!(
        "spans footprint: {} events -> {} jobs ({} in flight), perfetto {} B",
        stream.len(),
        spans.jobs.len(),
        spans.in_flight,
        export(&store, &spans).len()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_spans
}
criterion_main!(benches);
