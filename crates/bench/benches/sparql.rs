//! Benchmarks of the knowledge-base query path: SPARQL parse + execute
//! over stores of growing size — the Data Broker's per-decision cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_kb::ontology::iri::SCAN_NS;
use scan_kb::{parse_query, KnowledgeBase, ProfileRecord};

fn kb_with(n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for i in 0..n {
        kb.ingest(&ProfileRecord {
            application: "GATK".into(),
            stage: (i % 7 + 1) as u32,
            input_gb: 1.0 + (i % 9) as f64,
            threads: [1u32, 2, 4, 8, 16][i % 5],
            ram_gb: 4.0,
            e_time: 10.0 + i as f64 * 0.01,
        });
    }
    kb
}

fn ranking_query() -> String {
    format!(
        "PREFIX scan: <{SCAN_NS}>
         SELECT ?app ?size ?t WHERE {{
             ?app a scan:Application .
             ?app scan:inputFileSize ?size .
             ?app scan:eTime ?t .
             FILTER (?size > 0 && ?t > 0)
         }} ORDER BY ASC(?t / ?size) LIMIT 25"
    )
}

fn bench_parse(c: &mut Criterion) {
    let text = ranking_query();
    c.bench_function("sparql/parse_ranking_query", |b| {
        b.iter(|| black_box(parse_query(&text).expect("parses")))
    });
}

fn bench_execute(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparql/execute");
    let query = parse_query(&ranking_query()).expect("parses");
    for &n in &[100usize, 1_000, 5_000] {
        let kb = kb_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(query.execute(kb.ontology().store()).expect("runs").len()))
        });
    }
    group.finish();
}

fn bench_advice(c: &mut Criterion) {
    // The full Data Broker decision: query + rank + clamp.
    let kb = kb_with(1_000);
    c.bench_function("kb/advise_chunk_1000_instances", |b| {
        b.iter(|| black_box(kb.advise_chunk("GATK", 100.0)))
    });
}

fn bench_regression(c: &mut Criterion) {
    let kb = kb_with(2_000);
    c.bench_function("kb/stage_model_regression", |b| {
        b.iter(|| black_box(kb.stage_model("GATK", 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_parse, bench_execute, bench_advice, bench_regression
}
criterion_main!(benches);
