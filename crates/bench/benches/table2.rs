//! Table II as a bench target: times the knowledge-base bootstrap that
//! re-derives the per-stage scalability factors (profiling-trace
//! generation → triple-store ingestion → regression), and asserts the
//! recovery is numerically faithful on every iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_platform::broker::DataBroker;
use scan_sim::SimRng;
use scan_workload::gatk::{PipelineModel, PAPER_STAGE_FACTORS};

fn bench_table2_bootstrap(c: &mut Criterion) {
    let model = PipelineModel::paper();
    c.bench_function("table2/kb_bootstrap_and_regression", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed_u64(77);
            let broker = DataBroker::bootstrap(&model, 0.0, &mut rng);
            // The point of Table II: the learned factors equal the
            // published ones.
            for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
                let fit = broker.learned_model().stages[i];
                assert!((fit.a - truth.a).abs() < 1e-6);
                assert!((fit.c - truth.c).abs() < 1e-4);
            }
            black_box(broker.knowledge_base().profile_count("GATK"))
        })
    });
}

fn bench_stage_model_queries(c: &mut Criterion) {
    let model = PipelineModel::paper();
    let mut rng = SimRng::from_seed_u64(78);
    let broker = DataBroker::bootstrap(&model, 0.02, &mut rng);
    c.bench_function("table2/stage_models_refresh", |b| {
        b.iter(|| black_box(broker.knowledge_base().stage_models("GATK", 7).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_table2_bootstrap, bench_stage_model_queries
}
criterion_main!(benches);
