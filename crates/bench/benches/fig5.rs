//! Figure 5 as a bench target: times reduced-horizon heterogeneous
//! (reshape-enabled) sessions at three points of the core-stage ladder —
//! serial, the sweet spot, and over-provisioned.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{RewardKind, ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_sched::alloc::AllocationPolicy;
use scan_sched::scaling::ScalingPolicy;

fn bench_fig5_points(c: &mut Criterion) {
    let plans: [(&str, Vec<(u32, u32)>); 3] = [
        ("serial-7", vec![(1, 1); 7]),
        ("sweet-20", vec![(1, 2), (4, 1), (1, 2), (4, 1), (1, 8), (1, 1), (1, 1)]),
        ("heavy-67", vec![(1, 8), (6, 1), (2, 8), (6, 2), (1, 16), (1, 8), (1, 1)]),
    ];
    let mut group = c.benchmark_group("fig5/session_500tu");
    group.sample_size(10);
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::from_parameter(name), plan, |b, plan| {
            b.iter(|| {
                let mut cfg = ScanConfig::new(
                    VariableParams {
                        allocation: AllocationPolicy::BestConstant,
                        scaling: ScalingPolicy::Predictive,
                        mean_interval: 2.0,
                        reward: RewardKind::ThroughputBased,
                        public_core_cost: 50.0,
                    },
                    EXPERIMENT_SEED,
                );
                cfg.fixed.sim_time_tu = 500.0;
                cfg.allow_reshape = true;
                cfg.forced_plan = Some(plan.clone());
                let m = run_session(&cfg, 0);
                black_box(m.reward_to_cost)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig5_points
}
criterion_main!(benches);
