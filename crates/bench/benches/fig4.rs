//! Figure 4 as a bench target: times one reduced-horizon session per
//! horizontal-scaling policy at a busy and a quiet load point — the same
//! code path the `fig4` binary sweeps at full scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_sched::scaling::ScalingPolicy;

fn bench_fig4_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/session_500tu");
    group.sample_size(10);
    for scaling in ScalingPolicy::all() {
        for &interval in &[0.8f64, 2.5] {
            let label = format!("{}@{interval}", scaling.name());
            group.bench_with_input(
                BenchmarkId::from_parameter(&label),
                &(scaling, interval),
                |b, &(scaling, interval)| {
                    b.iter(|| {
                        let mut cfg = ScanConfig::new(
                            VariableParams::fig4(scaling, interval),
                            EXPERIMENT_SEED,
                        );
                        cfg.fixed.sim_time_tu = 500.0;
                        let m = run_session(&cfg, 0);
                        assert!(m.jobs_completed > 0);
                        black_box(m.profit_per_run)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig4_sessions
}
criterion_main!(benches);
