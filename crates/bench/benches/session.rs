//! End-to-end session throughput: the repo's headline perf number.
//!
//! Every other bench in this suite times one subsystem in isolation; this
//! one times the whole thing — `Platform::new` + the full event loop — at
//! three arrival rates, plus one replicated sweep cell through the rayon
//! fan-out. The paper's evaluation is a 10-repetition fixed-seed sweep
//! over 1 056 cells, so sessions/second is exactly the number that bounds
//! how much of that grid we can afford to run; `scripts/bench.sh` records
//! these medians in `BENCH_PR*.json` so later PRs regress-gate against
//! the trajectory.
//!
//! Each full-session bench reports `Throughput::Elements(events)` where
//! `events` is the session's dispatched-event count (measured once in
//! setup — sessions are deterministic, so every iteration replays the
//! same event stream). The printed `elem/s` rate is therefore events/sec,
//! and `1 / mean-time` is sessions/sec.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_platform::sweep::run_replicated;
use scan_sched::scaling::ScalingPolicy;

/// One fixed-seed fig4-shaped cell, 500 TU long: long enough that the
/// event loop dominates `Platform::new`'s knowledge-base bootstrap, short
/// enough that criterion gets real sample counts.
fn session_cfg(mean_interval: f64) -> ScanConfig {
    let mut cfg =
        ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, mean_interval), 42);
    cfg.fixed.sim_time_tu = 500.0;
    cfg
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");

    // Arrival-rate axis: mean inter-arrival interval in TU (Table I sweeps
    // 2.0–3.0; lower interval = higher load = more events per session).
    for &(label, interval) in &[("small", 3.0), ("medium", 2.5), ("large", 2.0)] {
        let cfg = session_cfg(interval);
        let events = run_session(&cfg, 0).events;
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("full/{label}"), |b| {
            b.iter(|| black_box(run_session(&cfg, 0).jobs_completed))
        });
    }

    // One sweep cell as the grid runs it: N seeded repetitions fanned out
    // over rayon and folded deterministically. This is the macro shape of
    // `sweep_grid` — per-cell wall time, not per-session.
    let cfg = session_cfg(2.5);
    group.throughput(Throughput::Elements(4));
    group.bench_function("sweep_cell/medium_x4", |b| {
        b.iter(|| black_box(run_replicated(&cfg, 4).n()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_session
}
criterion_main!(benches);
