//! Analyzer runtime: how long `scan-lint` takes over the whole
//! workspace. The gate budget is "well under a second" so the lint step
//! stays in `ci.sh quick`; the ledger entry (BENCH_PR5.json) records the
//! actual cost of a full load+scan and of the rule pass alone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_lint::Workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn bench_lint(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint");

    // Disk + tokenize + every rule: what `ci.sh` actually pays.
    group.bench_function("load_and_run", |b| {
        b.iter(|| {
            let ws = Workspace::load(black_box(workspace_root())).expect("workspace loads");
            black_box(ws.run().diagnostics.len())
        })
    });

    // Rules only, on an already-loaded (lexed) workspace.
    let ws = Workspace::load(workspace_root()).expect("workspace loads");
    group.bench_function("rules_only", |b| b.iter(|| black_box(ws.run().diagnostics.len())));

    // The interprocedural layer alone: item parse + symbol table + call
    // graph + the three semantic passes. CI budgets the whole analysis
    // at 250 ms (`--time-budget-ms`), so this must stay far under that.
    group.bench_function("semantic", |b| b.iter(|| black_box(ws.run_semantic().diagnostics.len())));

    group.finish();
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
