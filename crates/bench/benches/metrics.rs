//! Metrics-layer overhead: the cost of one update through a disabled
//! [`Metrics`] handle (the acceptance bar is "a few ns per event" — the
//! same class as the disabled tracer emit), the enabled-path cost for
//! scale, and a whole session run instrumented vs plain. The session
//! pair is the ledger entry that proves the registry stays out of the
//! hot path when nobody asked for metrics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_metrics::{Metrics, SeriesKind};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::instrument::run_session_instrumented;
use scan_platform::session::run_session;
use scan_sched::scaling::ScalingPolicy;

fn bench_handle(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");

    group.bench_function("counter_add_disabled", |b| {
        let m = Metrics::disabled();
        let id = Metrics::enabled(5.0)
            .with_registry(|r| r.counter("bench_total", "", "", "1", "bench"))
            .unwrap();
        b.iter(|| m.counter_add(black_box(id), 1))
    });

    group.bench_function("histogram_record_disabled", |b| {
        let m = Metrics::disabled();
        let id = Metrics::enabled(5.0)
            .with_registry(|r| r.histogram("bench_tu", "", "", "tu", "bench"))
            .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.record(black_box(id), i as f64);
        })
    });

    group.bench_function("counter_add_enabled", |b| {
        let m = Metrics::enabled(5.0);
        let id = m.with_registry(|r| r.counter("bench_total", "", "", "1", "bench")).unwrap();
        b.iter(|| m.counter_add(black_box(id), 1))
    });

    group.bench_function("histogram_record_enabled", |b| {
        let m = Metrics::enabled(5.0);
        let id = m.with_registry(|r| r.histogram("bench_tu", "", "", "tu", "bench")).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.record(black_box(id), (i % 1024) as f64 + 0.5);
        })
    });

    group.bench_function("series_sample_enabled", |b| {
        let m = Metrics::enabled(5.0);
        let id = m
            .with_registry(|r| {
                r.series(SeriesKind::TimeWeightedMean, "bench_util", "", "", "ratio", "bench")
            })
            .unwrap();
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.25;
            m.sample(black_box(id), t, 0.5);
        })
    });

    group.finish();
}

fn short_config() -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 99);
    cfg.fixed.sim_time_tu = 150.0;
    cfg
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_session");
    group.sample_size(10);

    group.bench_function("plain", |b| {
        let cfg = short_config();
        b.iter(|| black_box(run_session(&cfg, 0)))
    });

    group.bench_function("instrumented", |b| {
        let cfg = short_config();
        b.iter(|| black_box(run_session_instrumented(&cfg, 0, 5.0, false)))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_handle, bench_session
}
criterion_main!(benches);
