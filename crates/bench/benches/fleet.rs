//! Whole-fleet throughput: run-to-completion multi-tenant fleets at
//! 100, 1 000 and 10 000 tenants on one shared provider pool.
//!
//! Each iteration is a complete fleet run — M platform constructions
//! (knowledge-base bootstrap included; at scale that is the dominant
//! cost) plus the single tenant-tagged event loop to drain. Throughput
//! is `Throughput::Elements(jobs)`, so the printed `elem/s` is
//! **jobs/sec**, the number `scripts/bench.sh` ledgers per scale in
//! `BENCH_PR*.json`.
//!
//! Sample counts are deliberately tiny: the 10k-tenant fleet takes
//! minutes per iteration, and fleet runs are deterministic, so extra
//! samples measure the allocator, not the platform.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use scan_bench::fleet_cfg;
use scan_platform::fleet::run_fleet;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    for &tenants in &[100u16, 1_000, 10_000] {
        let cfg = fleet_cfg(tenants);
        group.throughput(Throughput::Elements(tenants as u64 * cfg.jobs_per_tenant));
        group.bench_function(format!("tenants/{tenants}"), |b| {
            b.iter(|| black_box(run_fleet(&cfg, 0).jobs_completed))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(2)
        .warm_up_time(std::time::Duration::from_millis(1))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_fleet
}
criterion_main!(benches);
