//! `platform::dispatch` hot path: the idle-pool lookup pair
//! (`take_idle` + put-back) and a full `assign` (queue pop, wait
//! accounting, ground-truth execution model, noise draw, worker state
//! flip, completion scheduling).
//!
//! Regressions here used to be visible only as whole-session time; this
//! bench localises them to the dispatch subsystem. The harness restores
//! its state after every operation, so each iteration times the same
//! work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_platform::platform::bench_support::PlatformHarness;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");

    // Pool lookup pair on a realistically sized idle pool.
    group.bench_function("take_idle_put_back/idle=64", |b| {
        let mut h = PlatformHarness::new(64, 0, 16);
        b.iter(|| black_box(h.take_idle_cycle()))
    });

    // Full assign at increasing queue backlogs (assign itself is O(1) in
    // queue length — a flat series here is the regression guard).
    for &queued in &[16usize, 256] {
        group.bench_function(format!("assign/queued={queued}"), |b| {
            let mut h = PlatformHarness::new(64, 0, queued);
            b.iter(|| black_box(h.assign_cycle()))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_dispatch
}
criterion_main!(benches);
