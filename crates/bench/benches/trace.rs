//! Observability-layer overhead: the cost of the trace dispatch itself
//! (disabled vs null-sink vs ring-buffer emit) and of a whole session run
//! with and without an extra observer attached. The acceptance criterion
//! is that the disabled path and the session-level null-observer overhead
//! are both in the noise.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::{run_session, run_session_observed};
use scan_sched::scaling::ScalingPolicy;
use scan_sim::{NullObserver, RingBuffer, SimTime, TraceEvent, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

fn ev(i: u64) -> TraceEvent {
    TraceEvent::SubtaskDone { job: i, stage: (i % 7) as u32, vm: i % 64 }
}

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracer");

    group.bench_function("emit_disabled", |b| {
        let tracer = Tracer::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit(SimTime::new(i as f64), black_box(ev(i)));
        })
    });

    group.bench_function("emit_with_disabled", |b| {
        let tracer = Tracer::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit_with(SimTime::new(i as f64), || black_box(ev(i)));
        })
    });

    group.bench_function("emit_null_sink", |b| {
        let mut tracer = Tracer::disabled();
        tracer.attach(Rc::new(RefCell::new(NullObserver)));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit(SimTime::new(i as f64), black_box(ev(i)));
        })
    });

    group.bench_function("emit_ring_buffer", |b| {
        let mut tracer = Tracer::disabled();
        tracer.attach(Rc::new(RefCell::new(RingBuffer::new(4096))));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit(SimTime::new(i as f64), black_box(ev(i)));
        })
    });

    group.finish();
}

fn short_config() -> ScanConfig {
    let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 99);
    cfg.fixed.sim_time_tu = 150.0;
    cfg
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.sample_size(10);

    group.bench_function("aggregator_only", |b| {
        let cfg = short_config();
        b.iter(|| black_box(run_session(&cfg, 0)))
    });

    group.bench_function("aggregator_plus_null_observer", |b| {
        let cfg = short_config();
        b.iter(|| {
            black_box(run_session_observed(&cfg, 0, vec![Rc::new(RefCell::new(NullObserver))]))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_emit, bench_session
}
criterion_main!(benches);
