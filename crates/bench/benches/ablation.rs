//! Ablation benches for the design choices DESIGN.md §8 calls out:
//!
//! * delay-cost lookahead (predictive scaling) vs blind policies, as
//!   session cost at a saturating load;
//! * knowledge-base advice on/off: allocator-chosen plans vs a fixed
//!   naive plan;
//! * reshape penalty magnitude: the heterogeneous configuration with the
//!   published 0.5 TU penalty vs a free-reshape counterfactual (penalty
//!   effects show up as profit differences, timed here through the same
//!   session path);
//! * the §VI learning extension: ε-greedy plan selection convergence.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_sched::learned::EpsilonGreedyPlanner;
use scan_sched::plan::{candidate_plans, evaluate_plan, PlanObjective};
use scan_sched::scaling::ScalingPolicy;
use scan_sim::SimRng;
use scan_workload::gatk::PipelineModel;
use scan_workload::reward::RewardFn;

fn session(scaling: ScalingPolicy, forced: Option<Vec<(u32, u32)>>, reshape: bool) -> f64 {
    let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, 0.8), EXPERIMENT_SEED);
    cfg.fixed.sim_time_tu = 400.0;
    cfg.forced_plan = forced;
    cfg.allow_reshape = reshape;
    run_session(&cfg, 0).profit_per_run
}

fn ablate_delay_cost_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/scaling_policy_saturated");
    group.sample_size(10);
    for scaling in ScalingPolicy::all() {
        group.bench_with_input(BenchmarkId::from_parameter(scaling.name()), &scaling, |b, &s| {
            b.iter(|| black_box(session(s, None, false)))
        });
    }
    group.finish();
}

fn ablate_kb_advice(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/plan_source");
    group.sample_size(10);
    group.bench_function("kb_advised", |b| {
        b.iter(|| black_box(session(ScalingPolicy::Predictive, None, false)))
    });
    group.bench_function("naive_serial", |b| {
        b.iter(|| black_box(session(ScalingPolicy::Predictive, Some(vec![(1, 1); 7]), false)))
    });
    group.finish();
}

fn ablate_reshape(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/heterogeneous_workers");
    group.sample_size(10);
    group.bench_function("reshape_on", |b| {
        b.iter(|| black_box(session(ScalingPolicy::Predictive, None, true)))
    });
    group.bench_function("reshape_off", |b| {
        b.iter(|| black_box(session(ScalingPolicy::Predictive, None, false)))
    });
    group.finish();
}

fn ablate_learned_planner(c: &mut Criterion) {
    // How fast the §VI bandit converges onto the analytically-best arm.
    let model = PipelineModel::paper();
    let arms = candidate_plans(&model, 5.0);
    let objective = PlanObjective {
        reward: RewardFn::paper_time_based(),
        price_per_core_tu: 6.5,
        overhead_tu: 1.0,
    };
    c.bench_function("ablation/bandit_200_rounds", |b| {
        b.iter(|| {
            let mut planner = EpsilonGreedyPlanner::new(arms.clone(), 0.1);
            let mut rng = SimRng::from_seed_u64(9);
            for _ in 0..200 {
                let (idx, plan) = planner.select(&mut rng);
                let econ = evaluate_plan(&model, 5.0, &plan, &objective);
                planner.update(idx, econ.profit);
            }
            black_box(planner.best_arm())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = ablate_delay_cost_lookahead, ablate_kb_advice, ablate_reshape, ablate_learned_planner
}
criterion_main!(benches);
