//! `platform::hiring` hot path: one priced scaling decision — building
//! the Eq. 1 pricer from the per-class aggregates (two window lookups +
//! a cached sum), gathering the scalar inputs (projected-wait scan over
//! the busy set), and running `ScalingPolicy::decide_priced`.
//!
//! The decision should now be flat in queue depth (the old full-walk
//! view was O(min(queue, 256))), so the backlog axis sweeps past the
//! window cap; the busy-set scan stays the O(busy) part. The aggregate
//! maintenance every enqueue/dequeue pair pays is benched separately.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_platform::platform::bench_support::PlatformHarness;

fn bench_hiring(c: &mut Criterion) {
    let mut group = c.benchmark_group("hiring");

    // Backlog-depth sweep across the 256-entry window cap: with the
    // incremental aggregates every point should price in near-constant
    // time (queued=512 within 1.2× of queued=4).
    for &queued in &[4usize, 64, 256, 512, 1024] {
        group.bench_function(format!("decide/queued={queued}"), |b| {
            let mut h = PlatformHarness::new(0, 32, queued);
            b.iter(|| black_box(h.price_decision()))
        });
    }

    // Projected-wait scan dominates: sweep the busy-worker count.
    for &busy in &[8usize, 128] {
        group.bench_function(format!("decide/busy={busy}"), |b| {
            let mut h = PlatformHarness::new(0, busy, 64);
            b.iter(|| black_box(h.price_decision()))
        });
    }

    // What keeping Eq. 1 incremental costs the dispatch path: one
    // pop + re-enqueue round trip on the queue and its aggregate mirror.
    group.bench_function("aggregate/enqueue_dequeue", |b| {
        let mut h = PlatformHarness::new(0, 8, 256);
        b.iter(|| black_box(h.queue_maintenance_cycle()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_hiring
}
criterion_main!(benches);
