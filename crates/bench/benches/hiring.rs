//! `platform::hiring` hot path: one priced scaling decision — filling
//! the Eq. 1 queue view from a stalled class (distinct-job dedup + per-
//! job ETT estimates into the reused scratch buffer), gathering the
//! scalar inputs (projected-wait scan over the busy set), and running
//! `ScalingPolicy::decide_priced`.
//!
//! The queue-view fill is the O(min(queue, 256)) part and the busy-set
//! scan the O(busy) part, so both axes are swept.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use scan_platform::platform::bench_support::PlatformHarness;

fn bench_hiring(c: &mut Criterion) {
    let mut group = c.benchmark_group("hiring");

    // Queue-view fill dominates: sweep the backlog depth (256 is the
    // MAX_QUEUE_VIEW cap; 512 must cost the same as 256).
    for &queued in &[4usize, 64, 256, 512] {
        group.bench_function(format!("decide/queued={queued}"), |b| {
            let mut h = PlatformHarness::new(0, 32, queued);
            b.iter(|| black_box(h.price_decision()))
        });
    }

    // Projected-wait scan dominates: sweep the busy-worker count.
    for &busy in &[8usize, 128] {
        group.bench_function(format!("decide/busy={busy}"), |b| {
            let mut h = PlatformHarness::new(0, busy, 64);
            b.iter(|| black_box(h.price_decision()))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_hiring
}
criterion_main!(benches);
