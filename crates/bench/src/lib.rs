//! # scan-bench — the experiment harness
//!
//! One binary per evaluation artefact of the paper (run with
//! `cargo run --release -p scan-bench --bin <name>`):
//!
//! | binary   | reproduces                                                  |
//! |----------|-------------------------------------------------------------|
//! | `table1` | Table I — the variable-parameter grid (validated + smoke)   |
//! | `table2` | Table II — per-stage factors, published vs regression-learned |
//! | `table3` | Table III — fixed attributes as configured                  |
//! | `fig4`   | Fig. 4 — profit vs inter-arrival interval per scaling policy |
//! | `fig5`   | Fig. 5 — reward-to-cost ratio vs total core-stages          |
//! | `sweep`  | §IV-B — the full policy-permutation sweep                   |
//!
//! Criterion microbenches (`cargo bench -p scan-bench`) cover the hot
//! kernels (event calendar, SPARQL evaluation, sharding, plan search) and
//! reduced-horizon versions of the figure experiments, plus the ablation
//! suite called out in DESIGN.md §8.
//!
//! Output conventions: plain-text tables with `mean ± σ` entries, exactly
//! the series the paper plots.

#![forbid(unsafe_code)]

use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::fleet::FleetConfig;
use scan_platform::fleet::{run_fleet_replicated_with, run_fleet_with};
use scan_platform::instrument::{run_session_instrumented, DEFAULT_WINDOW_TU};
use scan_platform::metrics::ReplicatedMetrics;
use scan_platform::session::{run_session_traced, run_session_with};
use scan_platform::sweep::run_replicated;
use scan_sched::scaling::ScalingPolicy;
use scan_sim::Merge;
use scan_spans::{Recorder, RecorderFactory, Recording, SpanSet};
use scan_tracestore::{TraceStore, TraceStoreFactory};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default repetitions: the paper's "all measurements were repeated 10
/// times".
pub const PAPER_REPETITIONS: u64 = 10;

/// The workspace-wide base seed for published experiments.
pub const EXPERIMENT_SEED: u64 = 0x5CA4_2015;

/// Runs one Table I cell with paper repetitions.
pub fn run_cell(variable: VariableParams, sim_time: f64, reps: u64) -> ReplicatedMetrics {
    let mut cfg = ScanConfig::new(variable, EXPERIMENT_SEED);
    cfg.fixed.sim_time_tu = sim_time;
    run_replicated(&cfg, reps)
}

/// The standard benchmarked fleet shape at `tenants` tenants: fig4's
/// predictive cell as the per-tenant config, four jobs per tenant, and a
/// shared private pool of one solo tier (624 cores) or two cores per
/// tenant, whichever is larger — contention stays constant-per-tenant as
/// the fleet grows, so every fleet drains well before the backstop and
/// jobs/sec is comparable across scales. Used by the `fleet` bin (CI
/// smoke + ledger) and the `fleet` criterion bench.
pub fn fleet_cfg(tenants: u16) -> FleetConfig {
    let mut base =
        ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), EXPERIMENT_SEED);
    // A backstop only: run-to-completion fleets drain long before this.
    base.fixed.sim_time_tu = 2_000.0;
    let mut cfg = FleetConfig::new(base, tenants);
    cfg.jobs_per_tenant = 4;
    cfg.shared_private_cores = cfg.shared_private_cores.max(tenants as u32 * 2);
    cfg
}

/// Formats `mean ± σ` to two decimals.
pub fn pm(stats: &scan_sim::stats::OnlineStats) -> String {
    format!("{:9.2} ± {:7.2}", stats.mean(), stats.stddev())
}

/// Parses a `--<flag> <path>` (or `--<flag>=<path>`) option from argv.
/// `flag` is given without the leading dashes.
pub fn path_flag_from_args(flag: &str) -> Option<PathBuf> {
    let spaced = format!("--{flag}");
    let joined = format!("--{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == spaced {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix(&joined) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Parses a `--trace <path>` (or `--trace=<path>`) flag from argv.
pub fn trace_path_from_args() -> Option<PathBuf> {
    path_flag_from_args("trace")
}

/// Parses a `--store <path>` (or `--store=<path>`) flag from argv.
pub fn store_path_from_args() -> Option<PathBuf> {
    path_flag_from_args("store")
}

/// Writes a [`TraceStore`] as an SCTS export to `path`, reporting rows,
/// bytes, and the store digest (the CI fingerprint).
fn write_store(store: &TraceStore, label: &str, path: &Path) {
    let bytes = store.to_bytes();
    match std::fs::write(path, &bytes) {
        Ok(()) => println!(
            "store: wrote {} ({label}, {} events, {} bytes, digest {:016x})",
            path.display(),
            store.events(),
            bytes.len(),
            store.digest()
        ),
        Err(e) => eprintln!("store: failed to write {}: {e}", path.display()),
    }
}

/// Ingests one representative session (repetition 0 of `cfg`) into a
/// columnar [`TraceStore`] and writes its SCTS export to `path`. The
/// store-building run is separate from the measured repetitions, so
/// tables are unaffected — the `--store` analogue of [`dump_trace`].
pub fn dump_store(cfg: &ScanConfig, path: &Path) {
    let (_, store) = run_session_with(cfg, 0, TraceStore::new());
    write_store(&store, "1 session", path);
}

/// Runs `repetitions` whole fleets with one [`TraceStore`] per tenant
/// session, merges them in `(repetition, tenant)` order, and writes the
/// merged SCTS export to `path`. The merged store — and therefore the
/// export bytes and digest — is bit-identical for any
/// `RAYON_NUM_THREADS`, which CI exploits by diffing two exports.
pub fn dump_fleet_store(cfg: &FleetConfig, repetitions: u64, path: &Path) {
    let factory = TraceStoreFactory::fleet(u64::from(cfg.tenants));
    let (_, store) = run_fleet_replicated_with(cfg, repetitions, &factory);
    write_store(&store, &format!("{} fleet reps", repetitions), path);
}

/// Dumps the typed JSONL trace of one representative session (repetition
/// 0 of `cfg`) to `path`, reporting what was written. Used by the bench
/// bins' `--trace` flag; the traced run is separate from the measured
/// repetitions, so tables are unaffected.
pub fn dump_trace(cfg: &ScanConfig, path: &std::path::Path) {
    match run_session_traced(cfg, 0, path) {
        Ok(m) => println!(
            "trace: wrote {} ({} events dispatched, {} jobs completed)",
            path.display(),
            m.events,
            m.jobs_completed
        ),
        Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
    }
}

/// The `--metrics <path>` / `--profile <path>` pair shared by the bench
/// bins, parsed from argv.
pub fn instrument_flags_from_args() -> (Option<PathBuf>, Option<PathBuf>) {
    (path_flag_from_args("metrics"), path_flag_from_args("profile"))
}

/// Parses a numeric `--<flag> N` (or `--<flag>=N`) option from argv.
/// `flag` is given without the leading dashes; unparsable values count
/// as absent.
pub fn num_flag_from_args(flag: &str) -> Option<usize> {
    let spaced = format!("--{flag}");
    let joined = format!("--{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == spaced {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix(&joined) {
            return v.parse().ok();
        }
    }
    None
}

/// The `--spans <path>` / `--slowest N` pair shared by the bench bins,
/// parsed from argv (`--slowest` defaults to 10 rows when absent).
pub fn spans_flags_from_args() -> (Option<PathBuf>, usize) {
    (path_flag_from_args("spans"), num_flag_from_args("slowest").unwrap_or(10))
}

/// A copy of `cfg` with the SLO monitor armed: spans runs default the
/// target to the break-even latency (`rmax / rpenalty`, the point where
/// a time-based reward hits zero) when the caller hasn't set one, so
/// `slo_violation` events and the burn-rate meters light up.
fn with_slo_default(cfg: &ScanConfig) -> ScanConfig {
    let mut cfg = cfg.clone();
    if cfg.slo_target_tu.is_none() {
        cfg.slo_target_tu = Some(cfg.breakeven_latency_tu());
    }
    cfg
}

/// Writes the span artefacts: the Chrome/Perfetto trace-event JSON to
/// `path`, and the aggregate + slowest-jobs text report to `<path>.txt`
/// (also echoed on stdout). Every line of the report is deterministic —
/// byte-identical across `RAYON_NUM_THREADS` — which CI exploits by
/// comparing the report files of a 1-thread and an 8-thread fleet run.
/// `timeline` is the (store, spans) pair the Perfetto document renders —
/// always a single run, because job/VM ids restart per repetition —
/// while `report_spans` may cover many merged repetitions.
fn write_spans(
    timeline: (&TraceStore, &SpanSet),
    report_spans: &SpanSet,
    label: &str,
    path: &Path,
    slowest: usize,
) {
    let doc = scan_spans::perfetto::export(timeline.0, timeline.1);
    let mut report = scan_spans::render(&scan_spans::aggregate(report_spans));
    report.push_str(&scan_spans::render_slowest(report_spans, slowest));
    print!("{report}");
    let mut report_path = path.as_os_str().to_os_string();
    report_path.push(".txt");
    let report_path = PathBuf::from(report_path);
    match std::fs::write(path, &doc).and_then(|()| std::fs::write(&report_path, &report)) {
        Ok(()) => println!(
            "spans: wrote {} (perfetto, {} bytes) and {} ({label}, {} jobs, {} in flight)",
            path.display(),
            doc.len(),
            report_path.display(),
            report_spans.jobs.len(),
            report_spans.in_flight
        ),
        Err(e) => eprintln!("spans: failed to write {}: {e}", path.display()),
    }
}

/// Runs one representative session (repetition 0 of `cfg`, SLO monitor
/// armed at the break-even default) with a [`Recorder`] — a columnar
/// store and the span observer on one stream — and writes the span
/// artefacts. The `--spans` analogue of [`dump_store`]; the recorded run
/// is separate from the measured repetitions, so tables are unaffected.
pub fn dump_spans(cfg: &ScanConfig, path: &Path, slowest: usize) {
    let cfg = with_slo_default(cfg);
    let (_, rec) = run_session_with(&cfg, 0, Recorder::default());
    let spans = rec.spans.into_spans();
    write_spans((&rec.store, &spans), &spans, "1 session", path, slowest);
}

/// Runs `repetitions` whole fleets with one [`Recorder`] per tenant
/// session and writes the span artefacts: the aggregate report covers
/// every repetition (merged in `(repetition, tenant)` order, so it is
/// bit-identical for any `RAYON_NUM_THREADS`), while the Perfetto JSON
/// covers repetition 0 only — job and VM ids restart every repetition,
/// so a multi-repetition timeline would stack unrelated slices.
pub fn dump_fleet_spans(cfg: &FleetConfig, repetitions: u64, path: &Path, slowest: usize) {
    let mut cfg = cfg.clone();
    cfg.base = Arc::new(with_slo_default(&cfg.base));
    let factory = RecorderFactory::fleet(u64::from(cfg.tenants));
    let (_, merged) = run_fleet_replicated_with(&cfg, repetitions, &factory);
    let (_, rep0) = run_fleet_with(&cfg, 0, &factory);
    let mut first = Recording::default();
    for tenant in rep0 {
        first.merge(tenant);
    }
    write_spans(
        (&first.store, &first.spans),
        &merged.spans,
        &format!("{repetitions} fleet reps"),
        path,
        slowest,
    );
}

/// Runs one instrumented representative session (repetition 0 of `cfg`)
/// and writes its artefacts. Used by the bench bins' `--metrics` and
/// `--profile` flags; like `--trace`, the instrumented run is separate
/// from the measured repetitions, so tables are unaffected.
///
/// * `metrics_path` — the metrics registry as self-describing JSONL,
///   plus a Prometheus text rendering at `<path>.prom`.
/// * `profile_path` — flamegraph-compatible collapsed stacks of the
///   run's wall-clock self-profile; the sorted self/total table goes to
///   stdout.
pub fn dump_instrumented(
    cfg: &ScanConfig,
    metrics_path: Option<&Path>,
    profile_path: Option<&Path>,
) {
    if metrics_path.is_none() && profile_path.is_none() {
        return;
    }
    let profile = profile_path.is_some();
    if profile {
        scan_sim::prof::enable();
    }
    let (_, registry, summary) = run_session_instrumented(cfg, 0, DEFAULT_WINDOW_TU, profile);
    if let Some(path) = metrics_path {
        let write = || -> std::io::Result<PathBuf> {
            let mut jsonl = std::io::BufWriter::new(std::fs::File::create(path)?);
            scan_metrics::write_jsonl(&registry, &mut jsonl)?;
            std::io::Write::flush(&mut jsonl)?;
            let mut prom_path = path.as_os_str().to_os_string();
            prom_path.push(".prom");
            let prom_path = PathBuf::from(prom_path);
            let mut prom = std::io::BufWriter::new(std::fs::File::create(&prom_path)?);
            scan_metrics::write_prometheus(&registry, &mut prom)?;
            std::io::Write::flush(&mut prom)?;
            Ok(prom_path)
        };
        match write() {
            Ok(prom_path) => println!(
                "metrics: wrote {} (+ {}): {} counters, {} histograms, {} series",
                path.display(),
                prom_path.display(),
                registry.counters().len(),
                registry.histograms().len(),
                registry.series_entries().len(),
            ),
            Err(e) => eprintln!("metrics: failed to write {}: {e}", path.display()),
        }
    }
    if let (Some(path), Some(summary)) = (profile_path, summary) {
        let write = || -> std::io::Result<()> {
            let mut collapsed = std::io::BufWriter::new(std::fs::File::create(path)?);
            summary.write_collapsed(&mut collapsed)?;
            std::io::Write::flush(&mut collapsed)?;
            Ok(())
        };
        match write() {
            Ok(()) => {
                println!("profile: wrote collapsed stacks to {}", path.display());
                let mut table = Vec::new();
                if summary.write_table(&mut table).is_ok() {
                    print!("{}", String::from_utf8_lossy(&table));
                }
            }
            Err(e) => eprintln!("profile: failed to write {}: {e}", path.display()),
        }
    }
}
