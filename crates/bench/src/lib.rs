//! # scan-bench — the experiment harness
//!
//! One binary per evaluation artefact of the paper (run with
//! `cargo run --release -p scan-bench --bin <name>`):
//!
//! | binary   | reproduces                                                  |
//! |----------|-------------------------------------------------------------|
//! | `table1` | Table I — the variable-parameter grid (validated + smoke)   |
//! | `table2` | Table II — per-stage factors, published vs regression-learned |
//! | `table3` | Table III — fixed attributes as configured                  |
//! | `fig4`   | Fig. 4 — profit vs inter-arrival interval per scaling policy |
//! | `fig5`   | Fig. 5 — reward-to-cost ratio vs total core-stages          |
//! | `sweep`  | §IV-B — the full policy-permutation sweep                   |
//!
//! Criterion microbenches (`cargo bench -p scan-bench`) cover the hot
//! kernels (event calendar, SPARQL evaluation, sharding, plan search) and
//! reduced-horizon versions of the figure experiments, plus the ablation
//! suite called out in DESIGN.md §8.
//!
//! Output conventions: plain-text tables with `mean ± σ` entries, exactly
//! the series the paper plots.

#![forbid(unsafe_code)]

use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::metrics::ReplicatedMetrics;
use scan_platform::session::run_session_traced;
use scan_platform::sweep::run_replicated;
use std::path::PathBuf;

/// Default repetitions: the paper's "all measurements were repeated 10
/// times".
pub const PAPER_REPETITIONS: u64 = 10;

/// The workspace-wide base seed for published experiments.
pub const EXPERIMENT_SEED: u64 = 0x5CA4_2015;

/// Runs one Table I cell with paper repetitions.
pub fn run_cell(variable: VariableParams, sim_time: f64, reps: u64) -> ReplicatedMetrics {
    let mut cfg = ScanConfig::new(variable, EXPERIMENT_SEED);
    cfg.fixed.sim_time_tu = sim_time;
    run_replicated(&cfg, reps)
}

/// Formats `mean ± σ` to two decimals.
pub fn pm(stats: &scan_sim::stats::OnlineStats) -> String {
    format!("{:9.2} ± {:7.2}", stats.mean(), stats.stddev())
}

/// Parses a `--<flag> <path>` (or `--<flag>=<path>`) option from argv.
/// `flag` is given without the leading dashes.
pub fn path_flag_from_args(flag: &str) -> Option<PathBuf> {
    let spaced = format!("--{flag}");
    let joined = format!("--{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == spaced {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix(&joined) {
            return Some(PathBuf::from(p));
        }
    }
    None
}

/// Parses a `--trace <path>` (or `--trace=<path>`) flag from argv.
pub fn trace_path_from_args() -> Option<PathBuf> {
    path_flag_from_args("trace")
}

/// Dumps the typed JSONL trace of one representative session (repetition
/// 0 of `cfg`) to `path`, reporting what was written. Used by the bench
/// bins' `--trace` flag; the traced run is separate from the measured
/// repetitions, so tables are unaffected.
pub fn dump_trace(cfg: &ScanConfig, path: &std::path::Path) {
    match run_session_traced(cfg, 0, path) {
        Ok(m) => println!(
            "trace: wrote {} ({} events dispatched, {} jobs completed)",
            path.display(),
            m.events,
            m.jobs_completed
        ),
        Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
    }
}
