//! Figure 4 — "Profit vs. mean arrival interval for various horizontal
//! scaling functions".
//!
//! Configuration per the figure's caption: time-based reward, public-tier
//! hire cost 50 CU/TU, best-constant resource allocation; 10 repetitions,
//! ±1 σ error bars.
//!
//! Two interval ranges are swept:
//!
//! * the **paper-verbatim axis** (2.0–3.0 TU) — with this reproduction's
//!   leaner execution footprint the 624-core private tier is never
//!   saturated there, so the three scaling policies coincide (EXPERIMENTS.md
//!   records the footprint analysis);
//! * the **calibrated load axis** (0.5–1.5 TU) — the same busy-to-quiet
//!   utilisation span the paper describes ("2.0 TU = a very busy system …
//!   3.0 TU = a quiet system"), where the published shape appears:
//!   never-scale collapses under saturation, always-scale pays the public
//!   premium, predictive tracks the better baseline.
//!
//! Usage: `cargo run --release -p scan-bench --bin fig4 [--quick] [--trace <path>]
//! [--store <path>] [--spans <path> [--slowest N]] [--metrics <path>]
//! [--profile <path>]`
//!
//! `--trace <path>` additionally dumps the typed JSONL event trace of one
//! representative session (predictive scaling, 2.0 TU interval);
//! `--store <path>` ingests that session into the columnar trace store
//! and writes its compact SCTS export (see `docs/TRACESTORE.md`);
//! `--spans <path>` derives that session's causal job spans and writes
//! the Chrome/Perfetto timeline plus a critical-path report with the
//! `--slowest N` job table (see `docs/SPANS.md`);
//! `--metrics <path>` dumps that session's metrics registry (JSONL +
//! Prometheus at `<path>.prom`); `--profile <path>` writes its wall-clock
//! self-profile as collapsed stacks and prints the self/total table.

use scan_bench::EXPERIMENT_SEED;
use scan_bench::{
    dump_instrumented, dump_spans, dump_store, dump_trace, instrument_flags_from_args, pm,
    run_cell, spans_flags_from_args, store_path_from_args, trace_path_from_args, PAPER_REPETITIONS,
};
use scan_platform::config::{ScanConfig, VariableParams};
use scan_sched::scaling::ScalingPolicy;

fn sweep(label: &str, intervals: &[f64], sim_time: f64, reps: u64) {
    println!("\n--- {label} ---");
    println!(
        "{:>9} | {:>21} | {:>21} | {:>21}",
        "interval", "predictive", "always-scale", "never-scale"
    );
    println!("{}", "-".repeat(83));
    for &interval in intervals {
        let mut row = format!("{interval:>9.1}");
        for scaling in
            [ScalingPolicy::Predictive, ScalingPolicy::AlwaysScale, ScalingPolicy::NeverScale]
        {
            let m = run_cell(VariableParams::fig4(scaling, interval), sim_time, reps);
            row.push_str(&format!(" | {}", pm(&m.profit_per_run)));
        }
        println!("{row}");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mut sim_time, mut reps) = if quick { (1_000.0, 3) } else { (10_000.0, PAPER_REPETITIONS) };
    // Machine-budget overrides (e.g. single-core CI boxes): SCAN_HORIZON
    // and SCAN_REPS shrink the run; results are labelled with the values
    // actually used.
    if let Some(h) = std::env::var("SCAN_HORIZON").ok().and_then(|v| v.parse().ok()) {
        sim_time = h;
    }
    if let Some(r) = std::env::var("SCAN_REPS").ok().and_then(|v| v.parse().ok()) {
        reps = r;
    }

    println!("Figure 4: mean profit per pipeline run vs. mean arrival interval");
    println!("  reward: time-based | public cost: 50 CU/TU | allocation: best-constant");
    println!("  horizon: {sim_time} TU | repetitions: {reps}");

    let (metrics_path, profile_path) = instrument_flags_from_args();
    let store_path = store_path_from_args();
    let (spans_path, slowest) = spans_flags_from_args();
    if trace_path_from_args().is_some()
        || store_path.is_some()
        || spans_path.is_some()
        || metrics_path.is_some()
        || profile_path.is_some()
    {
        let mut cfg =
            ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), EXPERIMENT_SEED);
        cfg.fixed.sim_time_tu = sim_time;
        if let Some(path) = trace_path_from_args() {
            dump_trace(&cfg, &path);
        }
        if let Some(path) = store_path {
            dump_store(&cfg, &path);
        }
        if let Some(path) = spans_path {
            dump_spans(&cfg, &path, slowest);
        }
        dump_instrumented(&cfg, metrics_path.as_deref(), profile_path.as_deref());
    }

    let paper: Vec<f64> = (0..=10).map(|i| 2.0 + 0.1 * i as f64).collect();
    sweep("paper-verbatim interval axis (2.0-3.0 TU)", &paper, sim_time, reps);

    let calibrated: Vec<f64> = if std::env::var("SCAN_COARSE").is_ok() {
        vec![0.5, 0.7, 0.9, 1.1, 1.3, 1.5]
    } else {
        (0..=10).map(|i| 0.5 + 0.1 * i as f64).collect()
    };
    sweep("calibrated load axis (0.5-1.5 TU; busy -> quiet)", &calibrated, sim_time, reps);

    println!("\n(mean profit per pipeline run, CU; ± one standard deviation over {reps} runs)");
    println!("Shape criteria (calibrated axis): never-scale collapses at the busy end;");
    println!("always-scale trails at light load; predictive tracks the better baseline.");
}
