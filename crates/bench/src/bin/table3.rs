//! Table III — "Miscellaneous simulation attributes fixed across all
//! runs".
//!
//! Prints the configured fixed parameters next to the published values and
//! verifies them programmatically (the build fails the table if any
//! drift).
//!
//! Usage: `cargo run --release -p scan-bench --bin table3`

use scan_cloud::instance::INSTANCE_SIZES;
use scan_platform::config::FixedParams;

fn main() {
    let f = FixedParams::default();
    println!("Table III: miscellaneous simulation attributes fixed across all runs\n");
    let rows: Vec<(&str, String, String)> = vec![
        ("Simulation time (TUs)", "10,000".into(), format!("{:.0}", f.sim_time_tu)),
        ("Private tier core cost (CUs/TU)", "5".into(), format!("{:.0}", f.private_core_cost)),
        ("Rmax (CUs)", "400".into(), format!("{:.0}", f.rmax)),
        ("Rpenalty (CUs)", "15".into(), format!("{:.0}", f.rpenalty)),
        ("Rscale (CUs/TU)", "15,000".into(), format!("{:.0}", f.rscale)),
        (
            "Possible instance sizes (cores)",
            "1, 2, 4, 8, 16".into(),
            INSTANCE_SIZES.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
        ),
        ("Mean jobs per arrival event", "3".into(), format!("{:.0}", f.mean_jobs_per_arrival)),
        ("Jobs per arrival variance", "2".into(), format!("{:.0}", f.jobs_per_arrival_variance)),
        ("Mean job size (arbitrary units)", "5".into(), format!("{:.0}", f.mean_job_size)),
        ("Job size variance", "1".into(), format!("{:.0}", f.job_size_variance)),
        ("Private tier capacity (cores)", "624".into(), format!("{}", f.private_capacity_cores)),
    ];
    println!("{:<34} | {:>14} | {:>14}", "parameter", "paper", "configured");
    println!("{}", "-".repeat(68));
    let mut ok = true;
    for (name, paper, ours) in &rows {
        let matches = paper.replace(',', "") == ours.replace(',', "");
        if !matches {
            ok = false;
        }
        println!(
            "{:<34} | {:>14} | {:>14} {}",
            name,
            paper,
            ours,
            if matches { "" } else { "  <-- MISMATCH" }
        );
    }
    println!("\nReproduction-specific attributes (not in Table III; see EXPERIMENTS.md):");
    println!(
        "{:<34} | {:>14}",
        "GB per job size unit (calibrated)",
        format!("{:.1}", f.gb_per_size_unit)
    );
    println!("{:<34} | {:>14}", "Worker boot/reshape penalty (TU)", "0.5");
    println!("{:<34} | {:>14}", "Private idle timeout (TU)", format!("{:.1}", f.idle_timeout_tu));
    println!(
        "{:<34} | {:>14}",
        "Public idle timeout (TU)",
        format!("{:.1}", f.public_idle_timeout_tu)
    );
    println!(
        "{:<34} | {:>14}",
        "Planner overhead price factor",
        format!("{:.2}", f.overhead_price_factor)
    );
    println!("{:<34} | {:>14}", "Standing-pool headroom", format!("{:.2}", f.pool_headroom));
    assert!(ok, "configured defaults drifted from Table III");
    println!("\nAll Table III values match the paper.");
}
