//! §IV-B — the full policy-permutation sweep.
//!
//! "We explored all permutations of resource allocation algorithm,
//! horizontal scaling algorithm, reward scheme and workload, and found
//! that our proposed algorithms are often able to improve performance
//! above their respective baselines."
//!
//! Default mode downsamples the workload/price axes (the full Table I grid
//! is 1056 cells × repetitions); `--full` runs everything; `--calibrated`
//! additionally sweeps the saturated-load intervals where the scaling
//! policies separate (see fig4's axis discussion).
//!
//! Every session carries a [`DecisionStats`] observer, so the per-cell
//! table also reports *why* each cell's economics came out the way it did:
//! hire vs wait scaling-decision counts and the sampled queue-depth
//! mean/peak, merged over the cell's repetitions (deterministically — the
//! numbers are identical under `RAYON_NUM_THREADS=1` and N threads).
//!
//! The summary reports the paper's two headline comparisons:
//! * adaptive/long-term/greedy allocation vs the best-constant baseline;
//! * predictive scaling vs the always-/never-scale baselines.
//!
//! Usage: `cargo run --release -p scan-bench --bin sweep
//!         [--full] [--calibrated] [--trace <path>] [--store <path>]
//!         [--spans <path> [--slowest N]] [--cell-trace <path>]`
//!
//! `--trace <path>` dumps the typed JSONL event trace of one
//! representative session (the grid's first cell); `--store <path>`
//! ingests that session into the columnar trace store and writes its
//! compact SCTS export (see `docs/TRACESTORE.md`); `--spans <path>`
//! derives that session's causal job spans and writes the
//! Chrome/Perfetto timeline plus a critical-path report with the
//! `--slowest N` job table (see `docs/SPANS.md`); `--cell-trace <path>`
//! writes one JSONL line per grid cell (parameters + the merged
//! [`DecisionStats`] payload — shape documented in `docs/TRACE_SCHEMA.md`);
//! `--metrics <path>` dumps the first cell's metrics registry (JSONL +
//! Prometheus at `<path>.prom`); `--profile <path>` writes its wall-clock
//! self-profile as collapsed stacks and prints the self/total table.

use scan_bench::{
    dump_instrumented, dump_spans, dump_store, dump_trace, instrument_flags_from_args,
    path_flag_from_args, spans_flags_from_args, store_path_from_args, trace_path_from_args,
    EXPERIMENT_SEED,
};
use scan_platform::config::{ParameterGrid, ScanConfig};
use scan_platform::observers::{DecisionStats, DecisionStatsFactory};
use scan_platform::sweep::{sweep_grid_with, ObservedCell};
use scan_sched::alloc::AllocationPolicy;
use scan_sched::scaling::ScalingPolicy;
use std::fmt::Write as _;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let calibrated = std::env::args().any(|a| a == "--calibrated");

    let mut grid = ParameterGrid::paper();
    if !full {
        grid.intervals = vec![2.0, 2.5, 3.0];
        grid.public_costs = vec![20.0, 50.0];
    }
    if calibrated {
        let mut extra = vec![0.6, 0.8, 1.0, 1.2];
        extra.extend_from_slice(&grid.intervals);
        grid.intervals = extra;
    }

    let (sim_time, reps) = if full { (10_000.0, 10) } else { (2_000.0, 3) };
    let cells = grid.cells();
    println!(
        "§IV-B permutation sweep: {} cells x {reps} repetitions, {sim_time} TU horizon",
        cells.len()
    );

    let mut base = ScanConfig::new(cells[0], EXPERIMENT_SEED);
    base.fixed.sim_time_tu = sim_time;

    if let Some(path) = trace_path_from_args() {
        dump_trace(&base, &path);
    }
    if let Some(path) = store_path_from_args() {
        dump_store(&base, &path);
    }
    let (spans_path, slowest) = spans_flags_from_args();
    if let Some(path) = spans_path {
        dump_spans(&base, &path, slowest);
    }
    let (metrics_path, profile_path) = instrument_flags_from_args();
    dump_instrumented(&base, metrics_path.as_deref(), profile_path.as_deref());

    let results = sweep_grid_with(&base, &cells, reps, &DecisionStatsFactory);

    if let Some(path) = path_flag_from_args("cell-trace") {
        dump_cell_trace(&results, &path);
    }

    // Full per-cell table: the cell's economics, then the decision/queue
    // statistics explaining them (counts are totals over the repetitions).
    println!(
        "\n{:>20} {:>13} {:>5} {:>17} {:>5} | {:>10} {:>7} {:>6} | {:>6} {:>6} {:>6} {:>5}",
        "allocation",
        "scaling",
        "int",
        "reward",
        "cost",
        "profit/run",
        "r/c",
        "lat",
        "hire",
        "wait",
        "qmean",
        "qpeak"
    );
    println!("{}", "-".repeat(123));
    for r in &results {
        println!(
            "{:>20} {:>13} {:>5.1} {:>17} {:>5.0} | {:>10.1} {:>7.2} {:>6.1} | {:>6} {:>6} {:>6.2} {:>5}",
            r.params.allocation.name(),
            r.params.scaling.name(),
            r.params.mean_interval,
            r.params.reward.name(),
            r.params.public_core_cost,
            r.metrics.profit_per_run.mean(),
            r.metrics.reward_to_cost.mean(),
            r.metrics.mean_latency.mean(),
            r.stats.hire_decisions(),
            r.stats.wait_decisions(),
            r.stats.mean_depth(),
            r.stats.peak_depth(),
        );
    }

    summarise(&results);
}

/// Writes one JSONL line per grid cell: the cell's parameters plus the
/// merged [`DecisionStats`] payload.
fn dump_cell_trace(results: &[ObservedCell<DecisionStats>], path: &std::path::Path) {
    let mut out = String::new();
    for r in results {
        let _ = write!(
            out,
            "{{\"allocation\":\"{}\",\"scaling\":\"{}\",\"interval\":{},\
             \"reward\":\"{}\",\"public_cost\":{},\"stats\":",
            r.params.allocation.name(),
            r.params.scaling.name(),
            r.params.mean_interval,
            r.params.reward.name(),
            r.params.public_core_cost,
        );
        r.stats.write_json(&mut out);
        out.push_str("}\n");
    }
    match std::fs::write(path, &out) {
        Ok(()) => println!("cell-trace: wrote {} ({} cells)", path.display(), results.len()),
        Err(e) => eprintln!("cell-trace: failed to write {}: {e}", path.display()),
    }
}

/// The paper's headline claims, checked over matched cells.
fn summarise(results: &[ObservedCell<DecisionStats>]) {
    let find = |allocation: AllocationPolicy, scaling: ScalingPolicy, r: &ObservedCell<_>| {
        results.iter().find(|c| {
            c.params.allocation == allocation
                && c.params.scaling == scaling
                && c.params.mean_interval == r.params.mean_interval
                && c.params.reward == r.params.reward
                && c.params.public_core_cost == r.params.public_core_cost
        })
    };

    // 1. SCAN allocators vs best-constant (same scaling/workload cell).
    let mut alloc_wins = 0usize;
    let mut alloc_cells = 0usize;
    for r in results.iter().filter(|r| r.params.allocation != AllocationPolicy::BestConstant) {
        if let Some(baseline) = find(AllocationPolicy::BestConstant, r.params.scaling, r) {
            alloc_cells += 1;
            if r.metrics.profit_per_run.mean() >= baseline.metrics.profit_per_run.mean() {
                alloc_wins += 1;
            }
        }
    }

    // 2. Predictive scaling vs the baselines (same allocation/workload).
    let mut pred_better_than_worst = 0usize;
    let mut pred_beats_both = 0usize;
    let mut pred_cells = 0usize;
    for r in results.iter().filter(|r| r.params.scaling == ScalingPolicy::Predictive) {
        let (Some(always), Some(never)) = (
            find(r.params.allocation, ScalingPolicy::AlwaysScale, r),
            find(r.params.allocation, ScalingPolicy::NeverScale, r),
        ) else {
            continue;
        };
        pred_cells += 1;
        let p = r.metrics.profit_per_run.mean();
        let a = always.metrics.profit_per_run.mean();
        let n = never.metrics.profit_per_run.mean();
        if p >= a.min(n) {
            pred_better_than_worst += 1;
        }
        if p >= a.max(n) - 1.0 {
            pred_beats_both += 1;
        }
    }

    println!("\nSummary (paper's §IV-B claims):");
    println!(
        "  SCAN allocators >= best-constant baseline in {alloc_wins}/{alloc_cells} matched cells"
    );
    println!(
        "  predictive scaling >= worse baseline in {pred_better_than_worst}/{pred_cells} cells; \
         within 1 CU of (or above) both baselines in {pred_beats_both}/{pred_cells}"
    );
}
