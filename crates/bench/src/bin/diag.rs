//! Diagnostic dump of one session per scaling policy (not a paper
//! artefact; used to calibrate and sanity-check the simulation).

use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_sched::scaling::ScalingPolicy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let interval: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let sim: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2000.0);
    for scaling in
        [ScalingPolicy::Predictive, ScalingPolicy::AlwaysScale, ScalingPolicy::NeverScale]
    {
        let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), EXPERIMENT_SEED);
        cfg.fixed.sim_time_tu = sim;
        let m = run_session(&cfg, 0);
        println!("--- {} @ interval {interval} ---", scaling.name());
        println!(
            "  submitted {} completed {} ({:.1}%)",
            m.jobs_submitted,
            m.jobs_completed,
            100.0 * m.completion_rate()
        );
        println!(
            "  reward {:.0} cost {:.0} profit/run {:.1} r/c {:.2}",
            m.total_reward, m.total_cost, m.profit_per_run, m.reward_to_cost
        );
        println!(
            "  latency mean {:.2} p95 {:.2} | queue mean {:.1} peak {}",
            m.mean_latency, m.p95_latency, m.mean_queue_len, m.peak_queue_len
        );
        println!(
            "  util {:.2} public-share {:.2} core-stages {:.1} vms {} reshapes {} events {}",
            m.worker_utilisation,
            m.public_core_tu_share,
            m.mean_core_stages,
            m.vms_hired,
            m.reshapes,
            m.events
        );
    }
}
