//! Reward-shape ablation (DESIGN.md §8): the two Table I schemes plus the
//! §III-A.2 extensions (deadline, plateau) driven through full sessions.
//!
//! The interesting read-out is the *plan* each reward shape induces and the
//! latency the platform settles at: deadline rewards buy enough parallelism
//! to stay inside the deadline, plateau rewards stop buying speed at the
//! knee, throughput rewards chase speed the hardest.
//!
//! Usage: `cargo run --release -p scan-bench --bin rewards [--quick]`

use scan_bench::{pm, EXPERIMENT_SEED};
use scan_platform::config::{RewardKind, ScanConfig, VariableParams};
use scan_platform::sweep::run_replicated;
use scan_sched::scaling::ScalingPolicy;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sim_time, reps) = if quick { (800.0, 3) } else { (5_000.0, 5) };

    println!("Reward-shape ablation (predictive scaling, best-constant allocation,");
    println!("interval 2.2 TU, public cost 50, horizon {sim_time} TU, {reps} reps)\n");
    println!(
        "{:>18} | {:>21} | {:>9} | {:>9} | {:>11}",
        "reward", "profit/run (CU)", "latency", "p95", "core-stages"
    );
    println!("{}", "-".repeat(82));

    for reward in [
        RewardKind::TimeBased,
        RewardKind::ThroughputBased,
        RewardKind::Deadline,
        RewardKind::Plateau,
    ] {
        let mut cfg =
            ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.2), EXPERIMENT_SEED);
        cfg.variable.reward = reward;
        cfg.fixed.sim_time_tu = sim_time;
        let m = run_replicated(&cfg, reps);
        let p95: f64 =
            m.sessions.iter().map(|s| s.p95_latency).sum::<f64>() / m.sessions.len() as f64;
        println!(
            "{:>18} | {:>21} | {:>9.2} | {:>9.2} | {:>11.1}",
            reward.name(),
            pm(&m.profit_per_run),
            m.mean_latency.mean(),
            p95,
            m.core_stages.mean(),
        );
    }

    println!("\nExpected structure: plateau plans are the leanest (no value below the");
    println!("knee), throughput plans the fastest, deadline p95 sits inside 26.7 TU.");
}
