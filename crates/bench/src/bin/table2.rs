//! Table II — "Per-pipeline-stage scalability factors".
//!
//! Prints the published `a_i, b_i, c_i` next to the values the knowledge
//! base *re-derives* by least-squares regression over a synthetic
//! profiling trace (§III-A.1's GATK study, §IV-1's "determined … by
//! linear regression of offline profiling data"), at both the default and
//! an elevated measurement-noise level.
//!
//! Usage: `cargo run --release -p scan-bench --bin table2`

use scan_platform::broker::DataBroker;
use scan_sim::SimRng;
use scan_workload::gatk::{PipelineModel, PAPER_STAGE_FACTORS};

fn show(noise: f64) {
    let model = PipelineModel::paper();
    let mut rng = SimRng::from_seed_u64(scan_bench::EXPERIMENT_SEED);
    let broker = DataBroker::bootstrap(&model, noise, &mut rng);
    println!("\nProfiling noise {:.0}% (relative σ):", noise * 100.0);
    println!(
        "{:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "stage", "a (pub)", "b (pub)", "c (pub)", "a (fit)", "b (fit)", "c (fit)", "Δa", "Δb", "Δc"
    );
    println!("{}", "-".repeat(96));
    for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
        let fit = broker.learned_model().stages[i];
        println!(
            "{:>6} | {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} | {:>8.4} {:>8.4} {:>8.4}",
            i + 1,
            truth.a,
            truth.b,
            truth.c,
            fit.a,
            fit.b,
            fit.c,
            (fit.a - truth.a).abs(),
            (fit.b - truth.b).abs(),
            (fit.c - truth.c).abs(),
        );
    }
}

fn main() {
    println!("Table II: per-pipeline-stage scalability factors");
    println!("  published values vs. knowledge-base regression over profiling traces");
    println!("  (profile grid: sizes 1-9 GB x threads 1-16 x 3 replicates per cell)");
    show(0.0);
    show(0.02);
    show(0.10);
    println!("\nShape criterion: the regression pipeline recovers Table II exactly at zero");
    println!("noise and within a few percent at realistic measurement noise.");
}
