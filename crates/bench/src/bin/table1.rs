//! Table I — "Variable simulation parameters".
//!
//! Prints the grid exactly as published and smoke-runs one short session
//! for a representative cell of every policy combination, proving each of
//! the 4 × 3 = 12 algorithm pairings executes.
//!
//! Usage: `cargo run --release -p scan-bench --bin table1`

use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{ParameterGrid, ScanConfig, VariableParams};
use scan_platform::session::run_session;

fn main() {
    let grid = ParameterGrid::paper();

    println!("Table I: variable simulation parameters\n");
    println!(
        "  Resource allocation algorithm : {}",
        grid.allocations.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ")
    );
    println!(
        "  Horizontal scaling algorithm  : {}",
        grid.scalings.iter().map(|s| s.name()).collect::<Vec<_>>().join(", ")
    );
    println!(
        "  Mean job inter-arrival (TU)   : {}",
        grid.intervals.iter().map(|i| format!("{i:.1}")).collect::<Vec<_>>().join(", ")
    );
    println!(
        "  Task completion reward fn     : {}",
        grid.rewards.iter().map(|r| r.name()).collect::<Vec<_>>().join(", ")
    );
    println!(
        "  Public tier core cost (CU/TU) : {}",
        grid.public_costs.iter().map(|c| format!("{c:.0}")).collect::<Vec<_>>().join(", ")
    );
    println!("\n  Total grid cells: {}\n", grid.n_cells());

    println!("Smoke run (500 TU, 1 repetition) of each allocation x scaling pairing:");
    println!(
        "{:>20} | {:>13} | {:>9} | {:>10} | {:>8}",
        "allocation", "scaling", "completed", "profit/run", "latency"
    );
    println!("{}", "-".repeat(74));
    for &allocation in &grid.allocations {
        for &scaling in &grid.scalings {
            let v = VariableParams {
                allocation,
                scaling,
                mean_interval: 2.5,
                reward: grid.rewards[0],
                public_core_cost: 50.0,
            };
            let mut cfg = ScanConfig::new(v, EXPERIMENT_SEED);
            cfg.fixed.sim_time_tu = 500.0;
            let m = run_session(&cfg, 0);
            println!(
                "{:>20} | {:>13} | {:>9} | {:>10.1} | {:>8.2}",
                allocation.name(),
                scaling.name(),
                m.jobs_completed,
                m.profit_per_run,
                m.mean_latency
            );
        }
    }
}
