//! Figure 5 — "Reward-to-cost ratio vs. cores for horizontally-scaled,
//! heterogeneous simulation".
//!
//! Per §IV-B: dynamic horizontal scaling *and* heterogeneous workers —
//! stages use different degrees of multithreading, and (simulated) CELAR
//! resizes worker pools as required, paying the 30 s reshape penalty
//! whenever a worker moves to a pool with a different thread count. The
//! x-axis is the total core-stages per pipeline run (Σ shards·threads of
//! the plan); the y-axis is the reward-to-cost ratio.
//!
//! The paper does not state the reward scheme for this figure; the
//! throughput-oriented scheme is used here because it is the one whose
//! published magnitudes (ratio ≈ 3) are on the same order as the reward
//! and cost scales of Table III (see EXPERIMENTS.md for the analysis).
//!
//! Plans along the x-axis form an efficient frontier grown greedily from
//! the serial plan: at each step the single upgrade (one more shard, or
//! the next thread shape, on one stage) with the best latency saved per
//! added core-stage is applied — "the number of cores employed per
//! pipeline run" rises one notch at a time.
//!
//! Usage: `cargo run --release -p scan-bench --bin fig5 [--quick] [--trace <path>]
//! [--store <path>] [--spans <path> [--slowest N]] [--metrics <path>]
//! [--profile <path>]`
//!
//! `--trace <path>` additionally dumps the typed JSONL event trace of one
//! representative session (the first frontier plan), reshapes included;
//! `--store <path>` ingests that session into the columnar trace store
//! and writes its compact SCTS export (see `docs/TRACESTORE.md`);
//! `--spans <path>` derives that session's causal job spans — reshape
//! penalties included — and writes the Chrome/Perfetto timeline plus a
//! critical-path report with the `--slowest N` job table (see
//! `docs/SPANS.md`);
//! `--metrics <path>` dumps that session's metrics registry (JSONL +
//! Prometheus at `<path>.prom`); `--profile <path>` writes its wall-clock
//! self-profile as collapsed stacks and prints the self/total table.

use scan_bench::{
    dump_instrumented, dump_spans, dump_store, dump_trace, instrument_flags_from_args, pm,
    spans_flags_from_args, store_path_from_args, trace_path_from_args, EXPERIMENT_SEED,
    PAPER_REPETITIONS,
};
use scan_platform::config::{RewardKind, ScanConfig, VariableParams};
use scan_platform::sweep::run_replicated;
use scan_sched::alloc::AllocationPolicy;
use scan_sched::plan::{plan_frontier, ExecutionPlan};
use scan_sched::scaling::ScalingPolicy;
use scan_workload::gatk::PipelineModel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (mut sim_time, mut reps) = if quick { (1_000.0, 3) } else { (10_000.0, PAPER_REPETITIONS) };
    if let Some(h) = std::env::var("SCAN_HORIZON").ok().and_then(|v| v.parse().ok()) {
        sim_time = h;
    }
    if let Some(r) = std::env::var("SCAN_REPS").ok().and_then(|v| v.parse().ok()) {
        reps = r;
    }

    println!("Figure 5: reward-to-cost ratio vs. total core-stages per pipeline run");
    println!("  heterogeneous workers + dynamic scaling (reshape penalty 0.5 TU)");
    println!("  reward: throughput-based | public cost: 50 CU/TU | predictive scaling");
    println!("  horizon: {sim_time} TU | repetitions: {reps}\n");

    let model = PipelineModel::paper();
    let frontier = plan_frontier(&model, 5.0, 72);
    // Every point through the paper's 6-24 range, then a sparser tail to
    // exhibit the post-peak decline.
    let picks: Vec<&ExecutionPlan> = frontier
        .iter()
        .filter(|p| {
            let cs = p.total_core_stages();
            if std::env::var("SCAN_COARSE").is_ok() {
                cs <= 24 && cs % 2 == 1 || cs % 16 == 0
            } else {
                cs <= 24 || cs % 8 == 0
            }
        })
        .collect();

    let trace_path = trace_path_from_args();
    let store_path = store_path_from_args();
    let (spans_path, slowest) = spans_flags_from_args();
    let (metrics_path, profile_path) = instrument_flags_from_args();
    let wants_dump = trace_path.is_some()
        || store_path.is_some()
        || spans_path.is_some()
        || metrics_path.is_some()
        || profile_path.is_some();
    if let (true, Some(plan)) = (wants_dump, picks.first()) {
        let mut cfg = ScanConfig::new(
            VariableParams {
                allocation: AllocationPolicy::BestConstant,
                scaling: ScalingPolicy::Predictive,
                mean_interval: 2.0,
                reward: RewardKind::ThroughputBased,
                public_core_cost: 50.0,
            },
            EXPERIMENT_SEED,
        );
        cfg.fixed.sim_time_tu = sim_time;
        cfg.allow_reshape = true;
        cfg.forced_plan = Some(plan.stages.clone());
        if let Some(path) = trace_path {
            dump_trace(&cfg, &path);
        }
        if let Some(path) = store_path {
            dump_store(&cfg, &path);
        }
        if let Some(path) = spans_path {
            dump_spans(&cfg, &path, slowest);
        }
        dump_instrumented(&cfg, metrics_path.as_deref(), profile_path.as_deref());
    }

    println!(
        "{:>12} | {:>21} | {:>10} | plan (shards x threads per stage)",
        "core-stages", "reward/cost", "reshapes"
    );
    println!("{}", "-".repeat(100));

    let mut best: Option<(f64, u32)> = None;
    for plan in picks {
        let mut cfg = ScanConfig::new(
            VariableParams {
                allocation: AllocationPolicy::BestConstant,
                scaling: ScalingPolicy::Predictive,
                mean_interval: 2.0,
                reward: RewardKind::ThroughputBased,
                public_core_cost: 50.0,
            },
            EXPERIMENT_SEED,
        );
        cfg.fixed.sim_time_tu = sim_time;
        cfg.allow_reshape = true;
        cfg.forced_plan = Some(plan.stages.clone());
        let m = run_replicated(&cfg, reps);
        let ratio = m.reward_to_cost.mean();
        let reshapes: f64 =
            m.sessions.iter().map(|s| s.reshapes as f64).sum::<f64>() / m.sessions.len() as f64;
        let plan_str: Vec<String> = plan.stages.iter().map(|(s, t)| format!("{s}x{t}")).collect();
        let cs = plan.total_core_stages();
        println!(
            "{:>12} | {:>21} | {:>10.0} | [{}]",
            cs,
            pm(&m.reward_to_cost),
            reshapes,
            plan_str.join(", ")
        );
        match best {
            Some((b, _)) if b >= ratio => {}
            _ => best = Some((ratio, cs)),
        }
    }

    if let Some((ratio, cs)) = best {
        println!("\nBest configuration: {ratio:.2} reward-to-cost at {cs} core-stages");
        println!("(paper: best ratio 3.11; shape criterion: rise to a sweet spot, then decline)");
    }
}
