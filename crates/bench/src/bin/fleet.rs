//! Multi-tenant fleet smoke + throughput: runs whole fleets to
//! completion at several tenant counts, printing a deterministic
//! per-replication summary on stdout and wall-clock jobs/sec on stderr.
//!
//! The deterministic stdout is the CI smoke contract: the fleet result is
//! a pure function of `(seed, repetition)`, so two invocations — under
//! *different* `RAYON_NUM_THREADS` — must emit byte-identical stdout.
//!
//! Usage: `cargo run --release -p scan-bench --bin fleet [--quick]
//! [--store <path>] [--spans <path> [--slowest N]]` (`--quick` runs the
//! 100-tenant point only; `SCAN_TENANTS=100,1000` overrides the
//! tenant-count axis.)
//!
//! `--store <path>` additionally re-runs the first axis point's fleet
//! with one columnar trace store per tenant session and writes the
//! merged SCTS export (see `docs/TRACESTORE.md`). Like the stdout
//! contract, the merged export is bit-identical across
//! `RAYON_NUM_THREADS` — CI diffs the files from a 1-thread and an
//! 8-thread invocation.
//!
//! `--spans <path>` likewise re-runs the first axis point's fleet with a
//! span-deriving recorder per tenant session and writes the Perfetto
//! timeline of repetition 0 plus the merged critical-path report at
//! `<path>.txt` (with the `--slowest N` job table; see `docs/SPANS.md`).
//! The report covers every repetition and is bit-identical across
//! `RAYON_NUM_THREADS` — CI compares those files too.

use scan_bench::{
    dump_fleet_spans, dump_fleet_store, fleet_cfg, spans_flags_from_args, store_path_from_args,
};
use scan_platform::fleet::run_fleet_replicated;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let axis: Vec<u16> = match std::env::var("SCAN_TENANTS") {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => {
            if quick {
                vec![100]
            } else {
                vec![100, 1_000, 10_000]
            }
        }
    };
    let reps = 2u64;
    println!("fleet: run-to-completion multi-tenant fleets ({reps} replications each)");
    if let (Some(path), Some(&tenants)) = (store_path_from_args(), axis.first()) {
        dump_fleet_store(&fleet_cfg(tenants), reps, &path);
    }
    let (spans_path, slowest) = spans_flags_from_args();
    if let (Some(path), Some(&tenants)) = (spans_path, axis.first()) {
        dump_fleet_spans(&fleet_cfg(tenants), reps, &path, slowest);
    }
    for &tenants in &axis {
        let cfg = fleet_cfg(tenants);
        let t0 = Instant::now();
        let runs = run_fleet_replicated(&cfg, reps);
        let wall = t0.elapsed().as_secs_f64();
        let jobs: u64 = runs.iter().map(|m| m.jobs_completed).sum();
        for (rep, m) in runs.iter().enumerate() {
            println!(
                "tenants={tenants} rep={rep} submitted={} completed={} deferred={} \
                 peak_shared={} events={} ended_at={:.3}",
                m.jobs_submitted,
                m.jobs_completed,
                m.jobs_deferred,
                m.peak_shared_cores,
                m.events,
                m.ended_at_tu
            );
        }
        eprintln!(
            "tenants={tenants}: {jobs} jobs in {wall:.2}s = {:.0} jobs/s",
            jobs as f64 / wall
        );
    }
}
