//! Calibration grid over idle timeout × throttle × overhead factor
//! (development tool, not a paper artefact).
use scan_bench::EXPERIMENT_SEED;
use scan_platform::config::{ScanConfig, VariableParams};
use scan_platform::session::run_session;
use scan_sched::scaling::ScalingPolicy;

fn main() {
    let timeout = 2.0f64;
    let throttle = false;
    for &interval in &[0.5f64, 0.6, 0.7, 0.8, 1.0, 1.2, 1.6, 2.0, 3.0] {
        let mut cfg = ScanConfig::new(
            VariableParams::fig4(ScalingPolicy::Predictive, interval),
            EXPERIMENT_SEED,
        );
        cfg.fixed.sim_time_tu = 2000.0;
        cfg.fixed.idle_timeout_tu = timeout;
        cfg.fixed.private_hire_throttle = throttle;
        cfg.fixed.overhead_price_factor =
            std::env::var("OPF").ok().and_then(|v| v.parse().ok()).unwrap_or(1.6);
        cfg.variable.scaling = match std::env::var("SCALING").as_deref() {
            Ok("always") => ScalingPolicy::AlwaysScale,
            Ok("never") => ScalingPolicy::NeverScale,
            _ => ScalingPolicy::Predictive,
        };
        let m = run_session(&cfg, 0);
        println!(
            "int {interval:3.1} to {timeout:3.1} thr {} | profit {:8.1} lat {:6.2} util {:4.2} vms {:6} q {:5.1} cs {:4.1}",
            throttle as u8, m.profit_per_run, m.mean_latency, m.worker_utilisation,
            m.vms_hired, m.mean_queue_len, m.mean_core_stages
        );
    }
}
