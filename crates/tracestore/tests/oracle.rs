//! Property tests: the columnar store must answer aggregation queries
//! exactly like a naive Vec-of-events oracle that never left row-major
//! land.
//!
//! The oracle replays the same event stream into a plain `Vec`, tracks
//! vm→tier itself, and folds with the same row-order sums and
//! `total_cmp` nearest-rank percentiles the query layer documents — so
//! every comparison is exact (`==` on f64), not approximate. Any drift
//! between the staged vector operators and the obvious scalar loop is a
//! bug in the store.

use proptest::prelude::*;
use scan_sim::{SimTime, TraceEvent};
use scan_tracestore::{tier_label, Agg, EventKind, Filter, Query, TraceStore, UNKNOWN_TIER};

/// One generated step: a time increment plus an event selector with its
/// payload knobs.
type Step = (u8, u32, u32, f64);

/// Decodes a generated step into an event, mirroring the small vocabulary
/// the aggregation tests care about (dispatches with waits, hires that
/// move vm tiers, queue-depth samples, completions, admissions).
fn event_of(selector: u8, a: u32, b: u32, x: f64) -> TraceEvent {
    match selector % 6 {
        0 => TraceEvent::QueueDepthSampled { depth: a % 100 },
        1 => TraceEvent::SubtaskDispatched {
            job: u64::from(a % 50),
            stage: b % 4,
            vm: u64::from(b % 8),
            cores: 1 + a % 4,
            waited_tu: x,
            busy_tu: x * 0.5,
        },
        2 => TraceEvent::VmHired { vm: u64::from(b % 8), tier: a % 3, cores: 2 + b % 6 },
        3 => TraceEvent::JobCompleted {
            job: u64::from(a % 50),
            latency_tu: x * 2.0,
            reward: x - 1.0,
            core_stages: f64::from(b % 30),
        },
        4 => TraceEvent::AdmissionDeferred { tenant: a % 4, jobs: 1 + b % 3, backlog: b % 9 },
        _ => TraceEvent::VmReleased { vm: u64::from(b % 8), tier: a % 3, cores: 2 },
    }
}

/// The oracle: a flat event log plus the same ingest-time enrichments
/// the store performs, computed the obvious scalar way.
#[derive(Default)]
struct Oracle {
    rows: Vec<(f64, u32, TraceEvent, &'static str)>,
    vm_tier: Vec<Option<u32>>,
}

impl Oracle {
    fn push(&mut self, t: f64, tenant: u32, event: TraceEvent) {
        if let TraceEvent::VmHired { vm, tier, .. } = event {
            let idx = vm as usize;
            if idx >= self.vm_tier.len() {
                self.vm_tier.resize(idx + 1, None);
            }
            self.vm_tier[idx] = Some(tier);
        }
        let tier = match event {
            TraceEvent::SubtaskDispatched { vm, .. } => self
                .vm_tier
                .get(vm as usize)
                .copied()
                .flatten()
                .map(tier_label)
                .unwrap_or(UNKNOWN_TIER),
            _ => "",
        };
        let tenant = match event {
            TraceEvent::AdmissionDeferred { tenant, .. } => tenant,
            _ => tenant,
        };
        self.rows.push((t, tenant, event, tier));
    }

    fn nearest_rank(mut values: Vec<f64>, q: f64) -> f64 {
        values.sort_by(f64::total_cmp);
        let rank = ((q * values.len() as f64).ceil() as usize).max(1);
        values[rank - 1]
    }
}

/// Builds the store and the oracle from one generated stream. Times are
/// cumulative non-negative deltas, so the monotone-time ingest contract
/// holds by construction.
fn build(steps: &[Step]) -> (TraceStore, Oracle) {
    let mut store = TraceStore::new();
    let mut oracle = Oracle::default();
    let mut t = 0.0f64;
    for &(selector, a, b, x) in steps {
        t += x * 0.25;
        let event = event_of(selector, a, b, x);
        store.ingest(SimTime::new(t), &event);
        oracle.push(t, 0, event);
    }
    (store, oracle)
}

proptest! {
    #[test]
    fn counts_match_the_oracle(
        steps in proptest::collection::vec((0u8..12, 0u32..1000, 0u32..1000, 0.0f64..8.0), 0..300),
        window in (0.0f64..100.0, 1.0f64..200.0),
    ) {
        let (store, oracle) = build(&steps);
        let (lo, span) = window;
        let hi = lo + span;
        for kind in [EventKind::QueueDepth, EventKind::SubtaskDispatched, EventKind::VmHired] {
            let rows = Query::over(kind)
                .between_tu(lo, hi)
                .count()
                .run(&store)
                .unwrap();
            let expected = oracle
                .rows
                .iter()
                .filter(|(t, _, e, _)| EventKind::of(e) == kind && lo <= *t && *t < hi)
                .count();
            let got = rows.first().map(|r| r.value).unwrap_or(0.0);
            prop_assert_eq!(got, expected as f64);
        }
    }

    #[test]
    fn sums_and_means_match_the_oracle(
        steps in proptest::collection::vec((0u8..12, 0u32..1000, 0u32..1000, 0.0f64..8.0), 1..300),
    ) {
        let (store, oracle) = build(&steps);
        let waits: Vec<f64> = oracle
            .rows
            .iter()
            .filter_map(|(_, _, e, _)| match e {
                TraceEvent::SubtaskDispatched { waited_tu, .. } => Some(*waited_tu),
                _ => None,
            })
            .collect();
        let rows = Query::over(EventKind::SubtaskDispatched)
            .aggregate(Agg::Sum, "waited_tu")
            .run(&store)
            .unwrap();
        if waits.is_empty() {
            prop_assert!(rows.is_empty());
        } else {
            // Row-order sums on both sides: exact equality, not approx.
            prop_assert_eq!(rows[0].value, waits.iter().sum::<f64>());
            let mean = Query::over(EventKind::SubtaskDispatched)
                .aggregate(Agg::Mean, "waited_tu")
                .run(&store)
                .unwrap();
            prop_assert_eq!(mean[0].value, waits.iter().sum::<f64>() / waits.len() as f64);
        }
    }

    #[test]
    fn percentiles_per_tier_match_the_oracle(
        steps in proptest::collection::vec((0u8..12, 0u32..1000, 0u32..1000, 0.0f64..8.0), 1..300),
    ) {
        let (store, oracle) = build(&steps);
        for (agg, q) in [(Agg::P50, 0.50), (Agg::P95, 0.95)] {
            let rows = Query::over(EventKind::SubtaskDispatched)
                .group_by("tier")
                .aggregate(agg, "waited_tu")
                .run(&store)
                .unwrap();
            let mut tiers: Vec<&str> = oracle
                .rows
                .iter()
                .filter(|(_, _, e, _)| matches!(e, TraceEvent::SubtaskDispatched { .. }))
                .map(|(_, _, _, tier)| *tier)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            tiers.sort();
            prop_assert_eq!(rows.len(), tiers.len());
            for (row, tier) in rows.iter().zip(&tiers) {
                prop_assert_eq!(row.group.as_deref(), Some(*tier));
                let values: Vec<f64> = oracle
                    .rows
                    .iter()
                    .filter_map(|(_, _, e, row_tier)| match e {
                        TraceEvent::SubtaskDispatched { waited_tu, .. } if row_tier == tier => {
                            Some(*waited_tu)
                        }
                        _ => None,
                    })
                    .collect();
                prop_assert_eq!(row.value, Oracle::nearest_rank(values, q));
            }
        }
    }

    #[test]
    fn max_and_filters_match_the_oracle(
        steps in proptest::collection::vec((0u8..12, 0u32..1000, 0u32..1000, 0.0f64..8.0), 1..300),
        depth_cap in 1u32..100,
    ) {
        let (store, oracle) = build(&steps);
        let depths: Vec<u32> = oracle
            .rows
            .iter()
            .filter_map(|(_, _, e, _)| match e {
                TraceEvent::QueueDepthSampled { depth } if *depth < depth_cap => Some(*depth),
                _ => None,
            })
            .collect();
        let rows = Query::over(EventKind::QueueDepth)
            .filter(Filter::RangeF64 { column: "depth".into(), lo: 0.0, hi: f64::from(depth_cap) })
            .aggregate(Agg::Max, "depth")
            .run(&store);
        // depth is u32, not f64 — RangeF64 must be rejected, not coerced.
        prop_assert!(rows.is_err());

        let rows = Query::over(EventKind::QueueDepth)
            .aggregate(Agg::Max, "depth")
            .run(&store)
            .unwrap();
        let all: Vec<u32> = oracle
            .rows
            .iter()
            .filter_map(|(_, _, e, _)| match e {
                TraceEvent::QueueDepthSampled { depth } => Some(*depth),
                _ => None,
            })
            .collect();
        if all.is_empty() {
            prop_assert!(rows.is_empty());
        } else {
            prop_assert_eq!(rows[0].value, f64::from(*all.iter().max().unwrap()));
        }
        prop_assert!(depths.len() <= all.len());
    }

    #[test]
    fn exports_round_trip_and_answer_identically(
        steps in proptest::collection::vec((0u8..12, 0u32..1000, 0u32..1000, 0.0f64..8.0), 0..200),
    ) {
        let (store, _) = build(&steps);
        let bytes = store.to_bytes();
        let decoded = TraceStore::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
        let a = Query::over(EventKind::SubtaskDispatched)
            .group_by("tier")
            .aggregate(Agg::P95, "waited_tu")
            .run(&store)
            .unwrap();
        let b = Query::over(EventKind::SubtaskDispatched)
            .group_by("tier")
            .aggregate(Agg::P95, "waited_tu")
            .run(&decoded)
            .unwrap();
        prop_assert_eq!(a, b);
    }
}
