//! # scan-tracestore — columnar in-process trace store
//!
//! The observability layer's database: an [`Observer`](scan_sim::Observer)
//! that ingests the simulator's [`TraceEvent`](scan_sim::TraceEvent)
//! stream into typed, dictionary-encoded columnar tables during the run
//! ([`TraceStore`]), an aggregation [`Query`] layer executed as staged
//! vector operators in the LocustDB style (filter → group/bucket →
//! gather → aggregate), and a compact `SCTS` export whose trailing
//! FNV-1a 64 digest is the fingerprint CI pins instead of hashing
//! megabytes of JSONL.
//!
//! Where the JSONL sink (`scan_sim::JsonlWriter`) serializes every event
//! to text for consumers to re-parse, the store keeps events queryable
//! in-process: tests and tools ask for "p95 queue wait per tier" as a
//! [`Query`] instead of scraping logs. Fleet runs shard one store per
//! session over rayon through [`TraceStoreFactory`] and merge in a fixed
//! order, so merged stores — and their exports and digests — are
//! bit-identical across `RAYON_NUM_THREADS`.
//!
//! The full design — column layouts per event kind, dictionary encoding,
//! the query API, the export format, and the determinism guarantees —
//! is documented in `docs/TRACESTORE.md`, which `scan-lint`'s
//! `store-doc-drift` rule keeps in sync with [`schema`] in both
//! directions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod column;
pub mod export;
pub mod query;
pub mod schema;
pub mod store;

pub use column::{Column, Interner};
pub use export::{fnv1a64, ExportError, MAGIC, VERSION};
pub use query::{Filter, Query, QueryError, Row, Scratchpad, VecOp};
pub use schema::{Agg, ColumnSpec, ColumnType, EventKind, ALL_KINDS};
pub use store::{tier_label, Table, TraceStore, TraceStoreFactory, UNKNOWN_TIER};
