//! The store's data model: one column set per trace-event kind.
//!
//! Every [`TraceEvent`] variant maps to one
//! [`EventKind`] table whose typed columns are declared here, in
//! [`EventKind::columns`]. The declaration is the single source of truth
//! for the whole crate: ingest pushes values in declaration order, the
//! query layer resolves column names against it, the export writes
//! columns in declaration order, and `scan-lint`'s `store-doc-drift`
//! rule cross-checks it against `docs/TRACESTORE.md` in both directions
//! (so a column added or renamed here without its documentation row
//! fails CI, and vice versa).
//!
//! Two implicit columns precede every table's declared columns and are
//! therefore *not* listed in [`EventKind::columns`]:
//!
//! * `t` — the event's simulation time, stored as the `u64` bit pattern
//!   of the non-negative `f64` TU value (bit order equals numeric order,
//!   so the column is monotone and delta-encodes well);
//! * `tenant` — the owning tenant's id (0 for single-tenant sessions;
//!   the event's own `tenant` payload for the admission events).

use scan_sim::TraceEvent;

/// The physical type of one stored column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Plain `u32` values (ids, stages, core counts, depths).
    U32,
    /// Plain `u64` values (large counters).
    U64,
    /// `f64` values (times in TU, costs in CU, sizes).
    F64,
    /// Dictionary-encoded labels: a per-column string dictionary plus a
    /// `u32` code per row.
    Dict,
}

/// One declared column of an [`EventKind`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name; equals the `TraceEvent` field (and JSONL key) it
    /// stores, except for derived columns such as `tier` on
    /// `subtask_dispatched`.
    pub name: &'static str,
    /// Physical type of the column.
    pub ty: ColumnType,
}

/// Declares a `u32` column.
const fn u32c(name: &'static str) -> ColumnSpec {
    ColumnSpec { name, ty: ColumnType::U32 }
}

/// Declares a `u64` column.
const fn u64c(name: &'static str) -> ColumnSpec {
    ColumnSpec { name, ty: ColumnType::U64 }
}

/// Declares an `f64` column.
const fn f64c(name: &'static str) -> ColumnSpec {
    ColumnSpec { name, ty: ColumnType::F64 }
}

/// Declares a dictionary-encoded label column.
const fn dictc(name: &'static str) -> ColumnSpec {
    ColumnSpec { name, ty: ColumnType::Dict }
}

/// One table of the store: the event kinds of
/// [`TraceEvent`], in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// `job_arrived` rows.
    JobArrived,
    /// `job_stage_advanced` rows.
    JobStageAdvanced,
    /// `job_completed` rows.
    JobCompleted,
    /// `slo_violation` rows.
    SloViolation,
    /// `subtask_dispatched` rows.
    SubtaskDispatched,
    /// `subtask_done` rows.
    SubtaskDone,
    /// `vm_hired` rows.
    VmHired,
    /// `vm_booted` rows.
    VmBooted,
    /// `vm_reshaped` rows.
    VmReshaped,
    /// `vm_released` rows.
    VmReleased,
    /// `scaling_decision` rows.
    ScalingDecision,
    /// `queue_depth` rows.
    QueueDepth,
    /// `admission_deferred` rows.
    AdmissionDeferred,
    /// `admission_resumed` rows.
    AdmissionResumed,
    /// `tier_settled` rows.
    TierSettled,
    /// `run_ended` rows.
    RunEnded,
}

/// Every kind, in table order (the order tables appear in the export).
pub const ALL_KINDS: [EventKind; 16] = [
    EventKind::JobArrived,
    EventKind::JobStageAdvanced,
    EventKind::JobCompleted,
    EventKind::SloViolation,
    EventKind::SubtaskDispatched,
    EventKind::SubtaskDone,
    EventKind::VmHired,
    EventKind::VmBooted,
    EventKind::VmReshaped,
    EventKind::VmReleased,
    EventKind::ScalingDecision,
    EventKind::QueueDepth,
    EventKind::AdmissionDeferred,
    EventKind::AdmissionResumed,
    EventKind::TierSettled,
    EventKind::RunEnded,
];

impl EventKind {
    /// The kind an event is stored under.
    pub fn of(event: &TraceEvent) -> EventKind {
        match event {
            TraceEvent::JobArrived { .. } => Self::JobArrived,
            TraceEvent::JobStageAdvanced { .. } => Self::JobStageAdvanced,
            TraceEvent::JobCompleted { .. } => Self::JobCompleted,
            TraceEvent::SloViolation { .. } => Self::SloViolation,
            TraceEvent::SubtaskDispatched { .. } => Self::SubtaskDispatched,
            TraceEvent::SubtaskDone { .. } => Self::SubtaskDone,
            TraceEvent::VmHired { .. } => Self::VmHired,
            TraceEvent::VmBooted { .. } => Self::VmBooted,
            TraceEvent::VmReshaped { .. } => Self::VmReshaped,
            TraceEvent::VmReleased { .. } => Self::VmReleased,
            TraceEvent::ScalingDecision { .. } => Self::ScalingDecision,
            TraceEvent::QueueDepthSampled { .. } => Self::QueueDepth,
            TraceEvent::AdmissionDeferred { .. } => Self::AdmissionDeferred,
            TraceEvent::AdmissionResumed { .. } => Self::AdmissionResumed,
            TraceEvent::TierSettled { .. } => Self::TierSettled,
            TraceEvent::RunEnded { .. } => Self::RunEnded,
        }
    }

    /// Stable lowercase table tag; equals
    /// [`TraceEvent::kind`](scan_sim::TraceEvent::kind) for the stored
    /// variant.
    pub fn tag(self) -> &'static str {
        match self {
            Self::JobArrived => "job_arrived",
            Self::JobStageAdvanced => "job_stage_advanced",
            Self::JobCompleted => "job_completed",
            Self::SloViolation => "slo_violation",
            Self::SubtaskDispatched => "subtask_dispatched",
            Self::SubtaskDone => "subtask_done",
            Self::VmHired => "vm_hired",
            Self::VmBooted => "vm_booted",
            Self::VmReshaped => "vm_reshaped",
            Self::VmReleased => "vm_released",
            Self::ScalingDecision => "scaling_decision",
            Self::QueueDepth => "queue_depth",
            Self::AdmissionDeferred => "admission_deferred",
            Self::AdmissionResumed => "admission_resumed",
            Self::TierSettled => "tier_settled",
            Self::RunEnded => "run_ended",
        }
    }

    /// The declared columns of this kind's table, in storage order.
    ///
    /// Ids (`job`, `vm`) are stored as `u32`: upstream they are arena
    /// slot indices that the platform itself keeps in `u32`, so the
    /// narrowing is lossless in practice (values above `u32::MAX`
    /// saturate). `tier` is dictionary-encoded through
    /// [`tier_label`](crate::store::tier_label) rather than stored as a
    /// raw index; `subtask_dispatched.tier` is *derived* at ingest from
    /// the dispatching VM's hire/reshape history.
    pub fn columns(self) -> &'static [ColumnSpec] {
        // One `const` per kind: const-fn calls are not promoted to
        // `'static` behind a plain `&[...]`, but const items are.
        const JOB_ARRIVED: &[ColumnSpec] = &[u32c("job"), f64c("size_units"), f64c("submitted_tu")];
        const SLO_VIOLATION: &[ColumnSpec] = &[u32c("job"), f64c("latency_tu"), f64c("target_tu")];
        const JOB_STAGE_ADVANCED: &[ColumnSpec] =
            &[u32c("job"), u32c("stage"), u32c("shards"), u32c("cores")];
        const JOB_COMPLETED: &[ColumnSpec] =
            &[u32c("job"), f64c("latency_tu"), f64c("reward"), f64c("core_stages")];
        const SUBTASK_DISPATCHED: &[ColumnSpec] = &[
            u32c("job"),
            u32c("stage"),
            u32c("vm"),
            u32c("cores"),
            f64c("waited_tu"),
            f64c("busy_tu"),
            dictc("tier"),
        ];
        const SUBTASK_DONE: &[ColumnSpec] = &[u32c("job"), u32c("stage"), u32c("vm")];
        const VM_HIRED: &[ColumnSpec] = &[u32c("vm"), dictc("tier"), u32c("cores")];
        const VM_BOOTED: &[ColumnSpec] = &[u32c("vm"), u32c("cores")];
        const VM_RESHAPED: &[ColumnSpec] =
            &[u32c("vm"), dictc("tier"), u32c("cores_from"), u32c("cores_to")];
        const VM_RELEASED: &[ColumnSpec] = &[u32c("vm"), dictc("tier"), u32c("cores")];
        const SCALING_DECISION: &[ColumnSpec] = &[
            u32c("stage"),
            u32c("cores"),
            u32c("queued_jobs"),
            f64c("delay_cost"),
            f64c("hire_cost"),
            dictc("choice"),
        ];
        const QUEUE_DEPTH: &[ColumnSpec] = &[u32c("depth")];
        const ADMISSION: &[ColumnSpec] = &[u32c("jobs"), u32c("backlog")];
        const TIER_SETTLED: &[ColumnSpec] = &[dictc("tier"), f64c("cost"), f64c("core_tu")];
        const RUN_ENDED: &[ColumnSpec] = &[u64c("events_dispatched")];
        match self {
            Self::JobArrived => JOB_ARRIVED,
            Self::JobStageAdvanced => JOB_STAGE_ADVANCED,
            Self::JobCompleted => JOB_COMPLETED,
            Self::SloViolation => SLO_VIOLATION,
            Self::SubtaskDispatched => SUBTASK_DISPATCHED,
            Self::SubtaskDone => SUBTASK_DONE,
            Self::VmHired => VM_HIRED,
            Self::VmBooted => VM_BOOTED,
            Self::VmReshaped => VM_RESHAPED,
            Self::VmReleased => VM_RELEASED,
            Self::ScalingDecision => SCALING_DECISION,
            Self::QueueDepth => QUEUE_DEPTH,
            Self::AdmissionDeferred => ADMISSION,
            Self::AdmissionResumed => ADMISSION,
            Self::TierSettled => TIER_SETTLED,
            Self::RunEnded => RUN_ENDED,
        }
    }

    /// The position of a declared column by name.
    pub fn column_index(self, name: &str) -> Option<usize> {
        self.columns().iter().position(|c| c.name == name)
    }
}

/// The aggregation functions the query layer can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count of the selection (no value column needed).
    Count,
    /// Sum of the value column, accumulated in row order.
    Sum,
    /// Arithmetic mean of the value column (sum in row order / count).
    Mean,
    /// Median by the nearest-rank method over `total_cmp`-sorted values.
    P50,
    /// 95th percentile, nearest-rank over `total_cmp`-sorted values.
    P95,
    /// Maximum by `total_cmp` (NaNs sort above every number).
    Max,
}

impl Agg {
    /// Stable lowercase label (used in query results and the docs).
    pub fn name(self) -> &'static str {
        match self {
            Self::Count => "count",
            Self::Sum => "sum",
            Self::Mean => "mean",
            Self::P50 => "p50",
            Self::P95 => "p95",
            Self::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::ScalingChoice;

    #[test]
    fn kind_tags_match_trace_event_kind() {
        let samples = [
            TraceEvent::JobArrived { job: 1, size_units: 2.0, submitted_tu: 0.0 },
            TraceEvent::JobStageAdvanced { job: 1, stage: 0, shards: 4, cores: 2 },
            TraceEvent::JobCompleted { job: 1, latency_tu: 3.0, reward: 4.0, core_stages: 8.0 },
            TraceEvent::SloViolation { job: 1, latency_tu: 30.0, target_tu: 26.0 },
            TraceEvent::SubtaskDispatched {
                job: 1,
                stage: 0,
                vm: 2,
                cores: 2,
                waited_tu: 0.5,
                busy_tu: 1.5,
            },
            TraceEvent::SubtaskDone { job: 1, stage: 0, vm: 2 },
            TraceEvent::VmHired { vm: 2, tier: 1, cores: 2 },
            TraceEvent::VmBooted { vm: 2, cores: 2 },
            TraceEvent::VmReshaped { vm: 2, tier: 0, cores_from: 2, cores_to: 4 },
            TraceEvent::VmReleased { vm: 2, tier: 1, cores: 2 },
            TraceEvent::ScalingDecision {
                stage: 1,
                cores: 2,
                queued_jobs: 5,
                delay_cost: 1.0,
                hire_cost: 2.0,
                choice: ScalingChoice::Wait,
            },
            TraceEvent::QueueDepthSampled { depth: 11 },
            TraceEvent::AdmissionDeferred { tenant: 3, jobs: 2, backlog: 2 },
            TraceEvent::AdmissionResumed { tenant: 3, jobs: 2, backlog: 0 },
            TraceEvent::TierSettled { tier: 0, cost: 100.0, core_tu: 20.0 },
            TraceEvent::RunEnded { events_dispatched: 12345 },
        ];
        assert_eq!(samples.len(), ALL_KINDS.len(), "one sample per kind");
        for (sample, kind) in samples.iter().zip(ALL_KINDS) {
            assert_eq!(EventKind::of(sample), kind);
            assert_eq!(kind.tag(), sample.kind(), "table tag equals the JSONL kind tag");
        }
    }

    #[test]
    fn kind_order_matches_discriminants() {
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            assert_eq!(*kind as usize, i);
        }
    }

    #[test]
    fn column_names_are_unique_per_kind() {
        for kind in ALL_KINDS {
            let cols = kind.columns();
            for (i, a) in cols.iter().enumerate() {
                assert_ne!(a.name, "t", "t is implicit");
                assert_ne!(a.name, "tenant", "tenant is implicit");
                for b in &cols[i + 1..] {
                    assert_ne!(a.name, b.name, "duplicate column in {}", kind.tag());
                }
            }
            assert_eq!(kind.column_index(cols[0].name), Some(0));
            assert_eq!(kind.column_index("no_such_column"), None);
        }
    }
}
