//! The in-process columnar trace store: an [`Observer`] that turns the
//! event stream into per-kind typed tables during the run.
//!
//! Ingest is a match on the event variant plus a handful of `Vec`
//! pushes — no strings are formatted and nothing is re-parsed later, in
//! contrast to the JSONL sink whose output every consumer had to decode
//! again. Two enrichments happen at ingest time because they are free
//! while the stream is live and expensive afterwards:
//!
//! * **Tier attribution.** The store tracks every VM's current tier from
//!   its `vm_hired`/`vm_reshaped` history, so `subtask_dispatched` rows
//!   carry a derived `tier` label — the "p95 queue wait per tier" query
//!   needs no join.
//! * **Tenant stamping.** Every row records its tenant (0 for solo
//!   sessions); merged fleet stores therefore stay per-tenant queryable.
//!
//! Merging ([`Merge`]) concatenates tables row-wise, remapping
//! dictionary codes; callers merge in a fixed (repetition, tenant)
//! order, so merged stores — and their exports — are bit-identical for
//! any `RAYON_NUM_THREADS` (the same contract every observer in this
//! workspace honours; see `docs/TRACESTORE.md` § Determinism).

use crate::column::Column;
use crate::schema::{EventKind, ALL_KINDS};
use scan_sim::{Merge, Observer, ObserverFactory, SimTime, TraceEvent};

/// The label a tier index is stored under: the catalogue order of
/// `Platform::new` (0 = private, 1 = public); later indices would be
/// spot-style tiers and keep their numeric name until they earn one.
pub fn tier_label(tier: u32) -> &'static str {
    match tier {
        0 => "private",
        1 => "public",
        _ => "tier2+",
    }
}

/// The label used when a dispatching VM was never seen being hired
/// (possible only for synthetic streams; live sessions always hire
/// before dispatching).
pub const UNKNOWN_TIER: &str = "unknown";

/// One event kind's columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    kind: EventKind,
    /// Event times as `f64` bit patterns (monotone non-decreasing).
    t_bits: Vec<u64>,
    /// Owning tenant per row.
    tenant: Vec<u32>,
    /// Declared columns, parallel to [`EventKind::columns`].
    cols: Vec<Column>,
}

impl Table {
    fn new(kind: EventKind) -> Table {
        Table {
            kind,
            t_bits: Vec::new(),
            tenant: Vec::new(),
            cols: kind.columns().iter().map(|spec| Column::new(spec.ty)).collect(),
        }
    }

    /// The kind whose rows this table holds.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.t_bits.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.t_bits.is_empty()
    }

    /// Event time of row `i`, in TU.
    pub fn time_tu(&self, i: usize) -> f64 {
        f64::from_bits(self.t_bits[i])
    }

    /// The raw time column (bit patterns).
    pub fn t_bits(&self) -> &[u64] {
        &self.t_bits
    }

    /// The tenant column.
    pub fn tenant(&self) -> &[u32] {
        &self.tenant
    }

    /// The declared columns, in [`EventKind::columns`] order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// A declared column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.kind.column_index(name).map(|i| &self.cols[i])
    }

    /// Rebuilds a table from decoded parts (export reader). Lengths are
    /// the reader's responsibility; `check_invariants` re-verifies.
    pub(crate) fn from_parts(
        kind: EventKind,
        t_bits: Vec<u64>,
        tenant: Vec<u32>,
        cols: Vec<Column>,
    ) -> Table {
        Table { kind, t_bits, tenant, cols }
    }

    fn push_meta(&mut self, at: SimTime, tenant: u32) {
        self.t_bits.push(at.as_tu().to_bits());
        self.tenant.push(tenant);
    }

    fn append(&mut self, other: &Table) {
        self.t_bits.extend_from_slice(&other.t_bits);
        self.tenant.extend_from_slice(&other.tenant);
        for (mine, theirs) in self.cols.iter_mut().zip(&other.cols) {
            mine.append(theirs);
        }
    }
}

/// Saturating id narrowing: upstream ids are `u32` arena slots carried
/// in `u64` fields, so this is lossless for live streams.
fn narrow(id: u64) -> u32 {
    u32::try_from(id).unwrap_or(u32::MAX)
}

/// The columnar trace store. Build one per session (it is an
/// [`Observer`]), or let [`TraceStoreFactory`] build one per parallel
/// session and merge the results.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStore {
    tables: Vec<Table>,
    /// Tenant id stamped on every ingested row (admission events carry
    /// their own tenant and override the stamp).
    tenant: u32,
    /// VM id → current tier index, maintained from hire/reshape events.
    vm_tier: Vec<u32>,
    /// Total events ingested (= Σ table rows).
    events: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStore {
    /// An empty store stamping tenant 0 (single-tenant sessions).
    pub fn new() -> TraceStore {
        Self::for_tenant(0)
    }

    /// An empty store stamping every row with `tenant` (fleet sessions).
    pub fn for_tenant(tenant: u32) -> TraceStore {
        TraceStore {
            tables: ALL_KINDS.iter().map(|&k| Table::new(k)).collect(),
            tenant,
            vm_tier: Vec::new(),
            events: 0,
        }
    }

    /// The table for `kind` (possibly empty).
    pub fn table(&self, kind: EventKind) -> &Table {
        &self.tables[kind as usize]
    }

    /// All tables, in [`ALL_KINDS`] order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Total events ingested across all tables.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Rebuilds a store from decoded tables (export reader). The
    /// vm→tier scratch map is not part of the persisted state — derived
    /// columns were materialized at ingest time — so a decoded store
    /// queries identically but should not ingest further events.
    pub(crate) fn from_tables(tables: Vec<Table>) -> TraceStore {
        let events = tables.iter().map(|t| t.rows() as u64).sum();
        TraceStore { tables, tenant: 0, vm_tier: Vec::new(), events }
    }

    /// The tier currently attributed to `vm`, as a label.
    fn tier_of(&self, vm: u64) -> &'static str {
        match self.vm_tier.get(vm as usize) {
            Some(&t) if t != u32::MAX => tier_label(t),
            _ => UNKNOWN_TIER,
        }
    }

    fn note_tier(&mut self, vm: u64, tier: u32) {
        let idx = vm as usize;
        if idx >= self.vm_tier.len() {
            self.vm_tier.resize(idx + 1, u32::MAX);
        }
        self.vm_tier[idx] = tier;
    }

    /// Ingests one event (the [`Observer`] impl delegates here).
    pub fn ingest(&mut self, at: SimTime, event: &TraceEvent) {
        let kind = EventKind::of(event);
        self.events += 1;
        // Tier attribution must be current before the row is written.
        match *event {
            TraceEvent::VmHired { vm, tier, .. } | TraceEvent::VmReshaped { vm, tier, .. } => {
                self.note_tier(vm, tier)
            }
            _ => {}
        }
        let tier_attr = match *event {
            TraceEvent::SubtaskDispatched { vm, .. } => Some(self.tier_of(vm)),
            _ => None,
        };
        let tenant = match *event {
            TraceEvent::AdmissionDeferred { tenant, .. }
            | TraceEvent::AdmissionResumed { tenant, .. } => tenant,
            _ => self.tenant,
        };
        let table = &mut self.tables[kind as usize];
        table.push_meta(at, tenant);
        let cols = &mut table.cols;
        match *event {
            TraceEvent::JobArrived { job, size_units, submitted_tu } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_f64(size_units);
                cols[2].push_f64(submitted_tu);
            }
            TraceEvent::JobStageAdvanced { job, stage, shards, cores } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_u32(stage);
                cols[2].push_u32(shards);
                cols[3].push_u32(cores);
            }
            TraceEvent::JobCompleted { job, latency_tu, reward, core_stages } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_f64(latency_tu);
                cols[2].push_f64(reward);
                cols[3].push_f64(core_stages);
            }
            TraceEvent::SloViolation { job, latency_tu, target_tu } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_f64(latency_tu);
                cols[2].push_f64(target_tu);
            }
            TraceEvent::SubtaskDispatched { job, stage, vm, cores, waited_tu, busy_tu } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_u32(stage);
                cols[2].push_u32(narrow(vm));
                cols[3].push_u32(cores);
                cols[4].push_f64(waited_tu);
                cols[5].push_f64(busy_tu);
                cols[6].push_label(tier_attr.unwrap_or(UNKNOWN_TIER));
            }
            TraceEvent::SubtaskDone { job, stage, vm } => {
                cols[0].push_u32(narrow(job));
                cols[1].push_u32(stage);
                cols[2].push_u32(narrow(vm));
            }
            TraceEvent::VmHired { vm, tier, cores } => {
                cols[0].push_u32(narrow(vm));
                cols[1].push_label(tier_label(tier));
                cols[2].push_u32(cores);
            }
            TraceEvent::VmBooted { vm, cores } => {
                cols[0].push_u32(narrow(vm));
                cols[1].push_u32(cores);
            }
            TraceEvent::VmReshaped { vm, tier, cores_from, cores_to } => {
                cols[0].push_u32(narrow(vm));
                cols[1].push_label(tier_label(tier));
                cols[2].push_u32(cores_from);
                cols[3].push_u32(cores_to);
            }
            TraceEvent::VmReleased { vm, tier, cores } => {
                cols[0].push_u32(narrow(vm));
                cols[1].push_label(tier_label(tier));
                cols[2].push_u32(cores);
            }
            TraceEvent::ScalingDecision {
                stage,
                cores,
                queued_jobs,
                delay_cost,
                hire_cost,
                choice,
            } => {
                cols[0].push_u32(stage);
                cols[1].push_u32(cores);
                cols[2].push_u32(queued_jobs);
                cols[3].push_f64(delay_cost);
                cols[4].push_f64(hire_cost);
                cols[5].push_label(choice.name());
            }
            TraceEvent::QueueDepthSampled { depth } => {
                cols[0].push_u32(depth);
            }
            TraceEvent::AdmissionDeferred { jobs, backlog, .. }
            | TraceEvent::AdmissionResumed { jobs, backlog, .. } => {
                cols[0].push_u32(jobs);
                cols[1].push_u32(backlog);
            }
            TraceEvent::TierSettled { tier, cost, core_tu } => {
                cols[0].push_label(tier_label(tier));
                cols[1].push_f64(cost);
                cols[2].push_f64(core_tu);
            }
            TraceEvent::RunEnded { events_dispatched } => {
                cols[0].push_u64(events_dispatched);
            }
        }
    }

    /// Sanity check used by tests and debug assertions: every table's
    /// columns agree on the row count.
    pub fn check_invariants(&self) -> bool {
        self.tables.iter().all(|t| {
            t.tenant.len() == t.t_bits.len() && t.cols.iter().all(|c| c.len() == t.t_bits.len())
        }) && self.events == self.tables.iter().map(|t| t.rows() as u64).sum::<u64>()
    }
}

impl Observer for TraceStore {
    fn on_event(&mut self, at: SimTime, event: &TraceEvent) {
        self.ingest(at, event);
    }
}

impl Merge for TraceStore {
    /// Appends `other`'s rows after this store's own, per table.
    /// Determinism contract: callers merge in session-ordinal order.
    fn merge(&mut self, other: TraceStore) {
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            mine.append(theirs);
        }
        self.events += other.events;
    }
}

/// Builds one [`TraceStore`] per parallel session, stamping rows with
/// the session's tenant ordinal — the observer-factory bridge that lets
/// whole-fleet (or replicated-sweep) stores shard over rayon and merge
/// deterministically.
#[derive(Debug, Clone, Copy)]
pub struct TraceStoreFactory {
    /// Tenants per repetition: the factory's session ordinal is
    /// `repetition × tenants + tenant` (the fleet convention), so the
    /// stamped tenant is `ordinal % tenants`. Use 1 for plain replicated
    /// solo sessions (every row stamps tenant 0).
    pub tenants: u64,
}

impl TraceStoreFactory {
    /// A factory for solo-session replications (tenant 0 throughout).
    pub fn solo() -> TraceStoreFactory {
        TraceStoreFactory { tenants: 1 }
    }

    /// A factory for fleets of `tenants` tenants per repetition.
    pub fn fleet(tenants: u64) -> TraceStoreFactory {
        assert!(tenants >= 1, "a fleet has at least one tenant");
        TraceStoreFactory { tenants }
    }
}

impl ObserverFactory for TraceStoreFactory {
    type Obs = TraceStore;
    type Summary = TraceStore;

    fn build(&self, session: u64) -> TraceStore {
        TraceStore::for_tenant((session % self.tenants) as u32)
    }

    fn finish(&self, obs: TraceStore) -> TraceStore {
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::ScalingChoice;

    fn t(tu: f64) -> SimTime {
        SimTime::new(tu)
    }

    #[test]
    fn ingest_fills_the_right_table() {
        let mut store = TraceStore::new();
        store
            .ingest(t(1.0), &TraceEvent::JobArrived { job: 3, size_units: 5.0, submitted_tu: 1.0 });
        store.ingest(t(2.0), &TraceEvent::QueueDepthSampled { depth: 9 });
        store.ingest(t(2.0), &TraceEvent::QueueDepthSampled { depth: 7 });
        assert_eq!(store.table(EventKind::JobArrived).rows(), 1);
        assert_eq!(store.table(EventKind::QueueDepth).rows(), 2);
        assert_eq!(store.events(), 3);
        assert!(store.check_invariants());
        let depth = store.table(EventKind::QueueDepth).column("depth").expect("declared column");
        assert_eq!(depth.value_f64(1), 7.0);
    }

    #[test]
    fn dispatch_rows_carry_the_hiring_tier() {
        let mut store = TraceStore::new();
        store.ingest(t(0.5), &TraceEvent::VmHired { vm: 0, tier: 1, cores: 4 });
        store.ingest(t(0.6), &TraceEvent::VmHired { vm: 1, tier: 0, cores: 2 });
        for (vm, at) in [(0u64, 1.0), (1, 1.5), (0, 2.0)] {
            store.ingest(
                t(at),
                &TraceEvent::SubtaskDispatched {
                    job: 1,
                    stage: 0,
                    vm,
                    cores: 1,
                    waited_tu: 0.1,
                    busy_tu: 1.0,
                },
            );
        }
        // Reshape does not change the tier, but a later hire of a new VM id does.
        store
            .ingest(t(2.5), &TraceEvent::VmReshaped { vm: 1, tier: 0, cores_from: 2, cores_to: 4 });
        let table = store.table(EventKind::SubtaskDispatched);
        let tier = table.column("tier").expect("derived tier column");
        match tier {
            Column::Dict { codes, dict } => {
                let labels: Vec<&str> = codes.iter().map(|&c| dict.label(c)).collect();
                assert_eq!(labels, ["public", "private", "public"]);
            }
            _ => unreachable!("tier is declared as a dict column"),
        }
    }

    #[test]
    fn unknown_vm_dispatches_label_unknown() {
        let mut store = TraceStore::new();
        store.ingest(
            t(1.0),
            &TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 0,
                vm: 42,
                cores: 1,
                waited_tu: 0.0,
                busy_tu: 1.0,
            },
        );
        let table = store.table(EventKind::SubtaskDispatched);
        match table.column("tier").expect("derived tier column") {
            Column::Dict { codes, dict } => assert_eq!(dict.label(codes[0]), UNKNOWN_TIER),
            _ => unreachable!("tier is declared as a dict column"),
        }
    }

    #[test]
    fn admission_rows_use_the_event_tenant() {
        let mut store = TraceStore::for_tenant(7);
        store.ingest(t(1.0), &TraceEvent::AdmissionDeferred { tenant: 3, jobs: 2, backlog: 2 });
        store.ingest(t(2.0), &TraceEvent::QueueDepthSampled { depth: 1 });
        assert_eq!(store.table(EventKind::AdmissionDeferred).tenant(), [3]);
        assert_eq!(store.table(EventKind::QueueDepth).tenant(), [7]);
    }

    #[test]
    fn merge_concatenates_and_remaps() {
        let mut a = TraceStore::new();
        a.ingest(t(1.0), &TraceEvent::VmHired { vm: 0, tier: 0, cores: 2 });
        let mut b = TraceStore::for_tenant(1);
        b.ingest(t(1.5), &TraceEvent::VmHired { vm: 0, tier: 1, cores: 4 });
        b.ingest(
            t(2.0),
            &TraceEvent::ScalingDecision {
                stage: 0,
                cores: 2,
                queued_jobs: 1,
                delay_cost: 1.0,
                hire_cost: 2.0,
                choice: ScalingChoice::Wait,
            },
        );
        a.merge(b);
        assert_eq!(a.events(), 3);
        assert!(a.check_invariants());
        let hired = a.table(EventKind::VmHired);
        assert_eq!(hired.rows(), 2);
        assert_eq!(hired.tenant(), [0, 1]);
        match hired.column("tier").expect("declared column") {
            Column::Dict { codes, dict } => {
                assert_eq!(dict.labels(), ["private", "public"]);
                assert_eq!(codes, &[0, 1]);
            }
            _ => unreachable!("tier is declared as a dict column"),
        }
    }

    #[test]
    fn factory_stamps_tenant_ordinals() {
        let f = TraceStoreFactory::fleet(3);
        assert_eq!(ObserverFactory::build(&f, 0).tenant, 0);
        assert_eq!(ObserverFactory::build(&f, 5).tenant, 2);
        assert_eq!(TraceStoreFactory::solo().build(17).tenant, 0);
    }
}
