//! The aggregation query layer: staged vector operators over one
//! event-kind table.
//!
//! A [`Query`] compiles to a pipeline of [`VecOp`] stages that pass a
//! shrinking row [`Scratchpad`] from stage to stage, in the LocustDB
//! style: first a scan that selects every row, then one filter stage per
//! predicate (each narrowing the selection vector in place), then a
//! key-building stage (time bucket × group column), a value-gather
//! stage, and a final aggregation stage that folds each group with the
//! requested [`Agg`]. Stages touch whole column slices — no per-row
//! dispatch on event variants, which is what makes the store cheaper to
//! query than re-parsing JSONL.
//!
//! Determinism: grouping uses first-appearance group discovery plus a
//! final sort of the result rows by `(bucket, group)` — label groups
//! sort by label string, numeric groups by value — and `Sum`/`Mean`
//! accumulate in row order, so query results are identical for a given
//! store no matter how the store was sharded or merged.
//!
//! The worked example from `docs/TRACESTORE.md` — p95 queue wait per
//! tier:
//!
//! ```
//! use scan_tracestore::{Agg, EventKind, Query, TraceStore};
//! # use scan_sim::{SimTime, TraceEvent};
//! # let mut store = TraceStore::new();
//! # store.ingest(SimTime::new(0.5), &TraceEvent::VmHired { vm: 0, tier: 1, cores: 4 });
//! # store.ingest(SimTime::new(1.0), &TraceEvent::SubtaskDispatched {
//! #     job: 0, stage: 0, vm: 0, cores: 1, waited_tu: 0.25, busy_tu: 1.0 });
//! let rows = Query::over(EventKind::SubtaskDispatched)
//!     .group_by("tier")
//!     .aggregate(Agg::P95, "waited_tu")
//!     .run(&store)
//!     .expect("tier and waited_tu are declared subtask_dispatched columns");
//! assert_eq!(rows[0].group.as_deref(), Some("public"));
//! assert_eq!(rows[0].value, 0.25);
//! ```

use crate::column::Column;
use crate::schema::{Agg, ColumnType, EventKind};
use crate::store::{Table, TraceStore};
use std::fmt;

/// A row predicate narrowing the selection.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Keep rows whose time lies in the half-open window `[lo, hi)` TU.
    TimeRange {
        /// Inclusive lower bound, TU.
        lo_tu: f64,
        /// Exclusive upper bound, TU.
        hi_tu: f64,
    },
    /// Keep rows stamped with this tenant.
    Tenant(u32),
    /// Keep rows whose integral column equals `value`.
    EqU32 {
        /// Declared `u32`/`u64` column name.
        column: String,
        /// Value to match.
        value: u32,
    },
    /// Keep rows whose dictionary column carries `label`.
    EqLabel {
        /// Declared dictionary column name.
        column: String,
        /// Label to match (an un-interned label selects nothing).
        label: String,
    },
    /// Keep rows whose `f64` column lies in `[lo, hi)`.
    RangeF64 {
        /// Declared `f64` column name.
        column: String,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

/// Why a query could not be compiled against the table's schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A named column is not declared for the queried kind.
    UnknownColumn {
        /// The queried kind's tag.
        kind: &'static str,
        /// The missing column name.
        column: String,
    },
    /// A column exists but its physical type does not fit the use.
    TypeMismatch {
        /// The offending column name.
        column: String,
        /// What the query needed it to be.
        needed: &'static str,
    },
    /// Every aggregation except `count` needs a value column.
    MissingValueColumn {
        /// The aggregation that was requested without a value column.
        agg: &'static str,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownColumn { kind, column } => {
                write!(f, "no column `{column}` in `{kind}` rows")
            }
            QueryError::TypeMismatch { column, needed } => {
                write!(f, "column `{column}` is not usable as {needed}")
            }
            QueryError::MissingValueColumn { agg } => {
                write!(f, "aggregation `{agg}` needs a value column")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One result row of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Bucket start time in TU, when the query was bucketed.
    pub bucket_tu: Option<f64>,
    /// Group label (dictionary groups) or rendered number (integral
    /// groups), when the query grouped.
    pub group: Option<String>,
    /// The aggregated value.
    pub value: f64,
}

/// Where a stage reads per-row scalars from: an implicit column or a
/// declared one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// The implicit time column, as TU.
    Time,
    /// The implicit tenant column.
    Tenant,
    /// Declared column by index.
    Col(usize),
}

/// The mutable state handed from stage to stage: a selection vector plus
/// the buffers later stages fill. LocustDB keeps a typed buffer arena
/// here; our queries only ever need these three vectors, so they are
/// fields rather than named slots.
#[derive(Debug, Default)]
pub struct Scratchpad {
    /// Indices of the rows still selected, ascending.
    selection: Vec<u32>,
    /// `(bucket, group-key)` per selected row (parallel to `selection`).
    keys: Vec<(u64, u64)>,
    /// Value per selected row (parallel to `selection`).
    values: Vec<f64>,
}

impl Scratchpad {
    /// Rows still selected after the stages run so far.
    pub fn selected(&self) -> usize {
        self.selection.len()
    }
}

/// One pipeline stage: reads the table, narrows or extends the
/// scratchpad.
pub trait VecOp {
    /// Stable stage name, for plans and diagnostics.
    fn name(&self) -> String;
    /// Runs the stage.
    fn execute(&self, table: &Table, scratch: &mut Scratchpad);
}

/// Selects every row of the table.
struct ScanAll;

impl VecOp for ScanAll {
    fn name(&self) -> String {
        "scan".to_string()
    }

    fn execute(&self, table: &Table, scratch: &mut Scratchpad) {
        scratch.selection = (0..table.rows() as u32).collect();
    }
}

/// Narrows the selection with one compiled predicate.
struct FilterOp {
    label: String,
    kind: CompiledFilter,
}

enum CompiledFilter {
    TimeRange {
        lo: f64,
        hi: f64,
    },
    Tenant(u32),
    EqKey {
        col: usize,
        key: u64,
    },
    /// An `EqLabel` whose label was never interned: nothing matches.
    Never,
    RangeF64 {
        col: usize,
        lo: f64,
        hi: f64,
    },
}

impl VecOp for FilterOp {
    fn name(&self) -> String {
        format!("filter[{}]", self.label)
    }

    fn execute(&self, table: &Table, scratch: &mut Scratchpad) {
        let keep = |&row: &u32| -> bool {
            let i = row as usize;
            match &self.kind {
                CompiledFilter::TimeRange { lo, hi } => {
                    let t = table.time_tu(i);
                    *lo <= t && t < *hi
                }
                CompiledFilter::Tenant(tenant) => table.tenant()[i] == *tenant,
                CompiledFilter::EqKey { col, key } => {
                    table.columns()[*col].group_key(i) == Some(*key)
                }
                CompiledFilter::Never => false,
                CompiledFilter::RangeF64 { col, lo, hi } => {
                    let v = table.columns()[*col].value_f64(i);
                    *lo <= v && v < *hi
                }
            }
        };
        scratch.selection.retain(|row| keep(row));
    }
}

/// Builds the `(bucket, group)` key for every selected row.
struct BuildKeys {
    bucket_tu: Option<f64>,
    group: Option<Source>,
}

impl VecOp for BuildKeys {
    fn name(&self) -> String {
        match (self.bucket_tu, self.group) {
            (None, None) => "keys[scalar]".to_string(),
            (Some(w), None) => format!("keys[bucket {w} tu]"),
            (None, Some(_)) => "keys[group]".to_string(),
            (Some(w), Some(_)) => format!("keys[bucket {w} tu, group]"),
        }
    }

    fn execute(&self, table: &Table, scratch: &mut Scratchpad) {
        scratch.keys = scratch
            .selection
            .iter()
            .map(|&row| {
                let i = row as usize;
                let bucket = match self.bucket_tu {
                    Some(width) => (table.time_tu(i) / width).floor() as u64,
                    None => 0,
                };
                let group = match self.group {
                    // Times never group (f64), so only integral sources appear.
                    Some(Source::Tenant) => u64::from(table.tenant()[i]),
                    Some(Source::Col(c)) => table.columns()[c].group_key(i).unwrap_or(u64::MAX),
                    Some(Source::Time) | None => 0,
                };
                (bucket, group)
            })
            .collect();
    }
}

/// Gathers the per-row aggregation input.
struct GatherValues {
    value: Option<Source>,
}

impl VecOp for GatherValues {
    fn name(&self) -> String {
        "gather".to_string()
    }

    fn execute(&self, table: &Table, scratch: &mut Scratchpad) {
        scratch.values = scratch
            .selection
            .iter()
            .map(|&row| {
                let i = row as usize;
                match self.value {
                    Some(Source::Time) => table.time_tu(i),
                    Some(Source::Tenant) => f64::from(table.tenant()[i]),
                    Some(Source::Col(c)) => table.columns()[c].value_f64(i),
                    None => 0.0,
                }
            })
            .collect();
    }
}

/// Folds one group's gathered values with an [`Agg`]. Values arrive in
/// row order; `sort` is `total_cmp`, so NaNs land last and percentiles
/// stay total.
fn fold(agg: Agg, values: &[f64]) -> f64 {
    let n = values.len();
    match agg {
        Agg::Count => n as f64,
        Agg::Sum => values.iter().sum(),
        Agg::Mean => values.iter().sum::<f64>() / n as f64,
        Agg::P50 => nearest_rank(values, 0.50),
        Agg::P95 => nearest_rank(values, 0.95),
        Agg::Max => values.iter().copied().fold(f64::NEG_INFINITY, |a, b| {
            if b.total_cmp(&a).is_gt() {
                b
            } else {
                a
            }
        }),
    }
}

/// The nearest-rank percentile over a `total_cmp` sort: the value at
/// one-based rank `ceil(q × n)`. Callers never pass an empty slice
/// (groups exist only for selected rows).
fn nearest_rank(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// How result groups render and sort: dictionary groups by label,
/// numeric groups by value.
enum GroupRender<'a> {
    None,
    Label(&'a Column),
    Number,
}

/// A compiled aggregation query over one event kind. Build with
/// [`Query::over`], chain filters/grouping, finish with [`Query::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    kind: EventKind,
    filters: Vec<Filter>,
    group_by: Option<String>,
    bucket_tu: Option<f64>,
    agg: Agg,
    value: Option<String>,
}

impl Query {
    /// Starts a query over `kind` rows; the default aggregation is
    /// [`Agg::Count`] over the whole selection.
    pub fn over(kind: EventKind) -> Query {
        Query {
            kind,
            filters: Vec::new(),
            group_by: None,
            bucket_tu: None,
            agg: Agg::Count,
            value: None,
        }
    }

    /// Adds a row predicate (all filters must hold).
    pub fn filter(mut self, filter: Filter) -> Query {
        self.filters.push(filter);
        self
    }

    /// Keeps rows in the half-open time window `[lo, hi)` TU.
    pub fn between_tu(self, lo_tu: f64, hi_tu: f64) -> Query {
        self.filter(Filter::TimeRange { lo_tu, hi_tu })
    }

    /// Keeps rows stamped with `tenant`.
    pub fn tenant(self, tenant: u32) -> Query {
        self.filter(Filter::Tenant(tenant))
    }

    /// Groups results by an integral or dictionary column (`"tenant"`
    /// selects the implicit tenant column).
    pub fn group_by(mut self, column: &str) -> Query {
        self.group_by = Some(column.to_string());
        self
    }

    /// Buckets results over sim-time windows of `width_tu` TU; result
    /// rows carry the bucket's start time.
    pub fn bucket_tu(mut self, width_tu: f64) -> Query {
        self.bucket_tu = Some(width_tu);
        self
    }

    /// Sets the aggregation and its value column (`"t"` aggregates event
    /// times). Use [`Query::count`] for plain counts.
    pub fn aggregate(mut self, agg: Agg, value_column: &str) -> Query {
        self.agg = agg;
        self.value = Some(value_column.to_string());
        self
    }

    /// Counts selected rows (per group/bucket when combined).
    pub fn count(mut self) -> Query {
        self.agg = Agg::Count;
        self.value = None;
        self
    }

    /// Resolves a column reference against the queried kind.
    fn resolve(&self, name: &str) -> Result<Source, QueryError> {
        match name {
            "t" => Ok(Source::Time),
            "tenant" => Ok(Source::Tenant),
            _ => self.kind.column_index(name).map(Source::Col).ok_or_else(|| {
                QueryError::UnknownColumn { kind: self.kind.tag(), column: name.to_string() }
            }),
        }
    }

    /// Resolves a declared column that must have one of `allowed` types.
    fn resolve_typed(
        &self,
        name: &str,
        allowed: &[ColumnType],
        needed: &'static str,
    ) -> Result<usize, QueryError> {
        match self.resolve(name)? {
            Source::Col(c) if allowed.contains(&self.kind.columns()[c].ty) => Ok(c),
            _ => Err(QueryError::TypeMismatch { column: name.to_string(), needed }),
        }
    }

    /// Compiles the pipeline. Exposed so plans can be inspected (see
    /// [`Query::explain`]); most callers go straight to [`Query::run`].
    fn plan(&self, store: &TraceStore) -> Result<Vec<Box<dyn VecOp>>, QueryError> {
        let table = store.table(self.kind);
        let mut ops: Vec<Box<dyn VecOp>> = vec![Box::new(ScanAll)];
        for filter in &self.filters {
            let (label, kind) = match filter {
                Filter::TimeRange { lo_tu, hi_tu } => (
                    format!("{lo_tu} <= t < {hi_tu}"),
                    CompiledFilter::TimeRange { lo: *lo_tu, hi: *hi_tu },
                ),
                Filter::Tenant(tenant) => {
                    (format!("tenant == {tenant}"), CompiledFilter::Tenant(*tenant))
                }
                Filter::EqU32 { column, value } => {
                    let col = self.resolve_typed(
                        column,
                        &[ColumnType::U32, ColumnType::U64],
                        "an integral column",
                    )?;
                    (
                        format!("{column} == {value}"),
                        CompiledFilter::EqKey { col, key: u64::from(*value) },
                    )
                }
                Filter::EqLabel { column, label } => {
                    let col =
                        self.resolve_typed(column, &[ColumnType::Dict], "a dictionary column")?;
                    let compiled = match &table.columns()[col] {
                        Column::Dict { dict, .. } => match dict.lookup(label) {
                            Some(code) => CompiledFilter::EqKey { col, key: u64::from(code) },
                            None => CompiledFilter::Never,
                        },
                        _ => CompiledFilter::Never,
                    };
                    (format!("{column} == {label:?}"), compiled)
                }
                Filter::RangeF64 { column, lo, hi } => {
                    let col = self.resolve_typed(column, &[ColumnType::F64], "an f64 column")?;
                    (
                        format!("{lo} <= {column} < {hi}"),
                        CompiledFilter::RangeF64 { col, lo: *lo, hi: *hi },
                    )
                }
            };
            ops.push(Box::new(FilterOp { label, kind }));
        }
        let group = match &self.group_by {
            Some(name) => {
                let source = self.resolve(name)?;
                if let Source::Col(c) = source {
                    if self.kind.columns()[c].ty == ColumnType::F64 {
                        return Err(QueryError::TypeMismatch {
                            column: name.clone(),
                            needed: "a groupable (integral or dictionary) column",
                        });
                    }
                }
                if source == Source::Time {
                    return Err(QueryError::TypeMismatch {
                        column: name.clone(),
                        needed: "a groupable column (bucket over `t` instead)",
                    });
                }
                Some(source)
            }
            None => None,
        };
        ops.push(Box::new(BuildKeys { bucket_tu: self.bucket_tu, group }));
        let value = match (&self.value, self.agg) {
            (Some(name), _) => Some(self.resolve(name)?),
            (None, Agg::Count) => None,
            (None, agg) => return Err(QueryError::MissingValueColumn { agg: agg.name() }),
        };
        ops.push(Box::new(GatherValues { value }));
        Ok(ops)
    }

    /// The compiled stage names, in execution order — the query plan.
    pub fn explain(&self, store: &TraceStore) -> Result<Vec<String>, QueryError> {
        let mut names: Vec<String> = self.plan(store)?.iter().map(|op| op.name()).collect();
        names.push(format!("aggregate[{}]", self.agg.name()));
        Ok(names)
    }

    /// Executes the pipeline and returns the aggregated rows, sorted by
    /// `(bucket, group)`.
    pub fn run(&self, store: &TraceStore) -> Result<Vec<Row>, QueryError> {
        let table = store.table(self.kind);
        let ops = self.plan(store)?;
        let mut scratch = Scratchpad::default();
        for op in &ops {
            op.execute(table, &mut scratch);
        }

        // Group discovery in first-appearance order, rows kept in row
        // order per group (a linear scan: group cardinality is tiny —
        // tiers, choices, tenants of one fleet cell).
        let mut groups: Vec<((u64, u64), Vec<f64>)> = Vec::new();
        for (key, value) in scratch.keys.iter().zip(&scratch.values) {
            match groups.iter_mut().find(|(k, _)| k == key) {
                Some((_, vals)) => vals.push(*value),
                None => groups.push((*key, vec![*value])),
            }
        }

        let render = match self.group_by.as_deref() {
            None => GroupRender::None,
            Some(name) => match self.kind.column_index(name).map(|c| &table.columns()[c]) {
                Some(col @ Column::Dict { .. }) => GroupRender::Label(col),
                _ => GroupRender::Number,
            },
        };
        let mut rows: Vec<Row> = groups
            .iter()
            .map(|((bucket, group), values)| Row {
                bucket_tu: self.bucket_tu.map(|w| *bucket as f64 * w),
                group: match &render {
                    GroupRender::None => None,
                    GroupRender::Label(Column::Dict { dict, .. }) => {
                        Some(dict.label(*group as u32).to_string())
                    }
                    GroupRender::Label(_) | GroupRender::Number => Some(group.to_string()),
                },
                value: fold(self.agg, values),
            })
            .collect();
        rows.sort_by(|a, b| {
            let bucket = a.bucket_tu.unwrap_or(0.0).total_cmp(&b.bucket_tu.unwrap_or(0.0));
            bucket.then_with(|| a.group.cmp(&b.group))
        });
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::{SimTime, TraceEvent};

    fn dispatch(job: u64, vm: u64, waited: f64) -> TraceEvent {
        TraceEvent::SubtaskDispatched {
            job,
            stage: 0,
            vm,
            cores: 1,
            waited_tu: waited,
            busy_tu: 1.0,
        }
    }

    fn two_tier_store() -> TraceStore {
        let mut store = TraceStore::new();
        store.ingest(SimTime::new(0.1), &TraceEvent::VmHired { vm: 0, tier: 0, cores: 4 });
        store.ingest(SimTime::new(0.2), &TraceEvent::VmHired { vm: 1, tier: 1, cores: 8 });
        let waits = [(0u64, 0.1), (0, 0.3), (0, 0.2), (1, 1.0), (1, 3.0)];
        for (i, (vm, wait)) in waits.iter().enumerate() {
            store.ingest(SimTime::new(1.0 + i as f64), &dispatch(i as u64, *vm, *wait));
        }
        store
    }

    #[test]
    fn p95_queue_wait_per_tier() {
        let rows = Query::over(EventKind::SubtaskDispatched)
            .group_by("tier")
            .aggregate(Agg::P95, "waited_tu")
            .run(&two_tier_store())
            .expect("tier and waited_tu are declared subtask_dispatched columns");
        // Sorted by label: private (vm 0) then public (vm 1).
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].group.as_deref(), Some("private"));
        assert_eq!(rows[0].value, 0.3, "nearest-rank p95 of [0.1, 0.3, 0.2]");
        assert_eq!(rows[1].group.as_deref(), Some("public"));
        assert_eq!(rows[1].value, 3.0, "nearest-rank p95 of [1.0, 3.0]");
    }

    #[test]
    fn count_sum_mean_max() {
        let store = two_tier_store();
        let count = Query::over(EventKind::SubtaskDispatched)
            .count()
            .run(&store)
            .expect("count needs no columns");
        assert_eq!(count.len(), 1);
        assert_eq!(count[0].value, 5.0);
        assert_eq!(count[0].group, None);
        assert_eq!(count[0].bucket_tu, None);

        let sum = Query::over(EventKind::SubtaskDispatched)
            .aggregate(Agg::Sum, "waited_tu")
            .run(&store)
            .expect("waited_tu is declared");
        assert_eq!(sum[0].value, 0.1 + 0.3 + 0.2 + 1.0 + 3.0);

        let mean = Query::over(EventKind::SubtaskDispatched)
            .filter(Filter::EqLabel { column: "tier".into(), label: "public".into() })
            .aggregate(Agg::Mean, "waited_tu")
            .run(&store)
            .expect("tier and waited_tu are declared");
        assert_eq!(mean[0].value, 2.0);

        let max = Query::over(EventKind::SubtaskDispatched)
            .aggregate(Agg::Max, "waited_tu")
            .run(&store)
            .expect("waited_tu is declared");
        assert_eq!(max[0].value, 3.0);
    }

    #[test]
    fn time_buckets_carry_start_times() {
        let mut store = TraceStore::new();
        for (t, depth) in [(0.5, 1u32), (1.5, 3), (2.5, 5), (3.5, 7)] {
            store.ingest(SimTime::new(t), &TraceEvent::QueueDepthSampled { depth });
        }
        let rows = Query::over(EventKind::QueueDepth)
            .bucket_tu(2.0)
            .aggregate(Agg::Max, "depth")
            .run(&store)
            .expect("depth is declared");
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].bucket_tu, rows[0].value), (Some(0.0), 3.0));
        assert_eq!((rows[1].bucket_tu, rows[1].value), (Some(2.0), 7.0));
    }

    #[test]
    fn filters_compose_and_empty_windows_vanish() {
        let store = two_tier_store();
        let rows = Query::over(EventKind::SubtaskDispatched)
            .between_tu(0.0, 2.0)
            .filter(Filter::EqU32 { column: "vm".into(), value: 0 })
            .filter(Filter::RangeF64 { column: "waited_tu".into(), lo: 0.0, hi: 0.5 })
            .count()
            .run(&store)
            .expect("vm and waited_tu are declared");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value, 1.0, "only the t=1.0 dispatch survives all filters");

        let none = Query::over(EventKind::SubtaskDispatched)
            .filter(Filter::EqLabel { column: "tier".into(), label: "spot".into() })
            .count()
            .run(&store)
            .expect("tier is declared");
        assert!(none.is_empty(), "an un-interned label selects nothing");
    }

    #[test]
    fn tenant_filter_and_group() {
        let mut store = TraceStore::for_tenant(0);
        store.ingest(SimTime::new(1.0), &TraceEvent::QueueDepthSampled { depth: 2 });
        let mut other = TraceStore::for_tenant(1);
        other.ingest(SimTime::new(1.0), &TraceEvent::QueueDepthSampled { depth: 9 });
        other.ingest(SimTime::new(2.0), &TraceEvent::QueueDepthSampled { depth: 1 });
        scan_sim::Merge::merge(&mut store, other);

        let per_tenant = Query::over(EventKind::QueueDepth)
            .group_by("tenant")
            .count()
            .run(&store)
            .expect("tenant is implicit on every kind");
        assert_eq!(per_tenant.len(), 2);
        assert_eq!((per_tenant[0].group.as_deref(), per_tenant[0].value), (Some("0"), 1.0));
        assert_eq!((per_tenant[1].group.as_deref(), per_tenant[1].value), (Some("1"), 2.0));

        let just_one = Query::over(EventKind::QueueDepth)
            .tenant(1)
            .aggregate(Agg::P50, "depth")
            .run(&store)
            .expect("depth is declared");
        assert_eq!(just_one[0].value, 1.0, "nearest-rank p50 of [9, 1] is the lower value");
    }

    #[test]
    fn schema_errors_are_reported() {
        let store = TraceStore::new();
        let unknown = Query::over(EventKind::QueueDepth).aggregate(Agg::Sum, "no_such").run(&store);
        assert_eq!(
            unknown,
            Err(QueryError::UnknownColumn { kind: "queue_depth", column: "no_such".into() })
        );

        let ungroupable =
            Query::over(EventKind::JobCompleted).group_by("latency_tu").count().run(&store);
        assert!(matches!(ungroupable, Err(QueryError::TypeMismatch { .. })));

        let missing_value =
            Query::over(EventKind::QueueDepth).group_by("depth").run(&TraceStore::new());
        assert!(missing_value.is_ok(), "default aggregation is count");
        let q =
            Query { value: None, ..Query::over(EventKind::QueueDepth).aggregate(Agg::Sum, "x") };
        assert_eq!(q.run(&store), Err(QueryError::MissingValueColumn { agg: "sum" }));
    }

    #[test]
    fn explain_lists_the_stages() {
        let stages = Query::over(EventKind::SubtaskDispatched)
            .between_tu(0.0, 10.0)
            .group_by("tier")
            .bucket_tu(5.0)
            .aggregate(Agg::P95, "waited_tu")
            .explain(&two_tier_store())
            .expect("all referenced columns are declared");
        assert_eq!(
            stages,
            ["scan", "filter[0 <= t < 10]", "keys[bucket 5 tu, group]", "gather", "aggregate[p95]"]
        );
    }
}
