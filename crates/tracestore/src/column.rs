//! Typed columnar buffers and the label dictionary.
//!
//! A [`Column`] is an append-only buffer of one physical type
//! ([`ColumnType`]); dictionary columns pair a `u32` code per row with a
//! per-column [`Interner`] mapping codes to label strings. Codes are
//! assigned in first-appearance order, which is deterministic because
//! ingest order is deterministic and merges happen in a caller-fixed
//! order (see [`TraceStore`](crate::TraceStore)).

use crate::schema::ColumnType;

/// A per-column string dictionary: code = first-appearance index.
///
/// Cardinality is tiny (tier names, scaling choices), so lookup is a
/// linear scan — faster than hashing at this size and free of iteration-
/// order nondeterminism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    labels: Vec<String>,
}

impl Interner {
    /// Rebuilds an interner from decoded labels (export reader).
    pub(crate) fn from_labels(labels: Vec<String>) -> Interner {
        Interner { labels }
    }

    /// Returns the code for `label`, interning it on first sight.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(code) = self.lookup(label) {
            return code;
        }
        self.labels.push(label.to_string());
        (self.labels.len() - 1) as u32
    }

    /// The code for `label`, if already interned.
    pub fn lookup(&self, label: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == label).map(|i| i as u32)
    }

    /// The label behind `code`.
    ///
    /// # Panics
    /// Panics if `code` was never handed out by this interner.
    pub fn label(&self, code: u32) -> &str {
        &self.labels[code as usize]
    }

    /// All labels, in code order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// One typed column buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// `u32` values.
    U32(Vec<u32>),
    /// `u64` values.
    U64(Vec<u64>),
    /// `f64` values (NaN allowed: the unpriced scaling costs).
    F64(Vec<f64>),
    /// Dictionary codes plus the dictionary itself.
    Dict {
        /// One code per row.
        codes: Vec<u32>,
        /// Code → label mapping.
        dict: Interner,
    },
}

impl Column {
    /// An empty column of the given physical type.
    pub fn new(ty: ColumnType) -> Column {
        match ty {
            ColumnType::U32 => Column::U32(Vec::new()),
            ColumnType::U64 => Column::U64(Vec::new()),
            ColumnType::F64 => Column::F64(Vec::new()),
            ColumnType::Dict => Column::Dict { codes: Vec::new(), dict: Interner::default() },
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            Column::U32(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F64(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a `u32` row.
    ///
    /// # Panics
    /// Panics if the column is not [`Column::U32`].
    pub fn push_u32(&mut self, v: u32) {
        match self {
            Column::U32(vec) => vec.push(v),
            // scan-lint: allow(no-panic, panic-path) -- `# Panics` contract: type confusion is a bug.
            _ => panic!("push_u32 on a non-u32 column"),
        }
    }

    /// Appends a `u64` row.
    ///
    /// # Panics
    /// Panics if the column is not [`Column::U64`].
    pub fn push_u64(&mut self, v: u64) {
        match self {
            Column::U64(vec) => vec.push(v),
            // scan-lint: allow(no-panic, panic-path) -- `# Panics` contract: type confusion is a bug.
            _ => panic!("push_u64 on a non-u64 column"),
        }
    }

    /// Appends an `f64` row.
    ///
    /// # Panics
    /// Panics if the column is not [`Column::F64`].
    pub fn push_f64(&mut self, v: f64) {
        match self {
            Column::F64(vec) => vec.push(v),
            // scan-lint: allow(no-panic, panic-path) -- `# Panics` contract: type confusion is a bug.
            _ => panic!("push_f64 on a non-f64 column"),
        }
    }

    /// Appends a label row, interning it.
    ///
    /// # Panics
    /// Panics if the column is not [`Column::Dict`].
    pub fn push_label(&mut self, label: &str) {
        match self {
            Column::Dict { codes, dict } => codes.push(dict.intern(label)),
            // scan-lint: allow(no-panic, panic-path) -- `# Panics` contract: type confusion is a bug.
            _ => panic!("push_label on a non-dict column"),
        }
    }

    /// Row `i` as `f64` for aggregation: numeric columns cast, dict
    /// columns yield their code.
    pub fn value_f64(&self, i: usize) -> f64 {
        match self {
            Column::U32(v) => f64::from(v[i]),
            Column::U64(v) => v[i] as f64,
            Column::F64(v) => v[i],
            Column::Dict { codes, .. } => f64::from(codes[i]),
        }
    }

    /// Row `i` as a `u64` group key, if the column is integral or a
    /// dictionary (f64 columns cannot key groups).
    pub fn group_key(&self, i: usize) -> Option<u64> {
        match self {
            Column::U32(v) => Some(u64::from(v[i])),
            Column::U64(v) => Some(v[i]),
            Column::Dict { codes, .. } => Some(u64::from(codes[i])),
            Column::F64(_) => None,
        }
    }

    /// Absorbs `other`'s rows after this column's own (dictionary codes
    /// are remapped through this column's interner).
    ///
    /// # Panics
    /// Panics if the two columns have different physical types.
    pub fn append(&mut self, other: &Column) {
        match (self, other) {
            (Column::U32(a), Column::U32(b)) => a.extend_from_slice(b),
            (Column::U64(a), Column::U64(b)) => a.extend_from_slice(b),
            (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
            (
                Column::Dict { codes, dict },
                Column::Dict { codes: other_codes, dict: other_dict },
            ) => {
                // Remap through a small translation table: other code →
                // self code, interning unseen labels in arrival order.
                let remap: Vec<u32> = other_dict.labels().iter().map(|l| dict.intern(l)).collect();
                codes.extend(other_codes.iter().map(|&c| remap[c as usize]));
            }
            // scan-lint: allow(no-panic) -- documented `# Panics` contract: merged stores share one schema.
            _ => panic!("column type mismatch in append"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_first_appearance_codes() {
        let mut i = Interner::default();
        assert_eq!(i.intern("private"), 0);
        assert_eq!(i.intern("public"), 1);
        assert_eq!(i.intern("private"), 0);
        assert_eq!(i.label(1), "public");
        assert_eq!(i.lookup("spot"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn dict_append_remaps_codes() {
        let mut a = Column::new(ColumnType::Dict);
        a.push_label("x");
        a.push_label("y");
        let mut b = Column::new(ColumnType::Dict);
        b.push_label("y");
        b.push_label("z");
        b.push_label("y");
        a.append(&b);
        match &a {
            Column::Dict { codes, dict } => {
                assert_eq!(codes, &[0, 1, 1, 2, 1]);
                assert_eq!(dict.labels(), ["x", "y", "z"]);
            }
            _ => unreachable!("a was built as a dict column"),
        }
    }

    #[test]
    fn numeric_append_and_values() {
        let mut a = Column::new(ColumnType::F64);
        a.push_f64(1.5);
        let mut b = Column::new(ColumnType::F64);
        b.push_f64(2.5);
        a.append(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.value_f64(1), 2.5);
        assert_eq!(a.group_key(0), None);

        let mut u = Column::new(ColumnType::U32);
        u.push_u32(7);
        assert_eq!(u.group_key(0), Some(7));
        assert_eq!(u.value_f64(0), 7.0);
    }
}
