//! The compact on-disk export: `SCTS` version 1.
//!
//! Layout (all integers little-endian; `varint` is LEB128, 7 bits per
//! byte, low group first):
//!
//! ```text
//! magic      b"SCTS"
//! version    u32        (currently 1)
//! table ×15, in ALL_KINDS order:
//!   rows       varint
//!   if rows > 0:
//!     t        delta-varint × rows   (u64 f64-bit-pattern deltas; the
//!                                     column is monotone, so deltas fit
//!                                     small varints)
//!     tenant   varint × rows
//!     per declared column, in EventKind::columns order:
//!       U32    varint × rows
//!       U64    varint × rows
//!       F64    raw 8-byte LE × rows
//!       Dict   labels varint, then per label (len varint + UTF-8 bytes),
//!              then codes varint × rows
//! digest     u64        (FNV-1a 64 over every preceding byte)
//! ```
//!
//! The trailing digest doubles as the store-level fingerprint CI pins:
//! [`TraceStore::digest`] returns it without materializing a file, and
//! because merged stores are bit-identical across thread counts, so is
//! the digest. Empty tables cost one byte each, so a solo fig4 cell
//! (which never emits admission events) pays no overhead for the fleet
//! kinds.

use crate::column::{Column, Interner};
use crate::schema::{ColumnType, ALL_KINDS};
use crate::store::{Table, TraceStore};
use std::fmt;

/// The 4-byte export signature.
pub const MAGIC: [u8; 4] = *b"SCTS";

/// The format version this crate writes and reads. Bumped to 2 when the
/// `slo_violation` table and `job_arrived.submitted_tu` column were
/// added (the table count and per-table layout both changed).
pub const VERSION: u32 = 2;

/// Why decoding an export failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    BadVersion(u32),
    /// The buffer ended before the layout was complete.
    Truncated,
    /// The trailing digest does not match the decoded bytes.
    DigestMismatch {
        /// Digest stored in the trailer.
        stored: u64,
        /// Digest recomputed over the payload.
        computed: u64,
    },
    /// A decoded value is impossible (oversized varint, bad UTF-8,
    /// dictionary code past the dictionary).
    Malformed,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::BadMagic => write!(f, "not an SCTS export (bad magic)"),
            ExportError::BadVersion(v) => write!(f, "unsupported SCTS version {v}"),
            ExportError::Truncated => write!(f, "truncated SCTS export"),
            ExportError::DigestMismatch { stored, computed } => {
                write!(f, "SCTS digest mismatch: trailer {stored:016x}, payload {computed:016x}")
            }
            ExportError::Malformed => write!(f, "malformed SCTS payload"),
        }
    }
}

impl std::error::Error for ExportError {}

/// FNV-1a 64 over `bytes` — small, dependency-free, and stable across
/// platforms, which is all a CI fingerprint needs (this is an integrity
/// check, not a cryptographic commitment).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over the encoded buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExportError> {
        let end = self.pos.checked_add(n).ok_or(ExportError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(ExportError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, ExportError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self.bytes.get(self.pos).ok_or(ExportError::Truncated)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(ExportError::Malformed)
    }

    fn varint_u32(&mut self) -> Result<u32, ExportError> {
        u32::try_from(self.varint()?).map_err(|_| ExportError::Malformed)
    }
}

fn encode_table(out: &mut Vec<u8>, table: &Table) {
    push_varint(out, table.rows() as u64);
    if table.is_empty() {
        return;
    }
    let mut prev = 0u64;
    for &bits in table.t_bits() {
        push_varint(out, bits.wrapping_sub(prev));
        prev = bits;
    }
    for &tenant in table.tenant() {
        push_varint(out, u64::from(tenant));
    }
    for col in table.columns() {
        match col {
            Column::U32(v) => v.iter().for_each(|&x| push_varint(out, u64::from(x))),
            Column::U64(v) => v.iter().for_each(|&x| push_varint(out, x)),
            Column::F64(v) => v.iter().for_each(|&x| out.extend_from_slice(&x.to_le_bytes())),
            Column::Dict { codes, dict } => {
                push_varint(out, dict.len() as u64);
                for label in dict.labels() {
                    push_varint(out, label.len() as u64);
                    out.extend_from_slice(label.as_bytes());
                }
                codes.iter().for_each(|&c| push_varint(out, u64::from(c)));
            }
        }
    }
}

fn decode_table(r: &mut Reader<'_>, kind: crate::schema::EventKind) -> Result<Table, ExportError> {
    let rows = usize::try_from(r.varint()?).map_err(|_| ExportError::Malformed)?;
    if rows == 0 {
        // Even an empty table carries its declared (empty) columns, so
        // schema-resolved queries stay in bounds.
        let cols = kind.columns().iter().map(|spec| Column::new(spec.ty)).collect();
        return Ok(Table::from_parts(kind, Vec::new(), Vec::new(), cols));
    }
    // Cap against absurd row counts before allocating (a corrupt varint
    // must not turn into an OOM): the buffer can hold at most one byte
    // per remaining row.
    if rows > r.bytes.len().saturating_sub(r.pos) {
        return Err(ExportError::Truncated);
    }
    let mut t_bits = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for _ in 0..rows {
        prev = prev.wrapping_add(r.varint()?);
        t_bits.push(prev);
    }
    let mut tenant = Vec::with_capacity(rows);
    for _ in 0..rows {
        tenant.push(r.varint_u32()?);
    }
    let mut cols = Vec::with_capacity(kind.columns().len());
    for spec in kind.columns() {
        let col = match spec.ty {
            ColumnType::U32 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(r.varint_u32()?);
                }
                Column::U32(v)
            }
            ColumnType::U64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(r.varint()?);
                }
                Column::U64(v)
            }
            ColumnType::F64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let raw = r.take(8)?;
                    let mut le = [0u8; 8];
                    le.copy_from_slice(raw);
                    v.push(f64::from_le_bytes(le));
                }
                Column::F64(v)
            }
            ColumnType::Dict => {
                let n_labels = usize::try_from(r.varint()?).map_err(|_| ExportError::Malformed)?;
                if n_labels > r.bytes.len().saturating_sub(r.pos) {
                    return Err(ExportError::Truncated);
                }
                let mut labels = Vec::with_capacity(n_labels);
                for _ in 0..n_labels {
                    let len = usize::try_from(r.varint()?).map_err(|_| ExportError::Malformed)?;
                    let raw = r.take(len)?;
                    labels
                        .push(String::from_utf8(raw.to_vec()).map_err(|_| ExportError::Malformed)?);
                }
                let mut codes = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let code = r.varint_u32()?;
                    if code as usize >= n_labels {
                        return Err(ExportError::Malformed);
                    }
                    codes.push(code);
                }
                Column::Dict { codes, dict: Interner::from_labels(labels) }
            }
        };
        cols.push(col);
    }
    Ok(Table::from_parts(kind, t_bits, tenant, cols))
}

impl TraceStore {
    /// Encodes the store as an SCTS v1 buffer (payload + digest
    /// trailer). Bit-identical for equal stores, so merged fleet exports
    /// reproduce across `RAYON_NUM_THREADS`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.events() as usize * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        for table in self.tables() {
            encode_table(&mut out, table);
        }
        let digest = fnv1a64(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// The store's FNV-1a 64 fingerprint — the same value the export's
    /// trailer carries, computed without materializing a file.
    pub fn digest(&self) -> u64 {
        let bytes = self.to_bytes();
        let trailer = &bytes[bytes.len() - 8..];
        let mut le = [0u8; 8];
        le.copy_from_slice(trailer);
        u64::from_le_bytes(le)
    }

    /// Decodes an SCTS v1 buffer, verifying magic, version, layout, and
    /// the digest trailer.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceStore, ExportError> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(ExportError::Truncated);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let mut le = [0u8; 8];
        le.copy_from_slice(trailer);
        let stored = u64::from_le_bytes(le);
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(ExportError::DigestMismatch { stored, computed });
        }
        let mut r = Reader { bytes: payload, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ExportError::BadMagic);
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(r.take(4)?);
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(ExportError::BadVersion(version));
        }
        let mut tables = Vec::with_capacity(ALL_KINDS.len());
        for kind in ALL_KINDS {
            tables.push(decode_table(&mut r, kind)?);
        }
        if r.pos != payload.len() {
            return Err(ExportError::Malformed);
        }
        Ok(TraceStore::from_tables(tables))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Agg, EventKind};
    use crate::Query;
    use scan_sim::{ScalingChoice, SimTime, TraceEvent};

    fn sample_store() -> TraceStore {
        let mut store = TraceStore::new();
        store.ingest(SimTime::new(0.25), &TraceEvent::VmHired { vm: 0, tier: 0, cores: 4 });
        store.ingest(
            SimTime::new(1.0),
            &TraceEvent::JobArrived { job: 0, size_units: 12.0, submitted_tu: 1.0 },
        );
        store.ingest(
            SimTime::new(1.5),
            &TraceEvent::SubtaskDispatched {
                job: 0,
                stage: 0,
                vm: 0,
                cores: 2,
                waited_tu: 0.5,
                busy_tu: 2.0,
            },
        );
        store.ingest(
            SimTime::new(2.0),
            &TraceEvent::ScalingDecision {
                stage: 0,
                cores: 2,
                queued_jobs: 3,
                delay_cost: 1.25,
                hire_cost: f64::NAN,
                choice: ScalingChoice::Wait,
            },
        );
        store.ingest(SimTime::new(9.0), &TraceEvent::RunEnded { events_dispatched: 1 << 40 });
        store
    }

    #[test]
    fn round_trips_byte_identically() {
        let store = sample_store();
        let bytes = store.to_bytes();
        let decoded = TraceStore::from_bytes(&bytes).expect("own export must decode");
        // NaN in the scaling costs breaks PartialEq, so compare re-encoded
        // bytes: bit-identical encode ⇒ bit-identical store.
        assert_eq!(decoded.to_bytes(), bytes);
        assert_eq!(decoded.events(), store.events());
        assert!(decoded.check_invariants());
    }

    #[test]
    fn decoded_stores_answer_queries() {
        let store = sample_store();
        let decoded = TraceStore::from_bytes(&store.to_bytes()).expect("own export must decode");
        let rows = Query::over(EventKind::SubtaskDispatched)
            .group_by("tier")
            .aggregate(Agg::P95, "waited_tu")
            .run(&decoded)
            .expect("tier and waited_tu are declared");
        assert_eq!(rows[0].group.as_deref(), Some("private"));
        assert_eq!(rows[0].value, 0.5);
    }

    #[test]
    fn digest_matches_trailer_and_detects_tampering() {
        let store = sample_store();
        let mut bytes = store.to_bytes();
        assert_eq!(store.digest(), {
            let mut le = [0u8; 8];
            le.copy_from_slice(&bytes[bytes.len() - 8..]);
            u64::from_le_bytes(le)
        });
        let flip = bytes.len() / 2;
        bytes[flip] ^= 0x01;
        assert!(matches!(TraceStore::from_bytes(&bytes), Err(ExportError::DigestMismatch { .. })));
    }

    #[test]
    fn rejects_wrong_magic_version_and_truncation() {
        let store = sample_store();
        let good = store.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let payload_len = bad_magic.len() - 8;
        let digest = fnv1a64(&bad_magic[..payload_len]);
        bad_magic[payload_len..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(TraceStore::from_bytes(&bad_magic), Err(ExportError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let digest = fnv1a64(&bad_version[..payload_len]);
        bad_version[payload_len..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(TraceStore::from_bytes(&bad_version), Err(ExportError::BadVersion(99)));

        assert_eq!(TraceStore::from_bytes(&good[..5]), Err(ExportError::Truncated));
    }

    #[test]
    fn empty_store_is_tiny() {
        let bytes = TraceStore::new().to_bytes();
        // magic + version + one zero-varint per kind + digest.
        assert_eq!(bytes.len(), 4 + 4 + 16 + 8);
        let decoded = TraceStore::from_bytes(&bytes).expect("empty export must decode");
        assert_eq!(decoded.events(), 0);
    }

    #[test]
    fn merged_exports_are_deterministic() {
        let build = |tenant: u32, depth: u32| {
            let mut s = TraceStore::for_tenant(tenant);
            s.ingest(SimTime::new(1.0), &TraceEvent::QueueDepthSampled { depth });
            s.ingest(SimTime::new(2.0), &TraceEvent::VmHired { vm: 0, tier: tenant, cores: 2 });
            s
        };
        let merge_all = || {
            let mut base = build(0, 4);
            scan_sim::Merge::merge(&mut base, build(1, 7));
            scan_sim::Merge::merge(&mut base, build(2, 9));
            base.to_bytes()
        };
        assert_eq!(merge_all(), merge_all());
    }
}
