//! FASTQ records: the sequencer's raw output format.
//!
//! A record is four lines: `@id`, sequence, `+`, per-base qualities
//! (Phred+33). The parser is a streaming iterator over a byte buffer so
//! sharders can cut exactly on record boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One sequencing read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastqRecord {
    /// Read identifier (without the leading `@`).
    pub id: String,
    /// Base calls (`A`, `C`, `G`, `T`, `N`).
    pub seq: Vec<u8>,
    /// Phred+33 quality string, same length as `seq`.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record, checking the sequence/quality length invariant.
    pub fn new(id: impl Into<String>, seq: Vec<u8>, qual: Vec<u8>) -> Self {
        assert_eq!(seq.len(), qual.len(), "sequence and quality must have equal length");
        FastqRecord { id: id.into(), seq, qual }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for a zero-length read.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Mean Phred quality of the read (0 for empty reads).
    pub fn mean_quality(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.qual.iter().map(|&q| (q.saturating_sub(33)) as u64).sum();
        sum as f64 / self.qual.len() as f64
    }

    /// Serialised size in bytes (4 lines + newlines).
    pub fn encoded_len(&self) -> usize {
        1 + self.id.len() + 1 + self.seq.len() + 1 + 2 + self.qual.len() + 1
    }

    /// Appends the four-line FASTQ encoding to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.push(b'@');
        out.extend_from_slice(self.id.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(&self.seq);
        out.push(b'\n');
        out.extend_from_slice(b"+\n");
        out.extend_from_slice(&self.qual);
        out.push(b'\n');
    }
}

impl fmt::Display for FastqRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{}\n{}\n+\n{}",
            self.id,
            String::from_utf8_lossy(&self.seq),
            String::from_utf8_lossy(&self.qual)
        )
    }
}

/// Serialises records into one in-memory FASTQ "file".
pub fn write_fastq(records: &[FastqRecord]) -> Vec<u8> {
    let cap: usize = records.iter().map(FastqRecord::encoded_len).sum();
    let mut out = Vec::with_capacity(cap);
    for r in records {
        r.write_to(&mut out);
    }
    out
}

/// Errors from FASTQ parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastqError {
    /// The record header did not start with `@` at the given byte offset.
    BadHeader(usize),
    /// Input ended in the middle of a record.
    Truncated,
    /// Separator line was not `+`.
    BadSeparator(usize),
    /// Sequence and quality lines differ in length.
    LengthMismatch {
        /// Offset of the offending record.
        at: usize,
    },
}

impl fmt::Display for FastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastqError::BadHeader(at) => write!(f, "expected '@' header at byte {at}"),
            FastqError::Truncated => write!(f, "input truncated mid-record"),
            FastqError::BadSeparator(at) => write!(f, "expected '+' separator at byte {at}"),
            FastqError::LengthMismatch { at } => {
                write!(f, "sequence/quality length mismatch in record at byte {at}")
            }
        }
    }
}

impl std::error::Error for FastqError {}

/// Streaming FASTQ parser over a byte slice.
pub struct FastqReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FastqReader<'a> {
    /// Creates a reader over an in-memory FASTQ buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        FastqReader { buf, pos: 0 }
    }

    /// Current byte offset (always on a record boundary between records).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn read_line(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let start = self.pos;
        let end = self.buf[start..]
            .iter()
            .position(|&c| c == b'\n')
            .map(|i| start + i)
            .unwrap_or(self.buf.len());
        self.pos = (end + 1).min(self.buf.len() + 1);
        if self.pos > self.buf.len() {
            self.pos = self.buf.len();
        }
        Some(&self.buf[start..end])
    }
}

impl Iterator for FastqReader<'_> {
    type Item = Result<FastqRecord, FastqError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let rec_start = self.pos;
        let header = self.read_line()?;
        if header.first() != Some(&b'@') {
            return Some(Err(FastqError::BadHeader(rec_start)));
        }
        let id = String::from_utf8_lossy(&header[1..]).into_owned();
        let Some(seq) = self.read_line() else {
            return Some(Err(FastqError::Truncated));
        };
        let seq = seq.to_vec();
        let sep_at = self.pos;
        let Some(sep) = self.read_line() else {
            return Some(Err(FastqError::Truncated));
        };
        if sep.first() != Some(&b'+') {
            return Some(Err(FastqError::BadSeparator(sep_at)));
        }
        let Some(qual) = self.read_line() else {
            return Some(Err(FastqError::Truncated));
        };
        let qual = qual.to_vec();
        if seq.len() != qual.len() {
            return Some(Err(FastqError::LengthMismatch { at: rec_start }));
        }
        Some(Ok(FastqRecord { id, seq, qual }))
    }
}

/// Parses a whole buffer, failing on the first malformed record.
pub fn parse_fastq(buf: &[u8]) -> Result<Vec<FastqRecord>, FastqError> {
    FastqReader::new(buf).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(id: &str, seq: &str, qual: &str) -> FastqRecord {
        FastqRecord::new(id, seq.as_bytes().to_vec(), qual.as_bytes().to_vec())
    }

    #[test]
    fn roundtrip_single() {
        let r = rec("read1/pos=42", "ACGT", "IIII");
        let buf = write_fastq(std::slice::from_ref(&r));
        let back = parse_fastq(&buf).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn roundtrip_many() {
        let rs: Vec<FastqRecord> =
            (0..100).map(|i| rec(&format!("r{i}"), "ACGTACGT", "IIIIHHHH")).collect();
        let buf = write_fastq(&rs);
        assert_eq!(parse_fastq(&buf).unwrap(), rs);
    }

    #[test]
    fn encoded_len_matches() {
        let r = rec("id", "ACGT", "IIII");
        let mut buf = Vec::new();
        r.write_to(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
    }

    #[test]
    fn empty_buffer_yields_nothing() {
        assert_eq!(parse_fastq(b"").unwrap(), vec![]);
    }

    #[test]
    fn bad_header_detected() {
        let e = parse_fastq(b"not-a-header\nACGT\n+\nIIII\n").unwrap_err();
        assert_eq!(e, FastqError::BadHeader(0));
    }

    #[test]
    fn truncation_detected() {
        let e = parse_fastq(b"@r1\nACGT\n").unwrap_err();
        assert_eq!(e, FastqError::Truncated);
    }

    #[test]
    fn bad_separator_detected() {
        let e = parse_fastq(b"@r1\nACGT\nXIIII\nIIII\n").unwrap_err();
        assert!(matches!(e, FastqError::BadSeparator(_)));
    }

    #[test]
    fn length_mismatch_detected() {
        let e = parse_fastq(b"@r1\nACGT\n+\nII\n").unwrap_err();
        assert!(matches!(e, FastqError::LengthMismatch { .. }));
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let recs = parse_fastq(b"@r1\nACGT\n+\nIIII").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].qual, b"IIII");
    }

    #[test]
    fn mean_quality() {
        let r = rec("r", "AC", "I!"); // I = 40, ! = 0
        assert!((r.mean_quality() - 20.0).abs() < 1e-12);
        let empty = FastqRecord::new("e", vec![], vec![]);
        assert_eq!(empty.mean_quality(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn constructor_checks_lengths() {
        FastqRecord::new("x", vec![b'A'], vec![]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            recs in proptest::collection::vec(
                ("[a-zA-Z0-9_/]{1,20}", 1usize..200),
                0..50,
            )
        ) {
            let records: Vec<FastqRecord> = recs.iter().map(|(id, len)| {
                let seq: Vec<u8> = (0..*len).map(|i| b"ACGT"[(i * 7 + id.len()) % 4]).collect();
                let qual: Vec<u8> = (0..*len).map(|i| 33 + ((i * 3) % 40) as u8).collect();
                FastqRecord::new(id.clone(), seq, qual)
            }).collect();
            let buf = write_fastq(&records);
            prop_assert_eq!(parse_fastq(&buf).unwrap(), records);
        }
    }
}
