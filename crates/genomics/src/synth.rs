//! Deterministic synthetic genomes and reads.
//!
//! Substitutes for the paper's Illumina HiSeq data (DESIGN.md §5): a
//! seeded reference genome with planted variants, and a read simulator
//! with a configurable per-base error rate. Read ids embed the true origin
//! (`chrom:pos:strand`) so alignment accuracy is measurable exactly.

use crate::fastq::FastqRecord;
use scan_sim::SimRng;

/// The four bases.
pub const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Complements a base (N maps to itself).
pub fn complement(b: u8) -> u8 {
    match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        other => other,
    }
}

/// Reverse-complements a sequence.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// A planted ground-truth variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantedVariant {
    /// Chromosome index.
    pub chrom: u32,
    /// 0-based position.
    pub pos: u32,
    /// Reference base at the site.
    pub ref_base: u8,
    /// Alternate base carried by the sample.
    pub alt_base: u8,
}

/// A reference genome of one or more chromosomes.
#[derive(Debug, Clone)]
pub struct ReferenceGenome {
    chromosomes: Vec<Vec<u8>>,
}

impl ReferenceGenome {
    /// Generates `n_chromosomes` chromosomes of `chrom_len` bases each.
    pub fn generate(rng: &mut SimRng, n_chromosomes: usize, chrom_len: usize) -> Self {
        assert!(n_chromosomes > 0 && chrom_len > 0);
        let chromosomes = (0..n_chromosomes)
            .map(|_| (0..chrom_len).map(|_| BASES[rng.uniform_usize(0, 3)]).collect())
            .collect();
        ReferenceGenome { chromosomes }
    }

    /// Builds a genome from explicit sequences (tests).
    pub fn from_sequences(chromosomes: Vec<Vec<u8>>) -> Self {
        assert!(!chromosomes.is_empty());
        ReferenceGenome { chromosomes }
    }

    /// Number of chromosomes.
    pub fn n_chromosomes(&self) -> usize {
        self.chromosomes.len()
    }

    /// One chromosome's sequence.
    pub fn chromosome(&self, i: usize) -> &[u8] {
        &self.chromosomes[i]
    }

    /// Total bases across chromosomes.
    pub fn total_len(&self) -> usize {
        self.chromosomes.iter().map(Vec::len).sum()
    }

    /// Copies the genome and plants `n` random SNVs, returning the mutated
    /// "sample genome" and the ground-truth variant list (positions are
    /// unique per chromosome).
    pub fn plant_variants(
        &self,
        rng: &mut SimRng,
        n: usize,
    ) -> (ReferenceGenome, Vec<PlantedVariant>) {
        let mut sample = self.chromosomes.clone();
        let mut variants = Vec::with_capacity(n);
        let mut used = std::collections::HashSet::new();
        let mut attempts = 0;
        while variants.len() < n && attempts < n * 20 {
            attempts += 1;
            let chrom = rng.uniform_usize(0, self.chromosomes.len() - 1);
            let pos = rng.uniform_usize(0, self.chromosomes[chrom].len() - 1);
            if !used.insert((chrom, pos)) {
                continue;
            }
            let ref_base = self.chromosomes[chrom][pos];
            // Pick a different base.
            let alt_base = loop {
                let b = BASES[rng.uniform_usize(0, 3)];
                if b != ref_base {
                    break b;
                }
            };
            sample[chrom][pos] = alt_base;
            variants.push(PlantedVariant {
                chrom: chrom as u32,
                pos: pos as u32,
                ref_base,
                alt_base,
            });
        }
        variants.sort_by_key(|v| (v.chrom, v.pos));
        (ReferenceGenome { chromosomes: sample }, variants)
    }
}

/// Simulates short reads from a genome.
#[derive(Debug, Clone, Copy)]
pub struct ReadSimulator {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base sequencing error probability.
    pub error_rate: f64,
    /// Probability a read comes from the reverse strand.
    pub reverse_prob: f64,
}

impl Default for ReadSimulator {
    fn default() -> Self {
        ReadSimulator { read_len: 100, error_rate: 0.002, reverse_prob: 0.5 }
    }
}

impl ReadSimulator {
    /// Samples `n` reads uniformly from `genome`. Read ids encode the true
    /// origin as `r<i>:<chrom>:<pos>:<strand>`.
    pub fn simulate(
        &self,
        rng: &mut SimRng,
        genome: &ReferenceGenome,
        n: usize,
    ) -> Vec<FastqRecord> {
        assert!(self.read_len > 0);
        (0..n).map(|i| self.one_read(rng, genome, i)).collect()
    }

    fn one_read(&self, rng: &mut SimRng, genome: &ReferenceGenome, index: usize) -> FastqRecord {
        let chrom = rng.uniform_usize(0, genome.n_chromosomes() - 1);
        let seq_src = genome.chromosome(chrom);
        assert!(
            seq_src.len() >= self.read_len,
            "chromosome shorter than read length ({} < {})",
            seq_src.len(),
            self.read_len
        );
        let pos = rng.uniform_usize(0, seq_src.len() - self.read_len);
        let mut seq: Vec<u8> = seq_src[pos..pos + self.read_len].to_vec();
        let reverse = rng.uniform01() < self.reverse_prob;
        if reverse {
            seq = reverse_complement(&seq);
        }
        // Apply the error model; errored bases get low quality scores.
        let mut qual = vec![b'I'; self.read_len]; // Phred 40
        for j in 0..self.read_len {
            if rng.uniform01() < self.error_rate {
                let orig = seq[j];
                seq[j] = loop {
                    let b = BASES[rng.uniform_usize(0, 3)];
                    if b != orig {
                        break b;
                    }
                };
                qual[j] = b'('; // Phred 7: the simulator "knows" it is shaky
            }
        }
        let strand = if reverse { '-' } else { '+' };
        FastqRecord::new(format!("r{index}:{chrom}:{pos}:{strand}"), seq, qual)
    }
}

/// Parses the ground-truth origin out of a simulated read id.
pub fn parse_read_origin(id: &str) -> Option<(u32, u32, bool)> {
    let mut parts = id.split(':');
    let _name = parts.next()?;
    let chrom = parts.next()?.parse().ok()?;
    let pos = parts.next()?.parse().ok()?;
    let strand = parts.next()?;
    Some((chrom, pos, strand == "-"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::from_seed_u64(42)
    }

    #[test]
    fn genome_shape() {
        let g = ReferenceGenome::generate(&mut rng(), 3, 500);
        assert_eq!(g.n_chromosomes(), 3);
        assert_eq!(g.total_len(), 1500);
        assert!(g.chromosome(0).iter().all(|b| BASES.contains(b)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ReferenceGenome::generate(&mut rng(), 1, 100);
        let b = ReferenceGenome::generate(&mut rng(), 1, 100);
        assert_eq!(a.chromosome(0), b.chromosome(0));
    }

    #[test]
    fn reverse_complement_involution() {
        let seq = b"ACGTTGCA".to_vec();
        assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
        assert_eq!(reverse_complement(b"ACGT"), b"ACGT".to_vec());
    }

    #[test]
    fn planted_variants_differ_from_reference() {
        let g = ReferenceGenome::generate(&mut rng(), 2, 1000);
        let (sample, vars) = g.plant_variants(&mut rng(), 50);
        assert_eq!(vars.len(), 50);
        for v in &vars {
            assert_eq!(g.chromosome(v.chrom as usize)[v.pos as usize], v.ref_base);
            assert_eq!(sample.chromosome(v.chrom as usize)[v.pos as usize], v.alt_base);
            assert_ne!(v.ref_base, v.alt_base);
        }
        // Everything else identical.
        let mutated: usize = (0..2)
            .map(|c| {
                g.chromosome(c).iter().zip(sample.chromosome(c)).filter(|(a, b)| a != b).count()
            })
            .sum();
        assert_eq!(mutated, 50);
    }

    #[test]
    fn variants_sorted_and_unique() {
        let g = ReferenceGenome::generate(&mut rng(), 2, 500);
        let (_, vars) = g.plant_variants(&mut rng(), 30);
        let mut sorted = vars.clone();
        sorted.sort_by_key(|v| (v.chrom, v.pos));
        assert_eq!(vars, sorted);
        let mut seen = std::collections::HashSet::new();
        assert!(vars.iter().all(|v| seen.insert((v.chrom, v.pos))));
    }

    #[test]
    fn reads_have_correct_shape() {
        let g = ReferenceGenome::generate(&mut rng(), 1, 2000);
        let sim = ReadSimulator { read_len: 75, error_rate: 0.0, reverse_prob: 0.0 };
        let reads = sim.simulate(&mut rng(), &g, 20);
        assert_eq!(reads.len(), 20);
        for r in &reads {
            assert_eq!(r.len(), 75);
            // Error-free forward reads match the reference exactly.
            let (chrom, pos, rev) = parse_read_origin(&r.id).unwrap();
            assert!(!rev);
            assert_eq!(&g.chromosome(chrom as usize)[pos as usize..pos as usize + 75], &r.seq[..]);
        }
    }

    #[test]
    fn reverse_reads_match_after_rc() {
        let g = ReferenceGenome::generate(&mut rng(), 1, 2000);
        let sim = ReadSimulator { read_len: 50, error_rate: 0.0, reverse_prob: 1.0 };
        let reads = sim.simulate(&mut rng(), &g, 10);
        for r in &reads {
            let (chrom, pos, rev) = parse_read_origin(&r.id).unwrap();
            assert!(rev);
            let fwd = reverse_complement(&r.seq);
            assert_eq!(&g.chromosome(chrom as usize)[pos as usize..pos as usize + 50], &fwd[..]);
        }
    }

    #[test]
    fn error_rate_roughly_respected() {
        let g = ReferenceGenome::generate(&mut rng(), 1, 5000);
        let sim = ReadSimulator { read_len: 100, error_rate: 0.05, reverse_prob: 0.0 };
        let reads = sim.simulate(&mut rng(), &g, 200);
        let mut errors = 0usize;
        let mut total = 0usize;
        for r in &reads {
            let (chrom, pos, _) = parse_read_origin(&r.id).unwrap();
            let truth = &g.chromosome(chrom as usize)[pos as usize..pos as usize + 100];
            errors += r.seq.iter().zip(truth).filter(|(a, b)| a != b).count();
            total += 100;
        }
        let rate = errors as f64 / total as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed error rate {rate}");
    }

    #[test]
    fn origin_parsing() {
        assert_eq!(parse_read_origin("r7:2:1234:-"), Some((2, 1234, true)));
        assert_eq!(parse_read_origin("r7:0:88:+"), Some((0, 88, false)));
        assert_eq!(parse_read_origin("garbage"), None);
    }
}
