//! A 7-stage GATK-like analysis pipeline over shards.
//!
//! §IV-1: "We consider a particular 7-stage pipeline that is commonly used
//! to diagnose genetic mutations … the user submits aligned DNA or RNA
//! reads, typically in BAM format, and at the end of the pipeline receives
//! a list of suspected mutations." The simulation models those stages
//! analytically; this module is the *functional* counterpart used by the
//! examples: every stage does real work on real (synthetic) records, the
//! shard fan-out runs in parallel with rayon, and per-stage wall times are
//! measured so they can be fed to the knowledge base as profiling logs.
//!
//! Stage map (names follow the classic GATK DNA-seq best-practice flow):
//!
//! | # | Stage              | Work                                            |
//! |---|--------------------|-------------------------------------------------|
//! | 1 | MarkDuplicates     | flag reads duplicated at (ref, pos, strand)     |
//! | 2 | SortAlignments     | coordinate sort (serial-ish: the paper's c₂≈0)  |
//! | 3 | BaseRecalibration  | shift base qualities by empirical mismatch rate |
//! | 4 | RealignmentFilter  | drop unmapped / low-MAPQ / ragged reads         |
//! | 5 | Pileup             | per-position allele counts                      |
//! | 6 | CallVariants       | SNV calls from the pileup                       |
//! | 7 | VariantsToVCF      | gather + merge shard VCFs into one file         |

use crate::sam::{SamRecord, FLAG_DUPLICATE, FLAG_REVERSE};
use crate::synth::ReferenceGenome;
use crate::variant::{merge_vcf, VariantCaller, VcfRecord};
use rayon::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Human-readable names of the seven stages, index 0 = stage 1.
pub const STAGE_NAMES: [&str; 7] = [
    "MarkDuplicates",
    "SortAlignments",
    "BaseRecalibration",
    "RealignmentFilter",
    "Pileup",
    "CallVariants",
    "VariantsToVCF",
];

/// Result of running the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Final merged variant calls.
    pub variants: Vec<VcfRecord>,
    /// Wall-clock seconds spent in each stage (summed across shards).
    pub stage_seconds: [f64; 7],
    /// Reads surviving to the calling stage.
    pub reads_analysed: usize,
    /// Reads flagged as duplicates in stage 1.
    pub duplicates_flagged: usize,
    /// Reads dropped by the stage-4 filter.
    pub reads_filtered: usize,
    /// Number of shards processed.
    pub shards: usize,
}

/// Configuration of the functional pipeline.
#[derive(Debug, Clone, Copy)]
pub struct GatkLikePipeline {
    /// Variant-calling thresholds (stage 6).
    pub caller: VariantCaller,
    /// Stage-4 filter: minimum MAPQ.
    pub min_mapq: u8,
    /// Stage-4 filter: maximum mismatch fraction vs the reference.
    pub max_mismatch_fraction: f64,
}

impl Default for GatkLikePipeline {
    fn default() -> Self {
        GatkLikePipeline {
            caller: VariantCaller::default(),
            min_mapq: 10,
            max_mismatch_fraction: 0.08,
        }
    }
}

/// Per-shard intermediate state threaded through stages 1–6.
struct ShardState {
    records: Vec<SamRecord>,
    duplicates: usize,
    filtered: usize,
}

impl GatkLikePipeline {
    /// Runs all seven stages over the given alignment shards, in parallel
    /// across shards, and returns the merged result with per-stage timing.
    pub fn run(&self, genome: &ReferenceGenome, shards: Vec<Vec<SamRecord>>) -> PipelineResult {
        let n_shards = shards.len();
        // Stages 1–6 per shard, in parallel.
        let per_shard: Vec<(Vec<VcfRecord>, [f64; 6], ShardState)> = shards
            .into_par_iter()
            .map(|shard| self.run_shard(genome, shard))
            .map(|(vcf, times, state)| (vcf, times, state))
            .collect();

        let mut stage_seconds = [0.0f64; 7];
        let mut reads_analysed = 0;
        let mut duplicates_flagged = 0;
        let mut reads_filtered = 0;
        let mut shard_vcfs = Vec::with_capacity(n_shards);
        for (vcf, times, state) in per_shard {
            for (i, t) in times.iter().enumerate() {
                stage_seconds[i] += t;
            }
            reads_analysed += state.records.len();
            duplicates_flagged += state.duplicates;
            reads_filtered += state.filtered;
            shard_vcfs.push(vcf);
        }

        // Stage 7: gather.
        let t7 = Instant::now();
        let variants = merge_vcf(&shard_vcfs);
        stage_seconds[6] = t7.elapsed().as_secs_f64();

        PipelineResult {
            variants,
            stage_seconds,
            reads_analysed,
            duplicates_flagged,
            reads_filtered,
            shards: n_shards,
        }
    }

    fn run_shard(
        &self,
        genome: &ReferenceGenome,
        mut records: Vec<SamRecord>,
    ) -> (Vec<VcfRecord>, [f64; 6], ShardState) {
        let mut times = [0.0f64; 6];

        // Stage 1: MarkDuplicates.
        let t = Instant::now();
        let duplicates = mark_duplicates(&mut records);
        times[0] = t.elapsed().as_secs_f64();

        // Stage 2: SortAlignments (coordinate order).
        let t = Instant::now();
        records.sort_by(|a, b| (a.ref_id, a.pos, &a.qname).cmp(&(b.ref_id, b.pos, &b.qname)));
        times[1] = t.elapsed().as_secs_f64();

        // Stage 3: BaseRecalibration — measure the empirical mismatch rate
        // of high-confidence reads and damp qualities accordingly.
        let t = Instant::now();
        recalibrate(genome, &mut records);
        times[2] = t.elapsed().as_secs_f64();

        // Stage 4: RealignmentFilter.
        let t = Instant::now();
        let before = records.len();
        records.retain(|r| self.keep(genome, r));
        let filtered = before - records.len();
        times[3] = t.elapsed().as_secs_f64();

        // Stage 5 + 6: Pileup and calling (the caller builds its own
        // pileup; we time them together under stage 5 and charge the call
        // loop to stage 6 by a second pass).
        let t = Instant::now();
        let calls = self.caller.call(genome, &records);
        let both = t.elapsed().as_secs_f64();
        // Attribute ~60% to pileup, 40% to calling: the split is cosmetic
        // (one function does both) but keeps seven non-zero stage rows.
        times[4] = both * 0.6;
        times[5] = both * 0.4;

        (calls, times, ShardState { records, duplicates, filtered })
    }

    fn keep(&self, genome: &ReferenceGenome, r: &SamRecord) -> bool {
        if r.is_unmapped() || r.is_duplicate() || r.mapq < self.min_mapq {
            return false;
        }
        let chrom = genome.chromosome(r.ref_id as usize);
        let start = r.pos as usize;
        let end = start + r.seq.len();
        if end > chrom.len() {
            return false;
        }
        let mm = r.seq.iter().zip(&chrom[start..end]).filter(|(a, b)| a != b).count();
        (mm as f64) <= self.max_mismatch_fraction * r.seq.len() as f64
    }
}

/// Flags all but the first read at each `(ref, pos, strand)` as
/// duplicates; returns how many were flagged.
fn mark_duplicates(records: &mut [SamRecord]) -> usize {
    let mut seen: HashMap<(i32, i32, bool), usize> = HashMap::new();
    let mut flagged = 0;
    for r in records.iter_mut() {
        if r.is_unmapped() {
            continue;
        }
        let key = (r.ref_id, r.pos, r.flag & FLAG_REVERSE != 0);
        let count = seen.entry(key).or_insert(0);
        if *count > 0 {
            r.flag |= FLAG_DUPLICATE;
            flagged += 1;
        }
        *count += 1;
    }
    flagged
}

/// Base quality recalibration: if the shard's empirical mismatch rate
/// exceeds what the reported qualities promise, damp the qualities.
fn recalibrate(genome: &ReferenceGenome, records: &mut [SamRecord]) {
    let mut mismatches = 0usize;
    let mut bases = 0usize;
    for r in records.iter() {
        if r.is_unmapped() {
            continue;
        }
        let chrom = genome.chromosome(r.ref_id as usize);
        let start = r.pos as usize;
        let end = start + r.seq.len();
        if end > chrom.len() {
            continue;
        }
        mismatches += r.seq.iter().zip(&chrom[start..end]).filter(|(a, b)| a != b).count();
        bases += r.seq.len();
    }
    if bases == 0 {
        return;
    }
    let empirical = mismatches as f64 / bases as f64;
    // Phred of the empirical rate; cap reported quality at empirical + 10.
    let cap = if empirical <= 0.0 {
        93u8
    } else {
        ((-10.0 * empirical.log10()) as u8).saturating_add(10)
    };
    let cap_char = 33 + cap.min(60);
    for r in records.iter_mut() {
        for q in r.qual.iter_mut() {
            if *q > cap_char {
                *q = cap_char;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::KmerIndex;
    use crate::synth::{ReadSimulator, ReferenceGenome};
    use scan_sim::SimRng;

    fn aligned_shards(
        seed: u64,
        n_reads: usize,
        n_shards: usize,
    ) -> (ReferenceGenome, Vec<Vec<SamRecord>>, Vec<crate::synth::PlantedVariant>) {
        let mut rng = SimRng::from_seed_u64(seed);
        let reference = ReferenceGenome::generate(&mut rng, 1, 4000);
        let (sample, planted) = reference.plant_variants(&mut rng, 8);
        let index = KmerIndex::build(&reference, 15);
        let sim = ReadSimulator { read_len: 100, error_rate: 0.002, reverse_prob: 0.5 };
        let reads = sim.simulate(&mut rng, &sample, n_reads);
        let alignments = index.align_batch(&reference, &reads);
        let shard_size = alignments.len().div_ceil(n_shards);
        let shards = alignments.chunks(shard_size).map(<[SamRecord]>::to_vec).collect();
        (reference, shards, planted)
    }

    #[test]
    fn end_to_end_recovers_variants() {
        let (reference, shards, planted) = aligned_shards(11, 1200, 4);
        let result = GatkLikePipeline::default().run(&reference, shards);
        assert_eq!(result.shards, 4);
        let called: std::collections::HashSet<(u32, u32)> =
            result.variants.iter().map(|v| (v.chrom, v.pos)).collect();
        let found = planted.iter().filter(|v| called.contains(&(v.chrom, v.pos))).count();
        assert!(found >= 7, "found {found}/8 planted variants");
        assert!(result.reads_analysed > 0);
    }

    #[test]
    fn stage_times_all_measured() {
        let (reference, shards, _) = aligned_shards(12, 400, 2);
        let result = GatkLikePipeline::default().run(&reference, shards);
        // All seven stages ran (wall time may be tiny but is non-negative,
        // and stages 1–6 touched real data so reads were processed).
        assert!(result.stage_seconds.iter().all(|&t| t >= 0.0));
        assert_eq!(STAGE_NAMES.len(), result.stage_seconds.len());
    }

    #[test]
    fn duplicates_are_flagged_once_per_site() {
        let rec = |pos: i32| SamRecord {
            qname: format!("q{pos}"),
            flag: 0,
            ref_id: 0,
            pos,
            mapq: 60,
            seq: b"ACGT".to_vec(),
            qual: b"IIII".to_vec(),
        };
        let mut records = vec![rec(5), rec(5), rec(5), rec(9)];
        let flagged = mark_duplicates(&mut records);
        assert_eq!(flagged, 2);
        assert!(!records[0].is_duplicate());
        assert!(records[1].is_duplicate());
        assert!(records[2].is_duplicate());
        assert!(!records[3].is_duplicate());
    }

    #[test]
    fn reverse_strand_not_duplicate_of_forward() {
        let mut records = vec![
            SamRecord {
                qname: "f".into(),
                flag: 0,
                ref_id: 0,
                pos: 5,
                mapq: 60,
                seq: b"ACGT".to_vec(),
                qual: b"IIII".to_vec(),
            },
            SamRecord {
                qname: "r".into(),
                flag: FLAG_REVERSE,
                ref_id: 0,
                pos: 5,
                mapq: 60,
                seq: b"ACGT".to_vec(),
                qual: b"IIII".to_vec(),
            },
        ];
        assert_eq!(mark_duplicates(&mut records), 0);
    }

    #[test]
    fn recalibration_damps_overconfident_quals() {
        let mut rng = SimRng::from_seed_u64(13);
        let genome = ReferenceGenome::generate(&mut rng, 1, 200);
        // A read with 20% mismatches but quality 'I' (Phred 40).
        let mut seq = genome.chromosome(0)[0..50].to_vec();
        for i in (0..50).step_by(5) {
            seq[i] = if seq[i] == b'A' { b'C' } else { b'A' };
        }
        let mut records = vec![SamRecord {
            qname: "over".into(),
            flag: 0,
            ref_id: 0,
            pos: 0,
            mapq: 60,
            seq,
            qual: vec![b'I'; 50],
        }];
        recalibrate(&genome, &mut records);
        // Empirical rate 0.2 → Phred ≈ 7, cap ≈ 17 < 40.
        assert!(records[0].qual.iter().all(|&q| q < b'I'));
    }

    #[test]
    fn filter_drops_bad_records() {
        let mut rng = SimRng::from_seed_u64(14);
        let genome = ReferenceGenome::generate(&mut rng, 1, 300);
        let good = SamRecord {
            qname: "good".into(),
            flag: 0,
            ref_id: 0,
            pos: 10,
            mapq: 60,
            seq: genome.chromosome(0)[10..60].to_vec(),
            qual: vec![b'I'; 50],
        };
        let unmapped = SamRecord::unmapped("um", vec![b'A'; 10], vec![b'I'; 10]);
        let lowq = SamRecord { mapq: 1, qname: "lowq".into(), ..good.clone() };
        let overhang = SamRecord { pos: 295, qname: "overhang".into(), ..good.clone() };
        let pipeline = GatkLikePipeline::default();
        assert!(pipeline.keep(&genome, &good));
        assert!(!pipeline.keep(&genome, &unmapped));
        assert!(!pipeline.keep(&genome, &lowq));
        assert!(!pipeline.keep(&genome, &overhang));
    }

    #[test]
    fn sharded_and_unsharded_agree() {
        // The whole point of the Data Broker: sharding must not change the
        // analysis result (same variant *sites*).
        let (reference, shards, _) = aligned_shards(15, 800, 4);
        let all: Vec<SamRecord> = shards.iter().flatten().cloned().collect();
        let sharded = GatkLikePipeline::default().run(&reference, shards);
        let whole = GatkLikePipeline::default().run(&reference, vec![all]);
        let sites = |r: &PipelineResult| -> std::collections::BTreeSet<(u32, u32, char)> {
            r.variants.iter().map(|v| (v.chrom, v.pos, v.alt_base)).collect()
        };
        // Duplicate marking differs at shard boundaries, so allow a small
        // difference in marginal sites rather than exact equality.
        let a = sites(&sharded);
        let b = sites(&whole);
        let sym_diff = a.symmetric_difference(&b).count();
        assert!(
            sym_diff <= 2,
            "sharded vs whole call sets diverge too much: {sym_diff} sites differ"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rng = SimRng::from_seed_u64(16);
        let genome = ReferenceGenome::generate(&mut rng, 1, 100);
        let result = GatkLikePipeline::default().run(&genome, vec![]);
        assert!(result.variants.is_empty());
        assert_eq!(result.shards, 0);
        let result = GatkLikePipeline::default().run(&genome, vec![vec![]]);
        assert!(result.variants.is_empty());
    }
}
