//! SAM-style alignment records with a compact binary encoding ("SBAM").
//!
//! The paper's pipeline consumes "aligned DNA or RNA reads, typically in
//! Binary Aligned Map (BAM) format". Real BAM is BGZF-compressed; our SBAM
//! keeps the part that matters to the platform — a *binary, record-framed*
//! stream that sharders must split on record boundaries — without the
//! compression machinery.
//!
//! Binary layout (little-endian):
//!
//! ```text
//! file   := magic "SBAM1" u32 record_count record*
//! record := u32 total_len            (bytes after this field)
//!           u16 qname_len  qname
//!           u16 flag
//!           i32 ref_id  i32 pos  u8 mapq
//!           u32 seq_len   seq   qual(seq_len bytes)
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic bytes opening an SBAM stream.
pub const SBAM_MAGIC: &[u8; 5] = b"SBAM1";

/// Flag bit: the read failed to align.
pub const FLAG_UNMAPPED: u16 = 0x4;
/// Flag bit: the read aligned to the reverse strand.
pub const FLAG_REVERSE: u16 = 0x10;
/// Flag bit: the record is a PCR/optical duplicate.
pub const FLAG_DUPLICATE: u16 = 0x400;

/// One aligned (or unaligned) read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamRecord {
    /// Query (read) name.
    pub qname: String,
    /// Bitwise flags (`FLAG_*`).
    pub flag: u16,
    /// Reference sequence index; −1 when unmapped.
    pub ref_id: i32,
    /// 0-based leftmost mapping position; −1 when unmapped.
    pub pos: i32,
    /// Mapping quality (Phred-scaled confidence).
    pub mapq: u8,
    /// Read bases.
    pub seq: Vec<u8>,
    /// Phred+33 base qualities, same length as `seq`.
    pub qual: Vec<u8>,
}

impl SamRecord {
    /// An unmapped record for a read.
    pub fn unmapped(qname: impl Into<String>, seq: Vec<u8>, qual: Vec<u8>) -> Self {
        assert_eq!(seq.len(), qual.len());
        SamRecord {
            qname: qname.into(),
            flag: FLAG_UNMAPPED,
            ref_id: -1,
            pos: -1,
            mapq: 0,
            seq,
            qual,
        }
    }

    /// True when the unmapped flag is set.
    pub fn is_unmapped(&self) -> bool {
        self.flag & FLAG_UNMAPPED != 0
    }

    /// True when the duplicate flag is set.
    pub fn is_duplicate(&self) -> bool {
        self.flag & FLAG_DUPLICATE != 0
    }

    /// Serialised SBAM size of this record in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 2 + self.qname.len() + 2 + 4 + 4 + 1 + 4 + self.seq.len() * 2
    }

    /// Appends the SBAM encoding of this record to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        let payload = (self.encoded_len() - 4) as u32;
        out.extend_from_slice(&payload.to_le_bytes());
        out.extend_from_slice(&(self.qname.len() as u16).to_le_bytes());
        out.extend_from_slice(self.qname.as_bytes());
        out.extend_from_slice(&self.flag.to_le_bytes());
        out.extend_from_slice(&self.ref_id.to_le_bytes());
        out.extend_from_slice(&self.pos.to_le_bytes());
        out.push(self.mapq);
        out.extend_from_slice(&(self.seq.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.seq);
        out.extend_from_slice(&self.qual);
    }

    /// One-line SAM text form (subset of columns).
    pub fn to_sam_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.qname,
            self.flag,
            self.ref_id,
            self.pos + 1, // SAM is 1-based
            self.mapq,
            String::from_utf8_lossy(&self.seq),
            String::from_utf8_lossy(&self.qual),
        )
    }
}

impl fmt::Display for SamRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sam_line())
    }
}

/// Errors from SBAM decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SbamError {
    /// Stream did not start with the SBAM magic.
    BadMagic,
    /// Stream ended mid-record or mid-header.
    Truncated,
    /// A record's internal lengths are inconsistent.
    Corrupt(usize),
}

impl fmt::Display for SbamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbamError::BadMagic => write!(f, "missing SBAM magic"),
            SbamError::Truncated => write!(f, "SBAM stream truncated"),
            SbamError::Corrupt(at) => write!(f, "corrupt SBAM record at byte {at}"),
        }
    }
}

impl std::error::Error for SbamError {}

/// Serialises records into an SBAM byte stream.
pub fn write_sbam(records: &[SamRecord]) -> Vec<u8> {
    let cap = 9 + records.iter().map(SamRecord::encoded_len).sum::<usize>();
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(SBAM_MAGIC);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        r.write_to(&mut out);
    }
    out
}

/// Parses an SBAM byte stream.
pub fn parse_sbam(buf: &[u8]) -> Result<Vec<SamRecord>, SbamError> {
    if buf.len() < 9 || &buf[..5] != SBAM_MAGIC {
        return Err(SbamError::BadMagic);
    }
    let count =
        u32::from_le_bytes(buf[5..9].try_into().expect("slice 5..9 is exactly 4 bytes")) as usize;
    // Never trust the untrusted count for preallocation: a corrupt header
    // must not trigger a giant allocation. 21 bytes is the minimum record.
    let mut records = Vec::with_capacity(count.min(buf.len() / 21 + 1));
    let mut pos = 9usize;
    for _ in 0..count {
        let rec_start = pos;
        let payload = read_u32(buf, &mut pos)? as usize;
        let rec_end = pos + payload;
        if rec_end > buf.len() {
            return Err(SbamError::Truncated);
        }
        let qname_len = read_u16(buf, &mut pos)? as usize;
        if pos + qname_len > rec_end {
            return Err(SbamError::Corrupt(rec_start));
        }
        let qname = String::from_utf8_lossy(&buf[pos..pos + qname_len]).into_owned();
        pos += qname_len;
        let flag = read_u16(buf, &mut pos)?;
        let ref_id = read_i32(buf, &mut pos)?;
        let rpos = read_i32(buf, &mut pos)?;
        if pos >= rec_end {
            return Err(SbamError::Corrupt(rec_start));
        }
        let mapq = buf[pos];
        pos += 1;
        let seq_len = read_u32(buf, &mut pos)? as usize;
        if pos + 2 * seq_len != rec_end {
            return Err(SbamError::Corrupt(rec_start));
        }
        let seq = buf[pos..pos + seq_len].to_vec();
        pos += seq_len;
        let qual = buf[pos..pos + seq_len].to_vec();
        pos += seq_len;
        records.push(SamRecord { qname, flag, ref_id, pos: rpos, mapq, seq, qual });
    }
    if pos != buf.len() {
        return Err(SbamError::Corrupt(pos));
    }
    Ok(records)
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, SbamError> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(SbamError::Truncated);
    }
    let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("bounds-checked 4-byte slice"));
    *pos = end;
    Ok(v)
}

fn read_u16(buf: &[u8], pos: &mut usize) -> Result<u16, SbamError> {
    let end = *pos + 2;
    if end > buf.len() {
        return Err(SbamError::Truncated);
    }
    let v = u16::from_le_bytes(buf[*pos..end].try_into().expect("bounds-checked 2-byte slice"));
    *pos = end;
    Ok(v)
}

fn read_i32(buf: &[u8], pos: &mut usize) -> Result<i32, SbamError> {
    Ok(read_u32(buf, pos)? as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(name: &str, pos: i32) -> SamRecord {
        SamRecord {
            qname: name.into(),
            flag: 0,
            ref_id: 0,
            pos,
            mapq: 60,
            seq: b"ACGTACGT".to_vec(),
            qual: b"IIIIIIII".to_vec(),
        }
    }

    #[test]
    fn roundtrip() {
        let rs = vec![rec("a", 1), rec("b", 100), SamRecord::unmapped("c", vec![b'N'], vec![b'!'])];
        let buf = write_sbam(&rs);
        assert_eq!(parse_sbam(&buf).unwrap(), rs);
    }

    #[test]
    fn empty_stream_roundtrips() {
        let buf = write_sbam(&[]);
        assert_eq!(parse_sbam(&buf).unwrap(), vec![]);
    }

    #[test]
    fn encoded_len_matches_actual() {
        let r = rec("read-1", 5);
        let mut buf = Vec::new();
        r.write_to(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(parse_sbam(b"NOTSBAM!!"), Err(SbamError::BadMagic));
        assert_eq!(parse_sbam(b""), Err(SbamError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let buf = write_sbam(&[rec("a", 1)]);
        for cut in [buf.len() - 1, buf.len() - 5, 10] {
            assert!(parse_sbam(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = write_sbam(&[rec("a", 1)]);
        buf.push(0xFF);
        assert!(matches!(parse_sbam(&buf), Err(SbamError::Corrupt(_))));
    }

    #[test]
    fn flags() {
        let mut r = rec("a", 1);
        assert!(!r.is_unmapped());
        assert!(!r.is_duplicate());
        r.flag |= FLAG_DUPLICATE;
        assert!(r.is_duplicate());
        let u = SamRecord::unmapped("u", vec![], vec![]);
        assert!(u.is_unmapped());
        assert_eq!(u.ref_id, -1);
    }

    #[test]
    fn sam_line_is_one_based() {
        let r = rec("a", 0);
        assert!(r.to_sam_line().contains("\t1\t"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            entries in proptest::collection::vec(
                ("[a-zA-Z0-9_]{1,30}", 0u16..0x800, -1i32..4, 0i32..1_000_000, 0u8..=254, 0usize..100),
                0..40,
            )
        ) {
            let rs: Vec<SamRecord> = entries.iter().map(|(q, flag, rid, pos, mapq, len)| {
                SamRecord {
                    qname: q.clone(),
                    flag: *flag,
                    ref_id: *rid,
                    pos: *pos,
                    mapq: *mapq,
                    seq: vec![b'A'; *len],
                    qual: vec![b'I'; *len],
                }
            }).collect();
            let buf = write_sbam(&rs);
            prop_assert_eq!(parse_sbam(&buf).unwrap(), rs);
        }

        /// Any single-byte corruption of the header or a length field is
        /// either detected or yields a different record list — never a
        /// panic.
        #[test]
        fn prop_corruption_never_panics(flip in 0usize..200, val in 0u8..=255) {
            let rs = vec![rec("aaaa", 7), rec("bbbb", 9)];
            let mut buf = write_sbam(&rs);
            let idx = flip % buf.len();
            buf[idx] = val;
            let _ = parse_sbam(&buf); // must not panic
        }
    }
}
