//! Pileup-based variant calling and the VCF output format.
//!
//! The paper's GATK pipeline ends with "a list of suspected mutations
//! compared to the reference genome" in "a standard VCF file". This module
//! implements the minimal honest version: pile up aligned bases per
//! reference position, call a SNV where the alternate-allele fraction and
//! depth clear thresholds, and emit VCF records (text round-trip + the
//! `VariantsToVCF`-style merge the Data Broker's gather step needs).

use crate::sam::SamRecord;
use crate::synth::ReferenceGenome;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One called variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcfRecord {
    /// Chromosome index (rendered as `chr<N>`).
    pub chrom: u32,
    /// 0-based position (rendered 1-based, per VCF).
    pub pos: u32,
    /// Reference base.
    pub ref_base: char,
    /// Alternate base.
    pub alt_base: char,
    /// Phred-scaled call quality.
    pub qual: f64,
    /// Read depth at the site.
    pub depth: u32,
    /// Alternate allele observation count.
    pub alt_count: u32,
}

impl VcfRecord {
    /// Alternate allele fraction.
    pub fn allele_fraction(&self) -> f64 {
        if self.depth == 0 {
            0.0
        } else {
            self.alt_count as f64 / self.depth as f64
        }
    }

    /// One VCF data line.
    pub fn to_line(&self) -> String {
        format!(
            "chr{}\t{}\t.\t{}\t{}\t{:.1}\tPASS\tDP={};AC={}",
            self.chrom,
            self.pos + 1,
            self.ref_base,
            self.alt_base,
            self.qual,
            self.depth,
            self.alt_count
        )
    }

    /// Parses one VCF data line produced by [`VcfRecord::to_line`].
    pub fn parse_line(line: &str) -> Option<VcfRecord> {
        let mut f = line.split('\t');
        let chrom = f.next()?.strip_prefix("chr")?.parse().ok()?;
        let pos1: u32 = f.next()?.parse().ok()?;
        let _id = f.next()?;
        let ref_base = f.next()?.chars().next()?;
        let alt_base = f.next()?.chars().next()?;
        let qual: f64 = f.next()?.parse().ok()?;
        let _filter = f.next()?;
        let info = f.next()?;
        let mut depth = 0;
        let mut alt_count = 0;
        for kv in info.split(';') {
            let (k, v) = kv.split_once('=')?;
            match k {
                "DP" => depth = v.parse().ok()?,
                "AC" => alt_count = v.parse().ok()?,
                _ => {}
            }
        }
        Some(VcfRecord {
            chrom,
            pos: pos1.checked_sub(1)?,
            ref_base,
            alt_base,
            qual,
            depth,
            alt_count,
        })
    }
}

impl fmt::Display for VcfRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// The standard VCF header emitted before data lines.
pub const VCF_HEADER: &str =
    "##fileformat=VCFv4.2\n##source=scan-genomics\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO";

/// Serialises records into a VCF "file" (header + lines, sorted).
pub fn write_vcf(records: &[VcfRecord]) -> String {
    let mut sorted: Vec<&VcfRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.chrom, r.pos));
    let mut out = String::from(VCF_HEADER);
    out.push('\n');
    for r in sorted {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parses a VCF file (skipping `#` header lines).
pub fn parse_vcf(text: &str) -> Option<Vec<VcfRecord>> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(VcfRecord::parse_line)
        .collect()
}

/// Merges per-shard VCFs into one sorted, deduplicated VCF — the paper's
/// `VariantsToVCF` gather step ("the SCAN can merge many small input files
/// into one big file"). Records at the same site are combined by summing
/// depths/counts and keeping the max quality.
pub fn merge_vcf(shards: &[Vec<VcfRecord>]) -> Vec<VcfRecord> {
    let mut by_site: HashMap<(u32, u32, char), VcfRecord> = HashMap::new();
    for shard in shards {
        for r in shard {
            by_site
                .entry((r.chrom, r.pos, r.alt_base))
                .and_modify(|acc| {
                    acc.depth += r.depth;
                    acc.alt_count += r.alt_count;
                    acc.qual = acc.qual.max(r.qual);
                })
                .or_insert_with(|| r.clone());
        }
    }
    let mut out: Vec<VcfRecord> = by_site.into_values().collect();
    out.sort_by_key(|r| (r.chrom, r.pos, r.alt_base as u32));
    out
}

/// Pileup-based SNV caller.
#[derive(Debug, Clone, Copy)]
pub struct VariantCaller {
    /// Minimum read depth to consider a site.
    pub min_depth: u32,
    /// Minimum alternate allele fraction.
    pub min_allele_fraction: f64,
    /// Minimum base quality (Phred) for a base to count.
    pub min_base_quality: u8,
    /// Minimum mapping quality for a read to contribute.
    pub min_mapq: u8,
}

impl Default for VariantCaller {
    fn default() -> Self {
        VariantCaller { min_depth: 4, min_allele_fraction: 0.5, min_base_quality: 20, min_mapq: 10 }
    }
}

impl VariantCaller {
    /// Calls variants from aligned records against the reference.
    /// Duplicate-flagged and unmapped records are ignored (the pipeline's
    /// earlier stages set those flags).
    pub fn call(&self, genome: &ReferenceGenome, alignments: &[SamRecord]) -> Vec<VcfRecord> {
        // chrom → pos → base → (count)
        let mut pileup: HashMap<(u32, u32), [u32; 4]> = HashMap::new();
        for rec in alignments {
            if rec.is_unmapped() || rec.is_duplicate() || rec.mapq < self.min_mapq {
                continue;
            }
            let chrom = rec.ref_id as u32;
            for (i, (&base, &q)) in rec.seq.iter().zip(&rec.qual).enumerate() {
                if q.saturating_sub(33) < self.min_base_quality {
                    continue;
                }
                let code = match base {
                    b'A' => 0usize,
                    b'C' => 1,
                    b'G' => 2,
                    b'T' => 3,
                    _ => continue,
                };
                let pos = rec.pos as u32 + i as u32;
                pileup.entry((chrom, pos)).or_insert([0; 4])[code] += 1;
            }
        }
        let mut out = Vec::new();
        for ((chrom, pos), counts) in pileup {
            let depth: u32 = counts.iter().sum();
            if depth < self.min_depth {
                continue;
            }
            let chrom_seq = genome.chromosome(chrom as usize);
            if pos as usize >= chrom_seq.len() {
                continue;
            }
            let ref_base = chrom_seq[pos as usize];
            let ref_code = match ref_base {
                b'A' => 0usize,
                b'C' => 1,
                b'G' => 2,
                b'T' => 3,
                _ => continue,
            };
            // Strongest non-reference allele.
            let (alt_code, &alt_count) = counts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != ref_code)
                .max_by_key(|(_, &c)| c)
                .expect("three alt alleles");
            if alt_count == 0 {
                continue;
            }
            let af = alt_count as f64 / depth as f64;
            if af < self.min_allele_fraction {
                continue;
            }
            // Phred-style quality: scaled by evidence.
            let qual = (alt_count as f64 * 10.0 * af).min(3000.0);
            out.push(VcfRecord {
                chrom,
                pos,
                ref_base: ref_base as char,
                alt_base: b"ACGT"[alt_code] as char,
                qual,
                depth,
                alt_count,
            });
        }
        out.sort_by_key(|r| (r.chrom, r.pos));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::KmerIndex;
    use crate::synth::{ReadSimulator, ReferenceGenome};
    use scan_sim::SimRng;

    #[test]
    fn vcf_line_roundtrip() {
        let r = VcfRecord {
            chrom: 1,
            pos: 41,
            ref_base: 'A',
            alt_base: 'T',
            qual: 99.5,
            depth: 30,
            alt_count: 15,
        };
        let back = VcfRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(back, r);
        assert!((r.allele_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vcf_file_roundtrip_sorted() {
        let rs = vec![
            VcfRecord {
                chrom: 1,
                pos: 10,
                ref_base: 'A',
                alt_base: 'C',
                qual: 50.0,
                depth: 10,
                alt_count: 9,
            },
            VcfRecord {
                chrom: 0,
                pos: 99,
                ref_base: 'G',
                alt_base: 'T',
                qual: 60.0,
                depth: 12,
                alt_count: 11,
            },
        ];
        let text = write_vcf(&rs);
        assert!(text.starts_with("##fileformat"));
        let back = parse_vcf(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].chrom, 0, "output must be coordinate-sorted");
    }

    #[test]
    fn parse_vcf_rejects_garbage() {
        assert!(parse_vcf("#header\nnot a record\n").is_none());
    }

    #[test]
    fn merge_vcf_dedups_and_sums() {
        let a = vec![VcfRecord {
            chrom: 0,
            pos: 5,
            ref_base: 'A',
            alt_base: 'G',
            qual: 30.0,
            depth: 10,
            alt_count: 6,
        }];
        let b = vec![
            VcfRecord {
                chrom: 0,
                pos: 5,
                ref_base: 'A',
                alt_base: 'G',
                qual: 45.0,
                depth: 8,
                alt_count: 5,
            },
            VcfRecord {
                chrom: 0,
                pos: 2,
                ref_base: 'C',
                alt_base: 'T',
                qual: 20.0,
                depth: 4,
                alt_count: 4,
            },
        ];
        let merged = merge_vcf(&[a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].pos, 2);
        let site5 = &merged[1];
        assert_eq!(site5.depth, 18);
        assert_eq!(site5.alt_count, 11);
        assert_eq!(site5.qual, 45.0);
    }

    /// End-to-end: plant variants, simulate reads off the mutated sample,
    /// align against the clean reference, call — the planted variants come
    /// back.
    #[test]
    fn caller_recovers_planted_variants() {
        let mut rng = SimRng::from_seed_u64(7);
        let reference = ReferenceGenome::generate(&mut rng, 1, 4000);
        let (sample, planted) = reference.plant_variants(&mut rng, 10);
        let index = KmerIndex::build(&reference, 15);
        let sim = ReadSimulator { read_len: 100, error_rate: 0.001, reverse_prob: 0.5 };
        // ~30x coverage: 4000 * 30 / 100 = 1200 reads.
        let reads = sim.simulate(&mut rng, &sample, 1200);
        let alignments = index.align_batch(&reference, &reads);
        let calls = VariantCaller::default().call(&reference, &alignments);

        let called: std::collections::HashSet<(u32, u32, char)> =
            calls.iter().map(|c| (c.chrom, c.pos, c.alt_base)).collect();
        let mut found = 0;
        for v in &planted {
            if called.contains(&(v.chrom, v.pos, v.alt_base as char)) {
                found += 1;
            }
        }
        assert!(found >= 9, "recovered {found}/10 planted variants; calls: {}", calls.len());
        // And precision: few spurious calls.
        assert!(
            calls.len() <= planted.len() + 3,
            "too many spurious calls: {} (planted {})",
            calls.len(),
            planted.len()
        );
    }

    #[test]
    fn caller_ignores_duplicates_and_low_mapq() {
        let mut rng = SimRng::from_seed_u64(8);
        let reference = ReferenceGenome::generate(&mut rng, 1, 500);
        // Fabricate a pile of duplicate reads all claiming a variant.
        let mut fake = SamRecord {
            qname: "dup".into(),
            flag: crate::sam::FLAG_DUPLICATE,
            ref_id: 0,
            pos: 100,
            mapq: 60,
            seq: vec![b'A'; 50],
            qual: vec![b'I'; 50],
        };
        let dups: Vec<SamRecord> = (0..20).map(|_| fake.clone()).collect();
        let calls = VariantCaller::default().call(&reference, &dups);
        assert!(calls.is_empty(), "duplicates must not drive calls");
        // Same reads without the duplicate flag but with mapq 0.
        fake.flag = 0;
        fake.mapq = 0;
        let lowq: Vec<SamRecord> = (0..20).map(|_| fake.clone()).collect();
        assert!(VariantCaller::default().call(&reference, &lowq).is_empty());
    }

    #[test]
    fn caller_respects_depth_threshold() {
        let mut rng = SimRng::from_seed_u64(9);
        let reference = ReferenceGenome::generate(&mut rng, 1, 200);
        let pos = 50usize;
        let ref_base = reference.chromosome(0)[pos];
        let alt = if ref_base == b'A' { b'C' } else { b'A' };
        let rec = SamRecord {
            qname: "r".into(),
            flag: 0,
            ref_id: 0,
            pos: pos as i32,
            mapq: 60,
            seq: vec![alt],
            qual: vec![b'I'],
        };
        // 3 reads < min_depth 4 → no call; 4 reads → call.
        let three: Vec<SamRecord> = (0..3).map(|_| rec.clone()).collect();
        assert!(VariantCaller::default().call(&reference, &three).is_empty());
        let four: Vec<SamRecord> = (0..4).map(|_| rec.clone()).collect();
        let calls = VariantCaller::default().call(&reference, &four);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].alt_base, alt as char);
    }
}
