//! # scan-genomics — the genomic data substrate
//!
//! The SCAN Data Broker "is equipped with Data Sharders for each type of
//! genomic data, such as FASTQ and BAM files. They can, for example, divide
//! a 100GB FASTQ file into 25 4GB files" (§III-A.1(iii)). The paper used
//! real Illumina data and the Broad GATK binaries; we have neither, so this
//! crate implements the closest synthetic equivalent that exercises the
//! same code paths (see DESIGN.md §5):
//!
//! * [`fastq`] — FASTQ records, a streaming parser and a writer.
//! * [`sam`] — SAM-style alignment records with both a text form and a
//!   compact binary ("SBAM") encoding standing in for BAM.
//! * VCF variant records (in [`variant`]), writer/parser and the merge
//!   used by the paper's `VariantsToVCF`-style gather step.
//! * [`synth`] — deterministic reference-genome and read generation with a
//!   configurable sequencing-error model.
//! * [`shard`] — record-boundary-respecting sharders for FASTQ and SBAM
//!   byte streams, plus shard planning from target chunk sizes.
//! * [`align`] — a k-mer seed-and-vote read aligner (a miniature BWA).
//! * [`variant`] — a pileup-based variant caller (a miniature GATK
//!   UnifiedGenotyper).
//! * [`pipeline`] — a 7-stage GATK-like pipeline over shards, parallelised
//!   with rayon, used by the examples to do *real* work end to end.
//!
//! All generation is deterministic given a seed; nothing here reads or
//! writes the filesystem — "files" are in-memory byte buffers, which is
//! what the simulated shared store serves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod fastq;
pub mod pipeline;
pub mod sam;
pub mod shard;
pub mod synth;
pub mod variant;

pub use align::{AlignStats, KmerIndex};
pub use fastq::FastqRecord;
pub use sam::SamRecord;
pub use shard::{plan_shards, ShardPlan};
pub use synth::{ReadSimulator, ReferenceGenome};
pub use variant::{VariantCaller, VcfRecord};
