//! Data Sharders: record-boundary-respecting splitting and merging.
//!
//! §III-A.1(iii): "The SCAN is equipped with Data Sharders for each type of
//! genomic data … divide a 100GB FASTQ file into 25 4GB files, and create
//! 25 data analysis subtasks. On the other hand, the SCAN can merge many
//! small input files into one big file."
//!
//! Sharders operate on in-memory byte buffers and guarantee that every
//! shard is independently parseable: FASTQ shards cut between records,
//! SBAM shards re-frame each piece with its own header.

use crate::fastq::{FastqError, FastqReader};
use crate::sam::{parse_sbam, write_sbam, SamRecord, SbamError};
use serde::{Deserialize, Serialize};

/// A plan describing how a dataset of `total_size` splits into shards of
/// at most `chunk_size` (both in the same unit — bytes here, GB at the
/// platform level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Total dataset size.
    pub total_size: f64,
    /// Target shard size.
    pub chunk_size: f64,
    /// Sizes of each shard: all equal to `chunk_size` except a possibly
    /// smaller final shard.
    pub shard_sizes: Vec<f64>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shard_sizes.len()
    }
}

/// Plans shards for a dataset: ⌈total/chunk⌉ pieces, the last one ragged.
///
/// # Panics
/// Panics unless both sizes are positive.
pub fn plan_shards(total_size: f64, chunk_size: f64) -> ShardPlan {
    assert!(total_size > 0.0 && chunk_size > 0.0, "sizes must be positive");
    let n = (total_size / chunk_size).ceil().max(1.0) as usize;
    let mut shard_sizes = vec![chunk_size; n];
    let remainder = total_size - chunk_size * (n - 1) as f64;
    shard_sizes[n - 1] = remainder;
    ShardPlan { total_size, chunk_size, shard_sizes }
}

/// Splits a FASTQ buffer into shards of at most `max_bytes` each, cutting
/// only on record boundaries. A record larger than `max_bytes` gets its
/// own shard (never split mid-record).
pub fn shard_fastq(buf: &[u8], max_bytes: usize) -> Result<Vec<Vec<u8>>, FastqError> {
    assert!(max_bytes > 0);
    let mut shards = Vec::new();
    let mut reader = FastqReader::new(buf);
    let mut shard_start = 0usize;
    let mut last_boundary = 0usize;
    loop {
        let before = reader.offset();
        match reader.next() {
            None => break,
            Some(Err(e)) => return Err(e),
            Some(Ok(_)) => {
                let after = reader.offset();
                if after - shard_start > max_bytes && before > shard_start {
                    shards.push(buf[shard_start..before].to_vec());
                    shard_start = before;
                }
                last_boundary = after;
            }
        }
    }
    if last_boundary > shard_start {
        shards.push(buf[shard_start..last_boundary].to_vec());
    }
    Ok(shards)
}

/// Concatenates FASTQ shards back into one buffer (the inverse of
/// [`shard_fastq`] — FASTQ has no header, so merging is concatenation).
pub fn merge_fastq(shards: &[Vec<u8>]) -> Vec<u8> {
    let cap = shards.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(cap);
    for s in shards {
        out.extend_from_slice(s);
    }
    out
}

/// Splits an SBAM buffer into independently-parseable SBAM shards of at
/// most `max_records` records each.
pub fn shard_sbam(buf: &[u8], max_records: usize) -> Result<Vec<Vec<u8>>, SbamError> {
    assert!(max_records > 0);
    let records = parse_sbam(buf)?;
    Ok(records.chunks(max_records).map(write_sbam).collect())
}

/// Merges SBAM shards back into one stream, preserving record order.
pub fn merge_sbam(shards: &[Vec<u8>]) -> Result<Vec<u8>, SbamError> {
    let mut all: Vec<SamRecord> = Vec::new();
    for s in shards {
        all.extend(parse_sbam(s)?);
    }
    Ok(write_sbam(&all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::{parse_fastq, write_fastq, FastqRecord};
    use proptest::prelude::*;

    fn records(n: usize, len: usize) -> Vec<FastqRecord> {
        (0..n)
            .map(|i| FastqRecord::new(format!("r{i}"), vec![b'A'; len], vec![b'I'; len]))
            .collect()
    }

    #[test]
    fn plan_shards_counts() {
        // The paper's example: 100 GB in 4 GB chunks → 25 shards.
        let plan = plan_shards(100.0, 4.0);
        assert_eq!(plan.n_shards(), 25);
        assert!(plan.shard_sizes.iter().all(|&s| (s - 4.0).abs() < 1e-12));
        // Ragged tail.
        let plan = plan_shards(10.0, 4.0);
        assert_eq!(plan.n_shards(), 3);
        assert!((plan.shard_sizes[2] - 2.0).abs() < 1e-12);
        // Chunk larger than total → one shard of the total.
        let plan = plan_shards(1.0, 4.0);
        assert_eq!(plan.n_shards(), 1);
        assert!((plan.shard_sizes[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_conserves_total() {
        let plan = plan_shards(17.3, 2.5);
        let sum: f64 = plan.shard_sizes.iter().sum();
        assert!((sum - 17.3).abs() < 1e-9);
    }

    #[test]
    fn fastq_shards_parse_independently() {
        let recs = records(50, 80);
        let buf = write_fastq(&recs);
        let shards = shard_fastq(&buf, 1000).unwrap();
        assert!(shards.len() > 1);
        let mut recovered = Vec::new();
        for s in &shards {
            // Each shard parses on its own — the record-boundary guarantee.
            recovered.extend(parse_fastq(s).unwrap());
        }
        assert_eq!(recovered, recs);
    }

    #[test]
    fn fastq_shard_size_bound_respected() {
        // Fixed-width ids so every record has the same encoded length.
        let recs: Vec<FastqRecord> = (0..100)
            .map(|i| FastqRecord::new(format!("r{i:03}"), vec![b'A'; 50], vec![b'I'; 50]))
            .collect();
        let one = recs[0].encoded_len();
        let buf = write_fastq(&recs);
        let max = one * 7 + 3; // room for 7 records
        let shards = shard_fastq(&buf, max).unwrap();
        for s in &shards[..shards.len() - 1] {
            assert!(s.len() <= max, "shard of {} bytes exceeds max {max}", s.len());
            assert!(s.len() >= one * 7, "shard underfilled");
        }
    }

    #[test]
    fn oversized_record_gets_own_shard() {
        let recs = vec![
            FastqRecord::new("big", vec![b'A'; 500], vec![b'I'; 500]),
            FastqRecord::new("small", vec![b'C'; 10], vec![b'I'; 10]),
        ];
        let buf = write_fastq(&recs);
        let shards = shard_fastq(&buf, 100).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(parse_fastq(&shards[0]).unwrap()[0].id, "big");
    }

    #[test]
    fn merge_fastq_is_inverse() {
        let recs = records(30, 60);
        let buf = write_fastq(&recs);
        let shards = shard_fastq(&buf, 500).unwrap();
        assert_eq!(merge_fastq(&shards), buf);
    }

    #[test]
    fn empty_fastq_shards_to_nothing() {
        assert_eq!(shard_fastq(b"", 100).unwrap().len(), 0);
    }

    #[test]
    fn malformed_fastq_propagates_error() {
        assert!(shard_fastq(b"garbage\n", 100).is_err());
    }

    #[test]
    fn sbam_shard_and_merge_roundtrip() {
        let recs: Vec<SamRecord> = (0..25)
            .map(|i| SamRecord {
                qname: format!("q{i}"),
                flag: 0,
                ref_id: 0,
                pos: i,
                mapq: 60,
                seq: b"ACGT".to_vec(),
                qual: b"IIII".to_vec(),
            })
            .collect();
        let buf = write_sbam(&recs);
        let shards = shard_sbam(&buf, 10).unwrap();
        assert_eq!(shards.len(), 3);
        // Each shard is a valid SBAM stream.
        assert_eq!(parse_sbam(&shards[0]).unwrap().len(), 10);
        assert_eq!(parse_sbam(&shards[2]).unwrap().len(), 5);
        // Merging recovers the original records.
        let merged = merge_sbam(&shards).unwrap();
        assert_eq!(parse_sbam(&merged).unwrap(), recs);
    }

    #[test]
    fn sbam_shard_rejects_corrupt_input() {
        assert!(shard_sbam(b"bogus", 5).is_err());
    }

    proptest! {
        /// Sharding at any size, then merging, recovers the original
        /// record sequence (FASTQ).
        #[test]
        fn prop_fastq_shard_merge_roundtrip(
            n in 0usize..60,
            len in 1usize..100,
            max in 50usize..2000,
        ) {
            let recs = records(n, len);
            let buf = write_fastq(&recs);
            let shards = shard_fastq(&buf, max).unwrap();
            let merged = merge_fastq(&shards);
            prop_assert_eq!(parse_fastq(&merged).unwrap(), recs);
        }

        /// Every SBAM shard carries at most `max_records`, and the
        /// concatenation preserves order.
        #[test]
        fn prop_sbam_shard_bounds(n in 0usize..50, max in 1usize..20) {
            let recs: Vec<SamRecord> = (0..n).map(|i| SamRecord {
                qname: format!("q{i}"), flag: 0, ref_id: 0, pos: i as i32,
                mapq: 0, seq: vec![b'G'; 5], qual: vec![b'I'; 5],
            }).collect();
            let shards = shard_sbam(&write_sbam(&recs), max).unwrap();
            let mut total = 0;
            for s in &shards {
                let part = parse_sbam(s).unwrap();
                prop_assert!(part.len() <= max);
                total += part.len();
            }
            prop_assert_eq!(total, n);
        }
    }
}
