//! A k-mer seed-and-vote read aligner — a miniature BWA.
//!
//! The index stores every k-mer of the reference in a hash table (2-bit
//! packed). Alignment samples seeds along the read, votes on the implied
//! start position on both strands, verifies the best candidate by direct
//! comparison and emits a [`SamRecord`] whose MAPQ reflects the vote
//! margin. Batch alignment is data-parallel via rayon — the canonical
//! `par_iter().map().collect()` shape from the workspace's HPC guides.

use crate::fastq::FastqRecord;
use crate::sam::{SamRecord, FLAG_REVERSE};
use crate::synth::{reverse_complement, ReferenceGenome};
use rayon::prelude::*;
use std::collections::HashMap;

/// Packs a k-mer into a `u64` (2 bits per base). Returns `None` when the
/// window contains a non-ACGT base or `k > 31`.
fn pack_kmer(seq: &[u8]) -> Option<u64> {
    if seq.len() > 31 {
        return None;
    }
    let mut v = 0u64;
    for &b in seq {
        let code = match b {
            b'A' => 0u64,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            _ => return None,
        };
        v = (v << 2) | code;
    }
    Some(v)
}

/// A k-mer index over a reference genome.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    /// k-mer → (chrom, pos) occurrence list.
    map: HashMap<u64, Vec<(u32, u32)>>,
}

impl KmerIndex {
    /// Builds the index with word size `k` (4 ≤ k ≤ 31).
    pub fn build(genome: &ReferenceGenome, k: usize) -> Self {
        assert!((4..=31).contains(&k), "k must be in 4..=31");
        let mut map: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for c in 0..genome.n_chromosomes() {
            let seq = genome.chromosome(c);
            if seq.len() < k {
                continue;
            }
            for pos in 0..=(seq.len() - k) {
                if let Some(key) = pack_kmer(&seq[pos..pos + k]) {
                    map.entry(key).or_default().push((c as u32, pos as u32));
                }
            }
        }
        KmerIndex { k, map }
    }

    /// The word size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers indexed.
    pub fn n_kmers(&self) -> usize {
        self.map.len()
    }

    /// Occurrences of one k-mer.
    fn lookup(&self, kmer: u64) -> &[(u32, u32)] {
        self.map.get(&kmer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Aligns one read; returns an unmapped record when no confident
    /// placement exists.
    pub fn align_read(&self, genome: &ReferenceGenome, read: &FastqRecord) -> SamRecord {
        let fwd = self.vote(&read.seq);
        let rc = reverse_complement(&read.seq);
        let rev = self.vote(&rc);

        // Pick the strand with the stronger vote.
        let (candidate, reverse) = match (fwd, rev) {
            (Some(f), Some(r)) => {
                if f.2 >= r.2 {
                    (Some(f), false)
                } else {
                    (Some(r), true)
                }
            }
            (Some(f), None) => (Some(f), false),
            (None, Some(r)) => (Some(r), true),
            (None, None) => (None, false),
        };

        let Some((chrom, pos, votes, runner_up)) = candidate.map(|(c, p, v)| {
            let ru =
                if reverse { fwd.map(|f| f.2).unwrap_or(0) } else { rev.map(|r| r.2).unwrap_or(0) };
            (c, p, v, ru)
        }) else {
            return SamRecord::unmapped(read.id.clone(), read.seq.clone(), read.qual.clone());
        };

        // Verify by direct comparison against the reference.
        let oriented = if reverse { rc } else { read.seq.clone() };
        let chrom_seq = genome.chromosome(chrom as usize);
        let start = pos as usize;
        let end = start + oriented.len();
        if end > chrom_seq.len() {
            return SamRecord::unmapped(read.id.clone(), read.seq.clone(), read.qual.clone());
        }
        let mismatches =
            oriented.iter().zip(&chrom_seq[start..end]).filter(|(a, b)| a != b).count();
        // Reject placements worse than 10% mismatch — a seed collision.
        if mismatches * 10 > oriented.len() {
            return SamRecord::unmapped(read.id.clone(), read.seq.clone(), read.qual.clone());
        }

        // MAPQ from the vote margin, capped at 60 like real aligners.
        let margin = votes.saturating_sub(runner_up);
        let mapq = (margin * 12).min(60) as u8;

        let mut flag = 0u16;
        if reverse {
            flag |= FLAG_REVERSE;
        }
        SamRecord {
            qname: read.id.clone(),
            flag,
            ref_id: chrom as i32,
            pos: pos as i32,
            mapq,
            seq: oriented,
            qual: if reverse {
                read.qual.iter().rev().copied().collect()
            } else {
                read.qual.clone()
            },
        }
    }

    /// Seed-and-vote: sample seeds along the sequence, tally the implied
    /// alignment start `(chrom, seed_hit − seed_offset)`, return the
    /// winning position and its vote count.
    fn vote(&self, seq: &[u8]) -> Option<(u32, u32, usize)> {
        if seq.len() < self.k {
            return None;
        }
        let stride = (self.k / 2).max(1);
        let mut tally: HashMap<(u32, u32), usize> = HashMap::new();
        let mut offset = 0usize;
        while offset + self.k <= seq.len() {
            if let Some(key) = pack_kmer(&seq[offset..offset + self.k]) {
                for &(chrom, hit) in self.lookup(key) {
                    if hit as usize >= offset {
                        let start = hit - offset as u32;
                        *tally.entry((chrom, start)).or_insert(0) += 1;
                    }
                }
            }
            offset += stride;
        }
        tally
            .into_iter()
            // Deterministic tie-break: highest votes, then lowest (chrom, pos).
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|((chrom, pos), votes)| (chrom, pos, votes))
    }

    /// Aligns a batch of reads in parallel.
    pub fn align_batch(&self, genome: &ReferenceGenome, reads: &[FastqRecord]) -> Vec<SamRecord> {
        reads.par_iter().map(|r| self.align_read(genome, r)).collect()
    }
}

/// Accuracy summary for a batch of alignments against simulator truth.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AlignStats {
    /// Total reads.
    pub total: usize,
    /// Reads placed at exactly the simulated origin.
    pub correct: usize,
    /// Reads placed elsewhere.
    pub wrong: usize,
    /// Reads left unmapped.
    pub unmapped: usize,
}

impl AlignStats {
    /// Fraction of reads placed correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Scores alignments whose qnames carry simulator origins.
    pub fn score(records: &[SamRecord]) -> AlignStats {
        let mut st = AlignStats::default();
        for r in records {
            st.total += 1;
            if r.is_unmapped() {
                st.unmapped += 1;
                continue;
            }
            match crate::synth::parse_read_origin(&r.qname) {
                Some((chrom, pos, _)) if r.ref_id == chrom as i32 && r.pos == pos as i32 => {
                    st.correct += 1
                }
                _ => st.wrong += 1,
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::ReadSimulator;
    use scan_sim::SimRng;

    fn setup(chrom_len: usize) -> (ReferenceGenome, KmerIndex) {
        let mut rng = SimRng::from_seed_u64(1);
        let genome = ReferenceGenome::generate(&mut rng, 2, chrom_len);
        let index = KmerIndex::build(&genome, 15);
        (genome, index)
    }

    #[test]
    fn pack_kmer_basics() {
        assert_eq!(pack_kmer(b"A"), Some(0));
        assert_eq!(pack_kmer(b"C"), Some(1));
        assert_eq!(pack_kmer(b"AC"), Some(1));
        assert_eq!(pack_kmer(b"CA"), Some(4));
        assert_eq!(pack_kmer(b"AN"), None);
        assert_eq!(pack_kmer(&[b'A'; 32]), None);
    }

    #[test]
    fn perfect_reads_align_perfectly() {
        let (genome, index) = setup(3000);
        let sim = ReadSimulator { read_len: 80, error_rate: 0.0, reverse_prob: 0.0 };
        let mut rng = SimRng::from_seed_u64(2);
        let reads = sim.simulate(&mut rng, &genome, 50);
        let alns = index.align_batch(&genome, &reads);
        let stats = AlignStats::score(&alns);
        assert_eq!(stats.correct, 50, "{stats:?}");
    }

    #[test]
    fn reverse_strand_reads_align() {
        let (genome, index) = setup(3000);
        let sim = ReadSimulator { read_len: 80, error_rate: 0.0, reverse_prob: 1.0 };
        let mut rng = SimRng::from_seed_u64(3);
        let reads = sim.simulate(&mut rng, &genome, 30);
        let alns = index.align_batch(&genome, &reads);
        let stats = AlignStats::score(&alns);
        assert_eq!(stats.correct, 30, "{stats:?}");
        assert!(alns.iter().all(|a| a.flag & FLAG_REVERSE != 0));
    }

    #[test]
    fn noisy_reads_mostly_align() {
        let (genome, index) = setup(5000);
        let sim = ReadSimulator { read_len: 100, error_rate: 0.01, reverse_prob: 0.5 };
        let mut rng = SimRng::from_seed_u64(4);
        let reads = sim.simulate(&mut rng, &genome, 100);
        let stats = AlignStats::score(&index.align_batch(&genome, &reads));
        assert!(stats.accuracy() > 0.95, "{stats:?}");
    }

    #[test]
    fn garbage_reads_unmapped() {
        let (genome, index) = setup(2000);
        // A read that exists nowhere: all-N has no valid k-mers.
        let read = FastqRecord::new("junk", vec![b'N'; 60], vec![b'!'; 60]);
        let aln = index.align_read(&genome, &read);
        assert!(aln.is_unmapped());
        // Too short for any seed.
        let short = FastqRecord::new("short", b"ACGT".to_vec(), b"IIII".to_vec());
        assert!(index.align_read(&genome, &short).is_unmapped());
    }

    #[test]
    fn mapq_zero_when_ambiguous() {
        // A genome that is one repeated block → every placement ties.
        let block: Vec<u8> = b"ACGTACGTACGTACGTACGTACGTACGTACGT".to_vec();
        let mut chrom = Vec::new();
        for _ in 0..8 {
            chrom.extend_from_slice(&block);
        }
        let genome = ReferenceGenome::from_sequences(vec![chrom]);
        let index = KmerIndex::build(&genome, 8);
        let read = FastqRecord::new("rep", block[..16].to_vec(), vec![b'I'; 16]);
        let aln = index.align_read(&genome, &read);
        assert!(!aln.is_unmapped());
        // With dozens of equally-good placements the vote is split and the
        // margin (hence MAPQ) collapses.
        assert!(aln.mapq < 20, "mapq {}", aln.mapq);
    }

    #[test]
    fn batch_matches_sequential() {
        let (genome, index) = setup(2000);
        let sim = ReadSimulator::default();
        let mut rng = SimRng::from_seed_u64(5);
        let reads = sim.simulate(&mut rng, &genome, 40);
        let batch = index.align_batch(&genome, &reads);
        let seq: Vec<SamRecord> = reads.iter().map(|r| index.align_read(&genome, r)).collect();
        assert_eq!(batch, seq, "rayon batch must equal sequential result");
    }

    #[test]
    fn index_statistics() {
        let (_, index) = setup(1000);
        assert_eq!(index.k(), 15);
        assert!(index.n_kmers() > 900, "near-unique 15-mers expected");
    }
}
