//! One seeded session run, with optional trace observers.

use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use crate::platform::Platform;
use scan_sim::{JsonlWriter, Observer, ObserverHandle};
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::rc::Rc;

/// Runs one repetition of one configuration to completion.
pub fn run_session(cfg: &ScanConfig, repetition: u64) -> SessionMetrics {
    Platform::new(cfg.clone(), repetition).run()
}

/// Runs one repetition with extra trace observers attached (beyond the
/// session's own metrics aggregator).
pub fn run_session_observed(
    cfg: &ScanConfig,
    repetition: u64,
    observers: Vec<ObserverHandle>,
) -> SessionMetrics {
    let mut platform = Platform::new(cfg.clone(), repetition);
    for sink in observers {
        platform.add_observer(sink);
    }
    platform.run()
}

/// Runs one repetition with a caller-built observer attached, returning
/// the observer alongside the metrics once the run is over.
///
/// This is the single-session half of the parallel-sweep observer story:
/// the caller (e.g. `sweep::run_replicated_with`) builds the observer
/// *inside* the worker task, this function threads it through the
/// session's `Rc<RefCell<_>>` sink plumbing, and hands back sole
/// ownership afterwards so a `Send` summary can cross back to the
/// coordinating thread.
pub fn run_session_with<O: Observer + 'static>(
    cfg: &ScanConfig,
    repetition: u64,
    observer: O,
) -> (SessionMetrics, O) {
    let sink = Rc::new(RefCell::new(observer));
    let metrics = run_session_observed(cfg, repetition, vec![sink.clone()]);
    // The platform (and every tracer clone) is dropped once the run
    // returns, so the handle is unique again.
    let observer =
        Rc::try_unwrap(sink).ok().expect("observer uniquely owned after the run").into_inner();
    (metrics, observer)
}

/// Runs one repetition streaming its full typed trace to `path` as JSON
/// lines. Returns the session metrics, or the I/O error that truncated
/// the trace.
pub fn run_session_traced(
    cfg: &ScanConfig,
    repetition: u64,
    path: &Path,
) -> io::Result<SessionMetrics> {
    let writer = JsonlWriter::new(BufWriter::new(File::create(path)?));
    let sink = Rc::new(RefCell::new(writer));
    let metrics = run_session_observed(cfg, repetition, vec![sink.clone()]);
    // The platform (and every tracer clone) is gone; reclaim the writer
    // to flush it and surface any latched write error.
    let writer =
        Rc::try_unwrap(sink).ok().expect("trace sink uniquely owned after the run").into_inner();
    if writer.errored() {
        return Err(io::Error::other("trace write failed; output truncated"));
    }
    writer.into_inner().flush()?;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariableParams;
    use scan_sched::scaling::ScalingPolicy;

    fn cfg() -> ScanConfig {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.8), 5);
        cfg.fixed.sim_time_tu = 150.0;
        cfg
    }

    #[test]
    fn run_session_smoke() {
        let m = run_session(&cfg(), 3);
        assert!(m.jobs_submitted > 0);
    }

    #[test]
    fn traced_session_writes_jsonl_and_matches_untraced() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("scan-trace-test-{}.jsonl", std::process::id()));
        let traced = run_session_traced(&cfg(), 3, &path).expect("trace written");
        let plain = run_session(&cfg(), 3);
        assert_eq!(traced, plain, "tracing must not perturb the session");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 100, "trace has {} lines", lines.len());
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines.last().unwrap().contains("\"kind\":\"run_ended\""));
    }
}
