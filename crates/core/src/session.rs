//! One seeded session run.

use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use crate::platform::Platform;

/// Runs one repetition of one configuration to completion.
pub fn run_session(cfg: &ScanConfig, repetition: u64) -> SessionMetrics {
    Platform::new(cfg.clone(), repetition).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariableParams;
    use scan_sched::scaling::ScalingPolicy;

    #[test]
    fn run_session_smoke() {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.8), 5);
        cfg.fixed.sim_time_tu = 150.0;
        let m = run_session(&cfg, 3);
        assert!(m.jobs_submitted > 0);
    }
}
