//! The Data Broker (Fig. 2): knowledge base + data sharders + shared
//! store.
//!
//! At platform start the broker is bootstrapped with an offline profiling
//! trace (the §III-A.1 GATK study). It learns per-stage `(a, b, c)` models
//! by regression over the knowledge base and hands the *learned* pipeline
//! model to the scheduler — so scheduling genuinely runs on knowledge-base
//! output, not the ground-truth table. At admission time it registers each
//! job's dataset and its shards with the shared store and prices the
//! staging delay each subtask pays.

use scan_cloud::storage::{Dataset, SharedStore};
use scan_kb::{KnowledgeBase, ProfileRecord};
use scan_sim::{SimDuration, SimRng};
use scan_workload::gatk::{PipelineModel, StageFactors};
use scan_workload::job::Job;
use scan_workload::profiletrace::generate_profile_trace;

/// The Data Broker.
#[derive(Debug, Clone)]
pub struct DataBroker {
    kb: KnowledgeBase,
    store: SharedStore,
    learned: PipelineModel,
    truth: PipelineModel,
}

impl DataBroker {
    /// Bootstraps the broker: generates the offline profiling trace from
    /// the ground-truth `model` (with `noise` relative measurement error),
    /// ingests it into the knowledge base, and learns the stage models the
    /// scheduler will use.
    pub fn bootstrap(model: &PipelineModel, noise: f64, rng: &mut SimRng) -> Self {
        let mut kb = KnowledgeBase::new();
        let trace = generate_profile_trace(model, "GATK", 3, noise, rng);
        for rec in &trace {
            kb.ingest(rec);
        }
        let learned = Self::learn_model(&kb, model);
        DataBroker { kb, store: SharedStore::new(), learned, truth: model.clone() }
    }

    /// Learns a full pipeline model from the knowledge base, falling back
    /// to the ground-truth factors for any stage without enough data.
    fn learn_model(kb: &KnowledgeBase, truth: &PipelineModel) -> PipelineModel {
        let stages = (0..truth.n_stages())
            .map(|i| match kb.stage_model("GATK", (i + 1) as u32) {
                Some(m) => StageFactors { a: m.a, b: m.b, c: m.c },
                None => truth.stages[i],
            })
            .collect();
        PipelineModel::new(stages, truth.gb_per_unit)
    }

    /// The knowledge-base-learned pipeline model.
    pub fn learned_model(&self) -> &PipelineModel {
        &self.learned
    }

    /// The ground-truth model (what the simulated world actually runs).
    pub fn true_model(&self) -> &PipelineModel {
        &self.truth
    }

    /// Read access to the knowledge base.
    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Ingests a live task log ("the SCAN keeps the log information of
    /// each task scheduled to run in a cloud").
    pub fn ingest_log(&mut self, record: &ProfileRecord) {
        self.kb.ingest(record);
    }

    /// Re-learns the pipeline model from everything ingested so far
    /// (long-term-adaptive refresh).
    pub fn refresh_model(&mut self) {
        self.learned = Self::learn_model(&self.kb, &self.truth);
    }

    /// Registers a job's input dataset and its stage-1 shards, returning
    /// the shard paths.
    pub fn register_job(&mut self, job: &Job, shards: u32) -> Vec<String> {
        let size_gb = self.truth.units_to_gb(job.size_units);
        let base = Dataset {
            path: format!("/input/bam/job{}.bam", job.id.0),
            size_gb,
            format: "BAM".into(),
        };
        self.store.put(base.clone());
        let plan = scan_genomics::shard::plan_shards(size_gb, size_gb / shards as f64);
        self.store.put_shards(&base, &plan.shard_sizes)
    }

    /// Staging delay one subtask pays to pull `d_gb` from the shared
    /// store before computing.
    pub fn staging_time(&self, d_gb: f64) -> SimDuration {
        self.store.model().transfer_time(d_gb)
    }

    /// The shared store (metrics, tests).
    pub fn store(&self) -> &SharedStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_sim::SimTime;
    use scan_workload::gatk::PAPER_STAGE_FACTORS;
    use scan_workload::job::JobId;

    fn broker(noise: f64) -> DataBroker {
        let model = PipelineModel::paper();
        let mut rng = SimRng::from_seed_u64(42);
        DataBroker::bootstrap(&model, noise, &mut rng)
    }

    #[test]
    fn bootstrap_learns_close_to_truth() {
        let b = broker(0.02);
        for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
            let learned = b.learned_model().stages[i];
            assert!(
                (learned.a - truth.a).abs() < 0.1 * truth.a.abs().max(0.3),
                "stage {} a: {} vs {}",
                i + 1,
                learned.a,
                truth.a
            );
            assert!((learned.c - truth.c).abs() < 0.08, "stage {} c", i + 1);
        }
    }

    #[test]
    fn noiseless_bootstrap_is_exact() {
        let b = broker(0.0);
        for (i, truth) in PAPER_STAGE_FACTORS.iter().enumerate() {
            let learned = b.learned_model().stages[i];
            assert!((learned.a - truth.a).abs() < 1e-6);
            assert!((learned.b - truth.b).abs() < 1e-6);
            assert!((learned.c - truth.c).abs() < 1e-4);
        }
    }

    #[test]
    fn register_job_creates_shards() {
        let mut b = broker(0.0);
        let job = Job::new(JobId(7), 5.0, SimTime::ZERO);
        let paths = b.register_job(&job, 4);
        assert_eq!(paths.len(), 4);
        assert!(b.store().get("/input/bam/job7.bam").is_some());
        assert!(b.store().get(&paths[0]).is_some());
        // Shards cover the 2 GB input.
        let total: f64 = paths.iter().map(|p| b.store().get(p).unwrap().size_gb).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn live_logs_refresh_the_model() {
        let mut b = broker(0.0);
        // Fabricate a world where stage 1 suddenly runs 2× slower and logs
        // say so; after refresh the learned model must track it.
        for d in [1.0, 3.0, 5.0, 7.0, 9.0] {
            for t in [1u32, 2, 4] {
                let f = StageFactors { a: 0.70, b: 10.76, c: 0.89 };
                for _ in 0..8 {
                    b.ingest_log(&ProfileRecord {
                        application: "GATK".into(),
                        stage: 1,
                        input_gb: d,
                        threads: t,
                        ram_gb: 4.0,
                        e_time: f.threaded_time(t, d),
                    });
                }
            }
        }
        b.refresh_model();
        let a = b.learned_model().stages[0].a;
        assert!(a > 0.45, "refreshed a should move toward 0.70, got {a}");
    }

    #[test]
    fn staging_time_scales_with_size() {
        let b = broker(0.0);
        assert!(b.staging_time(4.0) > b.staging_time(1.0));
        assert!(b.staging_time(0.0).as_tu() > 0.0, "latency floor");
    }
}
