//! Session metrics and replicated aggregates.

use scan_sim::stats::OnlineStats;
use serde::{Deserialize, Serialize};

/// What one simulation session reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Jobs submitted during the run.
    pub jobs_submitted: u64,
    /// Jobs the fair-share admission gate deferred at least once (fleet
    /// tenants under contention; always zero for solo sessions).
    #[serde(default)]
    pub jobs_deferred: u64,
    /// Pipeline runs completed before the horizon.
    pub jobs_completed: u64,
    /// Completed jobs whose latency missed the configured SLO target
    /// (always zero unless `ScanConfig::slo_target_tu` is set).
    #[serde(default)]
    pub jobs_slo_violated: u64,
    /// Total reward earned, CU.
    pub total_reward: f64,
    /// Total infrastructure cost, CU.
    pub total_cost: f64,
    /// Mean profit per completed pipeline run, CU (Fig. 4's y-axis).
    pub profit_per_run: f64,
    /// Reward-to-cost ratio (Fig. 5's y-axis).
    pub reward_to_cost: f64,
    /// Mean completed-job latency, TU.
    pub mean_latency: f64,
    /// 95th-percentile completed-job latency, TU.
    pub p95_latency: f64,
    /// Share of core·TU bought from the public tier.
    pub public_core_tu_share: f64,
    /// Mean busy-core utilisation of hired cores.
    pub worker_utilisation: f64,
    /// Time-averaged total queue length.
    pub mean_queue_len: f64,
    /// Peak total queue length.
    pub peak_queue_len: usize,
    /// Mean core-stages (Σ shards·threads) of completed jobs' plans.
    pub mean_core_stages: f64,
    /// VMs hired over the run.
    pub vms_hired: u64,
    /// Reshape operations performed.
    pub reshapes: u64,
    /// Events dispatched (simulator diagnostic).
    pub events: u64,
}

impl SessionMetrics {
    /// Profit (reward − cost) for the whole run.
    pub fn profit(&self) -> f64 {
        self.total_reward - self.total_cost
    }

    /// Fraction of submitted jobs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.jobs_submitted == 0 {
            0.0
        } else {
            self.jobs_completed as f64 / self.jobs_submitted as f64
        }
    }
}

/// Mean ± σ over repetitions, per metric — the paper's error bars
/// ("All measurements were repeated 10 times, and all error bars represent
/// a single standard deviation either side of the mean").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicatedMetrics {
    /// Profit per run.
    pub profit_per_run: OnlineStats,
    /// Reward-to-cost ratio.
    pub reward_to_cost: OnlineStats,
    /// Mean latency.
    pub mean_latency: OnlineStats,
    /// Completion rate.
    pub completion_rate: OnlineStats,
    /// Public core·TU share.
    pub public_share: OnlineStats,
    /// Worker utilisation.
    pub utilisation: OnlineStats,
    /// Mean core-stages per run.
    pub core_stages: OnlineStats,
    /// Raw per-repetition session metrics.
    pub sessions: Vec<SessionMetrics>,
}

impl ReplicatedMetrics {
    /// Folds one repetition in.
    pub fn push(&mut self, m: SessionMetrics) {
        self.profit_per_run.push(m.profit_per_run);
        self.reward_to_cost.push(m.reward_to_cost);
        self.mean_latency.push(m.mean_latency);
        self.completion_rate.push(m.completion_rate());
        self.public_share.push(m.public_core_tu_share);
        self.utilisation.push(m.worker_utilisation);
        self.core_stages.push(m.mean_core_stages);
        self.sessions.push(m);
    }

    /// Number of repetitions folded in.
    pub fn n(&self) -> usize {
        self.sessions.len()
    }

    /// Builds from a vector of sessions.
    pub fn from_sessions(sessions: Vec<SessionMetrics>) -> Self {
        let mut r = ReplicatedMetrics::default();
        for s in sessions {
            r.push(s);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(profit_per_run: f64) -> SessionMetrics {
        SessionMetrics {
            jobs_submitted: 100,
            jobs_deferred: 0,
            jobs_completed: 90,
            jobs_slo_violated: 0,
            total_reward: 10_000.0,
            total_cost: 4_000.0,
            profit_per_run,
            reward_to_cost: 2.5,
            mean_latency: 15.0,
            p95_latency: 25.0,
            public_core_tu_share: 0.1,
            worker_utilisation: 0.7,
            mean_queue_len: 3.0,
            peak_queue_len: 20,
            mean_core_stages: 14.0,
            vms_hired: 50,
            reshapes: 0,
            events: 12345,
        }
    }

    #[test]
    fn derived_quantities() {
        let m = metrics(66.0);
        assert!((m.profit() - 6000.0).abs() < 1e-12);
        assert!((m.completion_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn replication_aggregates() {
        let mut r = ReplicatedMetrics::default();
        r.push(metrics(10.0));
        r.push(metrics(20.0));
        r.push(metrics(30.0));
        assert_eq!(r.n(), 3);
        assert!((r.profit_per_run.mean() - 20.0).abs() < 1e-12);
        assert!((r.profit_per_run.stddev() - 10.0).abs() < 1e-12);
        assert_eq!(r.sessions.len(), 3);
    }

    #[test]
    fn zero_submitted_is_safe() {
        let mut m = metrics(0.0);
        m.jobs_submitted = 0;
        assert_eq!(m.completion_rate(), 0.0);
    }
}
