//! # scan-platform — the SCAN platform
//!
//! The integration crate: Data Broker + Scheduler + Workers (Fig. 2/3)
//! wired onto the discrete-event kernel, driving the simulated hybrid
//! cloud through full evaluation sessions.
//!
//! * [`config`] — Table III's fixed parameters, Table I's variable
//!   parameters, and the full parameter grid.
//! * [`broker`] — the Data Broker: knowledge-base bootstrap from profiling
//!   traces, learned pipeline models, chunk advice and dataset/shard
//!   registration against the shared store.
//! * [`platform`] — the event-driven world: arrivals → admission →
//!   per-class queues → scaling decisions → worker execution → stage
//!   advancement → reward, exactly the loop of §III-A.2.
//! * [`metrics`] — per-session metrics (profit per run, reward-to-cost,
//!   latency, utilisation) and replicated mean ± σ aggregates.
//! * [`observers`] — domain-level trace observers: the [`DecisionStats`]
//!   counting observer folding scaling decisions, queue depths and tier
//!   settlements into per-cell statistics.
//! * [`session`] — one seeded simulation run; [`sweep`] — rayon-parallel
//!   replication and parameter grids, with per-session observers built
//!   through the `Send`-capable factory bridge.
//! * [`fleet`] — multi-tenant fleets: M platforms on one shared provider
//!   pool (finite private capacity, contention-surged public pricing,
//!   fair-share admission), multiplexed deterministically over a single
//!   tenant-tagged calendar, with whole-fleet replications sharded
//!   across cores.
//! * [`instrument`] — sessions with a [`scan_metrics`] registry attached
//!   (histograms, counters, windowed series across every subsystem) and
//!   an optional wall-clock self-profile, merged deterministically across
//!   parallel repetitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod config;
pub mod fleet;
pub mod instrument;
pub mod metrics;
pub mod observers;
pub mod platform;
pub mod session;
pub mod sweep;

pub use broker::DataBroker;
pub use config::{FixedParams, ParameterGrid, ScanConfig, VariableParams};
pub use fleet::{
    run_fleet, run_fleet_replicated, run_fleet_replicated_with, run_fleet_with, FleetConfig,
    FleetMetrics,
};
pub use metrics::{ReplicatedMetrics, SessionMetrics};
pub use observers::{DecisionStats, DecisionStatsFactory};
pub use platform::Platform;
pub use session::run_session;
pub use sweep::{
    run_replicated, run_replicated_with, sweep_grid, sweep_grid_with, CellResult, ObservedCell,
};
