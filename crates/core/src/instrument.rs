//! Instrumented sessions: quantitative metrics and wall-clock profiling.
//!
//! [`run_session_instrumented`] is [`run_session`](crate::run_session)
//! plus a [`scan_metrics`] registry wired through every subsystem
//! (dispatch histograms, scaling counters and margins, provider lifecycle
//! counters, windowed utilisation/spend series, the engine's batch-size
//! histogram) and an optional [`prof`] self-profile of
//! the run's wall-clock time.
//!
//! The replicated variant fans repetitions across rayon and folds the
//! per-session registries in repetition order, the same deterministic
//! bridge the trace observers use ([`sweep`](crate::sweep)): every
//! session registers the identical metric set in the identical order, so
//! the merged registry — and its exported bytes — are independent of the
//! thread count.

use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use crate::platform::Platform;
use rayon::prelude::*;
use scan_metrics::{Metrics, Registry};
use scan_sim::prof::{self, ProfSummary};
use scan_sim::Merge;

/// Default sim-time window for the time series (TU). Sessions run for
/// hundreds of TU, so 5 TU gives a readable number of points per series.
pub const DEFAULT_WINDOW_TU: f64 = 5.0;

/// Runs one repetition with a metrics registry attached, returning the
/// session metrics, the filled registry, and — when `profile` is true —
/// the thread's wall-clock self-profile (empty unless
/// [`prof::enable`] was called first; the flag is process-wide).
pub fn run_session_instrumented(
    cfg: &ScanConfig,
    repetition: u64,
    window_tu: f64,
    profile: bool,
) -> (SessionMetrics, Registry, Option<ProfSummary>) {
    let metrics = Metrics::enabled(window_tu);
    let mut platform = Platform::new(cfg.clone(), repetition);
    platform.set_metrics(&metrics);
    if profile {
        prof::reset_thread();
    }
    let session = platform.run();
    let summary = profile.then(|| {
        prof::mark_session();
        prof::take_summary()
    });
    // The platform (and with it every registry handle clone) is consumed
    // by `run`, so the registry is uniquely ours again.
    let registry = metrics.into_registry().expect("registry uniquely owned after the run");
    (session, registry, summary)
}

/// Runs `repetitions` instrumented repetitions in parallel and merges
/// the registries (and profiles, when enabled) in repetition order.
///
/// The merged registry is bit-identical for any `RAYON_NUM_THREADS`:
/// sessions are seeded per repetition, registries share one shape, and
/// the fold order is the repetition order regardless of which thread ran
/// what.
pub fn run_replicated_instrumented(
    cfg: &ScanConfig,
    repetitions: u64,
    window_tu: f64,
    profile: bool,
) -> (Vec<SessionMetrics>, Registry, Option<ProfSummary>) {
    assert!(repetitions >= 1);
    let runs: Vec<(SessionMetrics, Registry, Option<ProfSummary>)> = (0..repetitions)
        .into_par_iter()
        .map(|rep| run_session_instrumented(cfg, rep, window_tu, profile))
        .collect();
    let mut sessions = Vec::with_capacity(runs.len());
    let mut registry: Option<Registry> = None;
    let mut summary: Option<ProfSummary> = None;
    for (m, reg, prof_summary) in runs {
        sessions.push(m);
        match registry.as_mut() {
            None => registry = Some(reg),
            Some(acc) => acc.merge(&reg),
        }
        if let Some(p) = prof_summary {
            match summary.as_mut() {
                None => summary = Some(p),
                Some(acc) => acc.merge(p),
            }
        }
    }
    (sessions, registry.expect("repetitions >= 1"), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariableParams;
    use crate::session::run_session;
    use scan_metrics::write_jsonl;
    use scan_sched::scaling::ScalingPolicy;

    fn cfg() -> ScanConfig {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.8), 5);
        cfg.fixed.sim_time_tu = 150.0;
        cfg
    }

    #[test]
    fn metrics_do_not_perturb_the_session() {
        let plain = run_session(&cfg(), 3);
        let (m, reg, summary) = run_session_instrumented(&cfg(), 3, DEFAULT_WINDOW_TU, false);
        assert_eq!(m, plain, "metrics must not perturb the session");
        assert!(summary.is_none());
        // The run actually landed in the registry.
        let dispatched: u64 = reg
            .counters()
            .iter()
            .map(|(meta, v)| u64::from(meta.family == "vm_hired_total") * v)
            .sum();
        assert!(dispatched > 0, "no VM hires counted");
        assert!(reg.histograms().iter().any(|(_, h)| h.count() > 0));
        assert!(reg.series_entries().iter().all(|(_, s)| !s.values().is_empty()));
    }

    /// The parallel fan-out must not change the merged registry: the
    /// sequential reference below is exactly what `RAYON_NUM_THREADS=1`
    /// executes (the compat pool degenerates to an in-order loop), so
    /// equal exported bytes here pin thread-count invariance.
    #[test]
    fn merged_export_is_identical_to_sequential_fold() {
        let cfg = cfg();
        let (par_sessions, par_reg, _) =
            run_replicated_instrumented(&cfg, 4, DEFAULT_WINDOW_TU, false);
        let mut seq_sessions = Vec::new();
        let mut seq_reg: Option<Registry> = None;
        for rep in 0..4 {
            let (m, reg, _) = run_session_instrumented(&cfg, rep, DEFAULT_WINDOW_TU, false);
            seq_sessions.push(m);
            match seq_reg.as_mut() {
                None => seq_reg = Some(reg),
                Some(acc) => acc.merge(&reg),
            }
        }
        assert_eq!(par_sessions, seq_sessions);
        let mut a = Vec::new();
        write_jsonl(&par_reg, &mut a).unwrap();
        let mut b = Vec::new();
        write_jsonl(&seq_reg.unwrap(), &mut b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "merged registry export must not depend on thread count");
    }
}
