//! Multi-tenant fleets: M SCAN platforms on one shared provider pool,
//! multiplexed over a single deterministic calendar.
//!
//! A fleet run builds `tenants` platforms from one shared
//! [`Arc<ScanConfig>`] (no per-tenant deep clone), leases each a handle
//! on the fleet-wide [`SharedCapacity`] ledger, and drives them all
//! through **one** engine: every scheduled event is tagged with its
//! tenant id ([`Calendar::schedule_for`]), so simultaneous events
//! interleave tenant-major — a fixed, thread-free total order. Tenants
//! run to completion (`jobs_per_tenant` arrivals each, then teardown),
//! contending for shared private cores under the fair-share admission
//! gate and surging the public on-demand price as fleet-wide hire grows.
//!
//! Whole-fleet replications shard across cores exactly like
//! [`sweep`](crate::sweep) repetitions: each repetition is a pure
//! function of `(seed, repetition)`, observers ride the
//! [`ObserverFactory`] bridge, and summaries merge in `(repetition,
//! tenant)` order — so fleet results are bit-identical at any
//! `RAYON_NUM_THREADS`.

use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use crate::platform::{Event, EventSink, Platform, TenantSetup};
use rayon::prelude::*;
use scan_cloud::shared::{SharedCapacity, SurgePricing};
use scan_metrics::Registry;
use scan_sim::{
    Calendar, Engine, EventHandler, Merge, NullObserverFactory, ObserverFactory, SimTime,
    StepOutcome, TenantId,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// One fleet event: a platform event stamped with the tenant it belongs
/// to, so the multiplexer can route it back to its platform.
#[derive(Debug, Clone, Copy)]
struct FleetEvent {
    tenant: u16,
    event: Event,
}

/// [`EventSink`] adapter binding one tenant to the shared calendar:
/// everything a tenant schedules is tagged with its id, both in the
/// ordering key (tenant-major tie-break) and in the payload (routing).
struct TenantCal<'a> {
    cal: &'a mut Calendar<FleetEvent>,
    tenant: TenantId,
}

impl EventSink for TenantCal<'_> {
    fn schedule(&mut self, at: SimTime, event: Event) {
        self.cal.schedule_for(at, self.tenant, FleetEvent { tenant: self.tenant.0, event });
    }
}

/// The fleet multiplexer: routes each popped event to its tenant's
/// platform, handing it a sink that keeps tagging follow-up events.
struct Fleet {
    tenants: Vec<Platform>,
    /// Events dispatched per tenant (each tenant's session diagnostic).
    handled: Vec<u64>,
}

impl EventHandler for Fleet {
    type Event = FleetEvent;

    fn handle(
        &mut self,
        now: SimTime,
        event: FleetEvent,
        cal: &mut Calendar<FleetEvent>,
    ) -> StepOutcome {
        let idx = event.tenant as usize;
        self.handled[idx] += 1;
        let mut sink = TenantCal { cal, tenant: TenantId(event.tenant) };
        self.tenants[idx].handle_event(now, event.event, &mut sink);
        StepOutcome::Continue
    }
}

/// One multi-tenant fleet run's shape: who shares how much, under which
/// contention rules.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The per-tenant platform configuration, shared (not cloned) across
    /// all tenants.
    pub base: Arc<ScanConfig>,
    /// Number of tenant platforms in the fleet.
    pub tenants: u16,
    /// Size of the shared private-tier core pool arbitrated across
    /// tenants (each tenant's own `private_capacity_cores` still caps its
    /// local view; the effective limit is the tighter of the two).
    pub shared_private_cores: u32,
    /// Contention-sensitive pricing of the shared public tier.
    pub surge: SurgePricing,
    /// Arm the fair-share admission gate: defer a tenant's new arrivals
    /// while the shared pool is exhausted and it sits at or above its
    /// fair share.
    pub fair_share_admission: bool,
    /// Arrival-stream cap per tenant; each tenant tears down once its
    /// jobs all complete, and the fleet ends when every tenant has.
    pub jobs_per_tenant: u64,
    /// Hard stop for the whole fleet, TU (a backstop — run-to-completion
    /// fleets normally drain first).
    pub horizon_tu: f64,
}

impl FleetConfig {
    /// A fleet of `tenants` platforms over `base`, with the shared pool
    /// sized like one solo session's private tier, a mild surge, the
    /// fair-share gate armed, and a modest per-tenant workload.
    pub fn new(base: ScanConfig, tenants: u16) -> Self {
        let horizon_tu = base.fixed.sim_time_tu;
        let shared_private_cores = base.fixed.private_capacity_cores;
        FleetConfig {
            base: Arc::new(base),
            tenants,
            shared_private_cores,
            surge: SurgePricing { factor: 0.25, per_cores: 256.0 },
            fair_share_admission: true,
            jobs_per_tenant: 25,
            horizon_tu,
        }
    }
}

/// What one fleet run reports: per-tenant session metrics plus the
/// fleet-wide aggregates only the shared ledger can see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Per-tenant session metrics, in tenant order.
    pub tenants: Vec<SessionMetrics>,
    /// Jobs admitted fleet-wide.
    pub jobs_submitted: u64,
    /// Jobs completed fleet-wide.
    pub jobs_completed: u64,
    /// Fair-share admission deferrals fleet-wide.
    pub jobs_deferred: u64,
    /// Reward earned fleet-wide, CU.
    pub total_reward: f64,
    /// Infrastructure spend fleet-wide, CU.
    pub total_cost: f64,
    /// High-water mark of shared private cores reserved at once.
    pub peak_shared_cores: u32,
    /// Events dispatched by the fleet engine.
    pub events: u64,
    /// Clock value when the fleet drained (or hit the horizon), TU.
    pub ended_at_tu: f64,
}

impl FleetMetrics {
    fn from_sessions(tenants: Vec<SessionMetrics>, peak: u32, events: u64, ended_at: f64) -> Self {
        let mut m = FleetMetrics {
            tenants: Vec::new(),
            jobs_submitted: 0,
            jobs_completed: 0,
            jobs_deferred: 0,
            total_reward: 0.0,
            total_cost: 0.0,
            peak_shared_cores: peak,
            events,
            ended_at_tu: ended_at,
        };
        for s in &tenants {
            m.jobs_submitted += s.jobs_submitted;
            m.jobs_completed += s.jobs_completed;
            m.jobs_deferred += s.jobs_deferred;
            m.total_reward += s.total_reward;
            m.total_cost += s.total_cost;
        }
        m.tenants = tenants;
        m
    }

    /// Projects the per-tenant outcomes into a [`Registry`] with a
    /// `tenant` label dimension, so fleet spend and throughput stay
    /// observable through the same exposition path as every other metric.
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new(1.0);
        for (t, m) in self.tenants.iter().enumerate() {
            let tenant = t.to_string();
            let completed = r.counter(
                "fleet_jobs_completed_total",
                "tenant",
                &tenant,
                "jobs",
                "Jobs completed by one fleet tenant",
            );
            r.counter_add(completed, m.jobs_completed);
            let deferred = r.counter(
                "fleet_jobs_deferred_total",
                "tenant",
                &tenant,
                "jobs",
                "Jobs the fair-share admission gate deferred for one fleet tenant",
            );
            r.counter_add(deferred, m.jobs_deferred);
            let slo = r.counter(
                "fleet_slo_violations_total",
                "tenant",
                &tenant,
                "jobs",
                "Completed jobs that missed the SLO target, per fleet tenant",
            );
            r.counter_add(slo, m.jobs_slo_violated);
            let spend = r.gauge(
                "fleet_spend_cu",
                "tenant",
                &tenant,
                "CU",
                "Total infrastructure spend of one fleet tenant",
            );
            r.gauge_set(spend, m.total_cost);
        }
        r
    }
}

/// Runs one fleet repetition to completion.
pub fn run_fleet(cfg: &FleetConfig, repetition: u64) -> FleetMetrics {
    run_fleet_with(cfg, repetition, &NullObserverFactory).0
}

/// [`run_fleet`], with one factory-built observer per tenant.
///
/// The factory's session ordinal is `repetition × tenants + tenant`, the
/// same flat (run-major, tenant-minor) numbering the replicated driver
/// merges in; summaries return in tenant order.
pub fn run_fleet_with<F: ObserverFactory>(
    cfg: &FleetConfig,
    repetition: u64,
    factory: &F,
) -> (FleetMetrics, Vec<F::Summary>) {
    assert!(cfg.tenants > 0, "a fleet needs at least one tenant");
    let n = cfg.tenants as usize;
    let lease = SharedCapacity::new(cfg.shared_private_cores, n, cfg.surge).into_lease();
    let horizon = SimTime::new(cfg.horizon_tu);
    let mut engine: Engine<FleetEvent> = Engine::with_horizon(horizon);

    let mut tenants: Vec<Platform> = Vec::with_capacity(n);
    let mut sinks = Vec::with_capacity(n);
    for t in 0..n {
        let ordinal = repetition * n as u64 + t as u64;
        let mut p = Platform::new_tenant(
            Arc::clone(&cfg.base),
            ordinal,
            TenantSetup {
                tenant: TenantId(t as u16),
                lease: Rc::clone(&lease),
                max_jobs: Some(cfg.jobs_per_tenant),
                fair_share: cfg.fair_share_admission,
            },
        );
        let sink = Rc::new(RefCell::new(factory.build(ordinal)));
        p.add_observer(sink.clone());
        tenants.push(p);
        sinks.push(sink);
    }

    let cal = engine.calendar_mut();
    // Steady-state heap backlog scales with the fleet, but cap the
    // pre-size: a 10k-tenant fleet must not pre-commit hundreds of MB.
    cal.reserve((64 * n).clamp(1024, 1 << 20));
    for (t, p) in tenants.iter_mut().enumerate() {
        let mut sink = TenantCal { cal: &mut *cal, tenant: TenantId(t as u16) };
        p.start(horizon, &mut sink);
    }

    let mut fleet = Fleet { tenants, handled: vec![0; n] };
    let report = engine.run(&mut fleet);
    let Fleet { tenants, handled } = fleet;
    let peak = lease.borrow().peak_used();

    let mut sessions = Vec::with_capacity(n);
    for (p, events) in tenants.into_iter().zip(&handled) {
        sessions.push(p.finish(report.ended_at, *events));
    }
    // The platforms (and their tracer clones) are gone: each observer
    // handle is unique again and its summary can cross threads.
    let summaries = sinks
        .into_iter()
        .map(|s| {
            let obs =
                Rc::try_unwrap(s).ok().expect("observer uniquely owned after the run").into_inner();
            factory.finish(obs)
        })
        .collect();
    let metrics = FleetMetrics::from_sessions(
        sessions,
        peak,
        report.events_dispatched,
        report.ended_at.as_tu(),
    );
    (metrics, summaries)
}

/// Runs `repetitions` whole-fleet replications in parallel.
pub fn run_fleet_replicated(cfg: &FleetConfig, repetitions: u64) -> Vec<FleetMetrics> {
    run_fleet_replicated_with(cfg, repetitions, &NullObserverFactory).0
}

/// [`run_fleet_replicated`], with one factory-built observer per tenant
/// session across every replication.
///
/// Each repetition is an independent fleet (rayon shards them across
/// cores); summaries merge strictly in `(repetition, tenant)` order, so
/// the result is bit-identical to a sequential loop regardless of
/// `RAYON_NUM_THREADS`.
pub fn run_fleet_replicated_with<F: ObserverFactory>(
    cfg: &FleetConfig,
    repetitions: u64,
    factory: &F,
) -> (Vec<FleetMetrics>, F::Summary)
where
    F::Summary: Merge,
{
    assert!(repetitions >= 1);
    let runs: Vec<(FleetMetrics, Vec<F::Summary>)> =
        (0..repetitions).into_par_iter().map(|rep| run_fleet_with(cfg, rep, factory)).collect();
    let mut metrics = Vec::with_capacity(runs.len());
    let mut merged: Option<F::Summary> = None;
    // Deterministic fold: `collect` returned repetition order; within a
    // repetition, `run_fleet_with` returned tenant order.
    for (m, summaries) in runs {
        metrics.push(m);
        for s in summaries {
            match merged.as_mut() {
                None => merged = Some(s),
                Some(acc) => acc.merge(s),
            }
        }
    }
    (metrics, merged.expect("repetitions and tenants are both nonzero"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariableParams;
    use scan_sched::scaling::ScalingPolicy;
    use scan_sim::JsonlWriter;

    fn fleet(tenants: u16, shared_cores: u32, jobs: u64) -> FleetConfig {
        let mut base = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 23);
        base.fixed.sim_time_tu = 400.0;
        let mut cfg = FleetConfig::new(base, tenants);
        cfg.shared_private_cores = shared_cores;
        cfg.jobs_per_tenant = jobs;
        cfg.surge = SurgePricing { factor: 0.5, per_cores: 64.0 };
        cfg
    }

    #[test]
    fn fleet_runs_every_tenant_to_completion() {
        let cfg = fleet(3, 48, 8);
        let m = run_fleet(&cfg, 0);
        assert_eq!(m.tenants.len(), 3);
        for (t, s) in m.tenants.iter().enumerate() {
            assert_eq!(s.jobs_submitted, 8, "tenant {t} admits its full arrival cap");
            assert_eq!(s.jobs_completed, 8, "tenant {t} drains before the horizon");
        }
        assert_eq!(m.jobs_completed, 24);
        assert!(m.ended_at_tu < cfg.horizon_tu, "run-to-completion ends early");
        assert!(m.peak_shared_cores <= cfg.shared_private_cores);
    }

    #[test]
    fn fleet_is_deterministic() {
        let cfg = fleet(3, 32, 6);
        assert_eq!(run_fleet(&cfg, 1), run_fleet(&cfg, 1));
    }

    #[test]
    fn contended_fleet_defers_and_still_completes() {
        // A pool far below fleet demand under heavy load: the fair-share
        // gate must engage, and every deferred job must still finish.
        let mut base = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 0.9), 23);
        base.fixed.sim_time_tu = 500.0;
        let mut cfg = FleetConfig::new(base, 4);
        cfg.shared_private_cores = 8;
        cfg.jobs_per_tenant = 6;
        let m = run_fleet(&cfg, 0);
        assert!(m.jobs_deferred > 0, "a tight shared pool must trip the gate");
        assert_eq!(m.jobs_submitted, 24, "deferred arrivals are admitted later, not dropped");
        assert_eq!(m.jobs_completed, m.jobs_submitted);
        assert!(m.peak_shared_cores <= 8);
    }

    #[test]
    fn registry_projects_per_tenant_counters() {
        let cfg = fleet(2, 24, 4);
        let m = run_fleet(&cfg, 0);
        let r = m.registry();
        assert_eq!(r.counters().len(), 6, "three families × two tenants");
        let completed: u64 = r
            .counters()
            .iter()
            .filter(|(meta, _)| meta.family == "fleet_jobs_completed_total")
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(completed, m.jobs_completed);
        assert_eq!(r.gauges().len(), 2);
    }

    /// The tenant-tagged trace bytes of one session, merged by
    /// concatenation (in the caller's deterministic order).
    struct TraceBytes(Vec<u8>);

    impl Merge for TraceBytes {
        fn merge(&mut self, other: TraceBytes) {
            self.0.extend(other.0);
        }
    }

    struct TenantTraceFactory;

    impl ObserverFactory for TenantTraceFactory {
        type Obs = JsonlWriter<Vec<u8>>;
        type Summary = TraceBytes;

        fn build(&self, session: u64) -> Self::Obs {
            JsonlWriter::with_tenant(Vec::new(), session as u32)
        }

        fn finish(&self, obs: Self::Obs) -> TraceBytes {
            TraceBytes(obs.into_inner())
        }
    }

    /// Satellite determinism guarantee: replicated fleet metrics and the
    /// merged tenant-tagged cell traces are byte-identical between the
    /// rayon fan-out and a purely sequential evaluation — the fleet
    /// mirror of `observed_sweep_is_thread_count_invariant`.
    #[test]
    fn fleet_replication_is_thread_count_invariant() {
        let cfg = fleet(3, 24, 5);
        let reps = 3;

        let (par_metrics, par_trace) = run_fleet_replicated_with(&cfg, reps, &TenantTraceFactory);

        let mut seq_metrics = Vec::new();
        let mut seq_trace: Option<TraceBytes> = None;
        for rep in 0..reps {
            let (m, summaries) = run_fleet_with(&cfg, rep, &TenantTraceFactory);
            seq_metrics.push(m);
            for s in summaries {
                match seq_trace.as_mut() {
                    None => seq_trace = Some(s),
                    Some(acc) => acc.merge(s),
                }
            }
        }

        assert_eq!(par_metrics, seq_metrics, "fleet metrics must not depend on threads");
        let seq_trace = seq_trace.unwrap();
        assert!(!par_trace.0.is_empty(), "the traced fleet must emit events");
        assert_eq!(par_trace.0, seq_trace.0, "merged traces must be byte-identical");
    }

    mod fairness {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// One contention geometry's fleet outcome. Each run is a pure
        /// function of its inputs (the determinism the fleet tests assert
        /// separately), so repeated proptest cases reuse the first run
        /// instead of re-simulating — full sims are the expensive part.
        fn contended_run(tenants: u16, shared_cores: u32, jobs: u64) -> FleetMetrics {
            thread_local! {
                static CACHE: RefCell<HashMap<(u16, u32, u64), FleetMetrics>> =
                    RefCell::new(HashMap::new());
            }
            CACHE.with(|cache| {
                cache
                    .borrow_mut()
                    .entry((tenants, shared_cores, jobs))
                    .or_insert_with(|| {
                        let mut base = ScanConfig::new(
                            VariableParams::fig4(ScalingPolicy::Predictive, 1.5),
                            7,
                        );
                        base.fixed.sim_time_tu = 600.0;
                        let mut cfg = FleetConfig::new(base, tenants);
                        cfg.shared_private_cores = shared_cores;
                        cfg.jobs_per_tenant = jobs;
                        run_fleet(&cfg, 0)
                    })
                    .clone()
            })
        }

        proptest! {
            /// Under random contention geometry the fair-share gate (a)
            /// never lets fleet-wide private reservations exceed the
            /// shared pool, and (b) every job drawn from the arrival
            /// stream is eventually admitted and completed.
            #[test]
            fn prop_fair_share_is_safe_and_live(
                tenants in 2u16..4,
                shared_cores in 4u32..20,
                jobs in 1u64..4,
            ) {
                let m = contended_run(tenants, shared_cores, jobs);
                prop_assert!(m.peak_shared_cores <= shared_cores);
                prop_assert_eq!(m.jobs_submitted, tenants as u64 * jobs);
                prop_assert_eq!(m.jobs_completed, m.jobs_submitted);
            }
        }
    }
}
