//! Replicated runs and parameter-grid sweeps, parallelised with rayon.
//!
//! Each `(cell, repetition)` pair is an independent, deterministic
//! simulation (its RNG streams derive from `(seed, repetition)`), so the
//! rayon fan-out provably returns the same results as a sequential loop —
//! the data-parallel contract the workspace's HPC guides are built on.
//!
//! # Observing parallel sessions
//!
//! Session observers are `Rc<RefCell<_>>` sinks and cannot cross the
//! rayon task boundary, so the sweep uses the factory/summary bridge from
//! `scan_sim::trace`: [`run_replicated_with`] and [`sweep_grid_with`]
//! take an [`ObserverFactory`] (`Sync`, shared by reference), each worker
//! task builds its own observer via [`ObserverFactory::build`], and only
//! the `Send` summary returns. Summaries are merged with [`Merge::merge`]
//! strictly in repetition order — *not* in task-completion order — so the
//! statistics a sweep reports are bit-identical whether rayon ran on one
//! thread or N (`RAYON_NUM_THREADS=1` reproduces the sequential fold
//! exactly; the determinism tests below assert this).

use crate::config::{ScanConfig, VariableParams};
use crate::metrics::{ReplicatedMetrics, SessionMetrics};
use crate::session::run_session_with;
use rayon::prelude::*;
use scan_sim::{Merge, NullObserverFactory, ObserverFactory};
use serde::{Deserialize, Serialize};

/// Runs `repetitions` seeded repetitions of one configuration in parallel
/// and aggregates mean ± σ.
pub fn run_replicated(cfg: &ScanConfig, repetitions: u64) -> ReplicatedMetrics {
    run_replicated_with(cfg, repetitions, &NullObserverFactory).0
}

/// [`run_replicated`], with one factory-built observer per session.
///
/// Returns the replicated metrics plus the per-session summaries merged
/// in repetition order. The factory's `session` ordinal is the
/// repetition number.
pub fn run_replicated_with<F: ObserverFactory>(
    cfg: &ScanConfig,
    repetitions: u64,
    factory: &F,
) -> (ReplicatedMetrics, F::Summary)
where
    F::Summary: Merge,
{
    assert!(repetitions >= 1);
    let observed: Vec<(SessionMetrics, F::Summary)> = (0..repetitions)
        .into_par_iter()
        .map(|rep| {
            let (metrics, obs) = run_session_with(cfg, rep, factory.build(rep));
            (metrics, factory.finish(obs))
        })
        .collect();
    let mut sessions = Vec::with_capacity(observed.len());
    let mut merged: Option<F::Summary> = None;
    // Deterministic fold: `collect` returned repetition order, merge in
    // that order regardless of which thread ran what.
    for (metrics, summary) in observed {
        sessions.push(metrics);
        match merged.as_mut() {
            None => merged = Some(summary),
            Some(m) => m.merge(summary),
        }
    }
    (ReplicatedMetrics::from_sessions(sessions), merged.expect("repetitions >= 1"))
}

/// One sweep cell's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's variable parameters.
    pub params: VariableParams,
    /// Replicated metrics for the cell.
    pub metrics: ReplicatedMetrics,
}

/// One sweep cell's outcome with its merged observer summary.
#[derive(Debug, Clone)]
pub struct ObservedCell<S> {
    /// The cell's variable parameters.
    pub params: VariableParams,
    /// Replicated metrics for the cell.
    pub metrics: ReplicatedMetrics,
    /// The cell's observer summaries, merged in repetition order.
    pub stats: S,
}

/// Sweeps a list of cells, each replicated, with the whole
/// `(cell × repetition)` space scheduled onto one rayon pool.
pub fn sweep_grid(
    base: &ScanConfig,
    cells: &[VariableParams],
    repetitions: u64,
) -> Vec<CellResult> {
    sweep_grid_with(base, cells, repetitions, &NullObserverFactory)
        .into_iter()
        .map(|cell| CellResult { params: cell.params, metrics: cell.metrics })
        .collect()
}

/// [`sweep_grid`], with one factory-built observer per session.
///
/// Every `(cell, repetition)` session gets its own observer (built inside
/// the rayon task with the flat session ordinal, cell-major); summaries
/// are merged per cell in repetition order, so the per-cell statistics
/// are independent of rayon's thread count and scheduling.
pub fn sweep_grid_with<F: ObserverFactory>(
    base: &ScanConfig,
    cells: &[VariableParams],
    repetitions: u64,
    factory: &F,
) -> Vec<ObservedCell<F::Summary>>
where
    F::Summary: Merge,
{
    assert!(repetitions >= 1);
    // Flatten so rayon load-balances across the full space (cells differ
    // wildly in event counts: heavy-load never-scale cells are cheap,
    // always-scale cells are not).
    let flat: Vec<(u64, usize, u64)> = (0..cells.len())
        .flat_map(|c| (0..repetitions).map(move |r| (c, r)))
        .enumerate()
        .map(|(ordinal, (c, r))| (ordinal as u64, c, r))
        .collect();
    let observed: Vec<(usize, SessionMetrics, F::Summary)> = flat
        .into_par_iter()
        .map(|(ordinal, c, rep)| {
            let mut cfg = base.clone();
            cfg.variable = cells[c];
            let (metrics, obs) = run_session_with(&cfg, rep, factory.build(ordinal));
            (c, metrics, factory.finish(obs))
        })
        .collect();

    let mut grouped: Vec<(Vec<SessionMetrics>, Option<F::Summary>)> = Vec::new();
    grouped.resize_with(cells.len(), || (Vec::new(), None));
    // `collect` preserved flat (cell-major, repetition-minor) order, so
    // this sequential pass merges each cell's summaries in repetition
    // order — the deterministic aggregation step.
    for (c, metrics, summary) in observed {
        let (sessions, merged) = &mut grouped[c];
        sessions.push(metrics);
        match merged.as_mut() {
            None => *merged = Some(summary),
            Some(m) => m.merge(summary),
        }
    }
    cells
        .iter()
        .zip(grouped)
        .map(|(&params, (sessions, merged))| ObservedCell {
            params,
            metrics: ReplicatedMetrics::from_sessions(sessions),
            stats: merged.expect("repetitions >= 1"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScanConfig;
    use crate::observers::{DecisionStats, DecisionStatsFactory};
    use crate::session::run_session;
    use scan_sched::scaling::ScalingPolicy;

    fn base() -> ScanConfig {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 17);
        cfg.fixed.sim_time_tu = 120.0;
        cfg
    }

    #[test]
    fn replicated_aggregates_n_runs() {
        let r = run_replicated(&base(), 4);
        assert_eq!(r.n(), 4);
        assert!(r.profit_per_run.stddev() >= 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = base();
        let par = run_replicated(&cfg, 3);
        let seq: Vec<SessionMetrics> = (0..3).map(|rep| run_session(&cfg, rep)).collect();
        assert_eq!(par.sessions, seq, "rayon must not change results");
    }

    #[test]
    fn sweep_preserves_cell_order() {
        let cells: Vec<VariableParams> = [2.2, 2.8]
            .iter()
            .map(|&i| VariableParams::fig4(ScalingPolicy::AlwaysScale, i))
            .collect();
        let results = sweep_grid(&base(), &cells, 2);
        assert_eq!(results.len(), 2);
        assert!((results[0].params.mean_interval - 2.2).abs() < 1e-12);
        assert!((results[1].params.mean_interval - 2.8).abs() < 1e-12);
        assert_eq!(results[0].metrics.n(), 2);
    }

    /// The tentpole determinism guarantee: an observed parallel sweep
    /// reports per-cell statistics bit-identical to a purely sequential
    /// (one-thread) evaluation of the same `(cell × repetition)` space,
    /// for a fixed seed.
    #[test]
    fn observed_sweep_is_thread_count_invariant() {
        // Load the cells enough that real scaling decisions happen.
        let mut cfg = base();
        cfg.fixed.sim_time_tu = 150.0;
        let cells: Vec<VariableParams> = [0.9, 2.5]
            .iter()
            .map(|&i| VariableParams::fig4(ScalingPolicy::Predictive, i))
            .collect();
        let reps = 3;

        // Parallel run: rayon schedules the 6 sessions however it likes.
        let par = sweep_grid_with(&cfg, &cells, reps, &DecisionStatsFactory);

        // Sequential reference: the same space on one thread, merged in
        // the same repetition order.
        let seq: Vec<(Vec<SessionMetrics>, DecisionStats)> = cells
            .iter()
            .map(|&cell| {
                let mut c = cfg.clone();
                c.variable = cell;
                let mut sessions = Vec::new();
                let mut merged: Option<DecisionStats> = None;
                for rep in 0..reps {
                    let (m, s) = run_session_with(&c, rep, DecisionStats::new());
                    sessions.push(m);
                    match merged.as_mut() {
                        None => merged = Some(s),
                        Some(acc) => acc.merge(s),
                    }
                }
                (sessions, merged.unwrap())
            })
            .collect();

        assert_eq!(par.len(), seq.len());
        let mut saw_decisions = false;
        for (cell, (seq_sessions, seq_stats)) in par.iter().zip(&seq) {
            assert_eq!(cell.metrics.sessions, *seq_sessions, "metrics must not depend on threads");
            assert_eq!(cell.stats, *seq_stats, "stats must not depend on threads");
            saw_decisions |= cell.stats.total_decisions() > 0;
        }
        assert!(saw_decisions, "the loaded cell must exercise the decision counters");
    }

    #[test]
    fn replicated_with_merges_in_rep_order() {
        let cfg = base();
        let (metrics, stats) = run_replicated_with(&cfg, 3, &DecisionStatsFactory);
        assert_eq!(metrics.n(), 3);
        assert_eq!(stats.sessions(), 3);
        // The merged totals equal the sum of per-session folds.
        let mut expect: Option<DecisionStats> = None;
        for rep in 0..3 {
            let (_, s) = run_session_with(&cfg, rep, DecisionStats::new());
            match expect.as_mut() {
                None => expect = Some(s),
                Some(acc) => acc.merge(s),
            }
        }
        assert_eq!(stats, expect.unwrap());
    }
}
