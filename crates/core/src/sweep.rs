//! Replicated runs and parameter-grid sweeps, parallelised with rayon.
//!
//! Each `(cell, repetition)` pair is an independent, deterministic
//! simulation (its RNG streams derive from `(seed, repetition)`), so the
//! rayon fan-out provably returns the same results as a sequential loop —
//! the data-parallel contract the workspace's HPC guides are built on.

use crate::config::{ScanConfig, VariableParams};
use crate::metrics::{ReplicatedMetrics, SessionMetrics};
use crate::session::run_session;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Runs `repetitions` seeded repetitions of one configuration in parallel
/// and aggregates mean ± σ.
pub fn run_replicated(cfg: &ScanConfig, repetitions: u64) -> ReplicatedMetrics {
    assert!(repetitions >= 1);
    let sessions: Vec<SessionMetrics> =
        (0..repetitions).into_par_iter().map(|rep| run_session(cfg, rep)).collect();
    ReplicatedMetrics::from_sessions(sessions)
}

/// One sweep cell's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's variable parameters.
    pub params: VariableParams,
    /// Replicated metrics for the cell.
    pub metrics: ReplicatedMetrics,
}

/// Sweeps a list of cells, each replicated, with the whole
/// `(cell × repetition)` space scheduled onto one rayon pool.
pub fn sweep_grid(
    base: &ScanConfig,
    cells: &[VariableParams],
    repetitions: u64,
) -> Vec<CellResult> {
    assert!(repetitions >= 1);
    // Flatten so rayon load-balances across the full space (cells differ
    // wildly in event counts: heavy-load never-scale cells are cheap,
    // always-scale cells are not).
    let flat: Vec<(usize, u64)> =
        (0..cells.len()).flat_map(|c| (0..repetitions).map(move |r| (c, r))).collect();
    let sessions: Vec<(usize, SessionMetrics)> = flat
        .into_par_iter()
        .map(|(c, rep)| {
            let mut cfg = base.clone();
            cfg.variable = cells[c];
            (c, run_session(&cfg, rep))
        })
        .collect();

    let mut grouped: Vec<Vec<SessionMetrics>> = vec![Vec::new(); cells.len()];
    for (c, m) in sessions {
        grouped[c].push(m);
    }
    cells
        .iter()
        .zip(grouped)
        .map(|(&params, sessions)| CellResult {
            params,
            metrics: ReplicatedMetrics::from_sessions(sessions),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScanConfig;
    use scan_sched::scaling::ScalingPolicy;

    fn base() -> ScanConfig {
        let mut cfg = ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.5), 17);
        cfg.fixed.sim_time_tu = 120.0;
        cfg
    }

    #[test]
    fn replicated_aggregates_n_runs() {
        let r = run_replicated(&base(), 4);
        assert_eq!(r.n(), 4);
        assert!(r.profit_per_run.stddev() >= 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let cfg = base();
        let par = run_replicated(&cfg, 3);
        let seq: Vec<SessionMetrics> = (0..3).map(|rep| run_session(&cfg, rep)).collect();
        assert_eq!(par.sessions, seq, "rayon must not change results");
    }

    #[test]
    fn sweep_preserves_cell_order() {
        let cells: Vec<VariableParams> = [2.2, 2.8]
            .iter()
            .map(|&i| VariableParams::fig4(ScalingPolicy::AlwaysScale, i))
            .collect();
        let results = sweep_grid(&base(), &cells, 2);
        assert_eq!(results.len(), 2);
        assert!((results[0].params.mean_interval - 2.2).abs() < 1e-12);
        assert!((results[1].params.mean_interval - 2.8).abs() < 1e-12);
        assert_eq!(results[0].metrics.n(), 2);
    }
}
