//! The SCAN platform world: the event-driven integration of Data Broker,
//! Scheduler and Workers over the simulated hybrid cloud.
//!
//! Event flow (§III-A.2):
//!
//! 1. **Arrival** — a batch of jobs lands; the allocation policy picks
//!    each job's execution plan, the broker registers and shards its
//!    dataset, and the stage-1 subtasks join their class queues.
//! 2. **Dispatch** — idle workers of the right shape take queue heads
//!    (FIFO). A stalled class triggers the horizontal-scaling decision:
//!    use private capacity, hire public (Eq. 1 delay cost vs hire cost
//!    under the predictive policy), reshape an idle worker (when the
//!    heterogeneous configuration allows), or wait.
//! 3. **SubtaskDone** — the worker idles; when a stage's last shard
//!    finishes, the job advances (or completes, earning its reward).
//! 4. **IdleSweep** — workers idle past the timeout are released, so cost
//!    tracks load.
//! 5. **Replan** — long-term policies re-optimise; the adaptive policy
//!    additionally refreshes the knowledge-base-learned stage models from
//!    live task logs.

use crate::broker::DataBroker;
use crate::config::ScanConfig;
use crate::metrics::SessionMetrics;
use scan_cloud::instance::InstanceSize;
use scan_cloud::provider::CloudProvider;
use scan_cloud::tier::{BillingMode, Tier, TierCatalog, TierId};
use scan_cloud::vm::{boot_penalty, VmId};
use scan_kb::ProfileRecord;
use scan_sched::alloc::{AllocationContext, AllocationPolicy, Allocator};
use scan_sched::delay_cost::QueuedJobView;
use scan_sched::estimate::EttEstimator;
use scan_sched::learned::EpsilonGreedyPlanner;
use scan_sched::plan::{candidate_plans, ExecutionPlan};
use scan_sched::queue::{QueueSet, TaskClass};
use scan_sched::scaling::{ScalingContext, ScalingDecision};
use scan_sim::stats::{Histogram, OnlineStats, TimeWeighted};
use scan_sim::{Calendar, Engine, EventHandler, RngHub, SimDuration, SimRng, SimTime, StepOutcome};
use scan_workload::arrivals::ArrivalProcess;
use scan_workload::gatk::PipelineModel;
use scan_workload::job::JobId;
use scan_workload::reward::RewardFn;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// The next job batch arrives.
    Arrival,
    /// A VM finished booting or reshaping.
    VmReady(VmId),
    /// One shard subtask of a job's current stage finished.
    SubtaskDone {
        /// Owning job.
        job: JobId,
        /// Stage the subtask belonged to (consistency check).
        stage: usize,
        /// The worker that ran it.
        vm: VmId,
    },
    /// Periodic idle-worker release scan.
    IdleSweep,
    /// Periodic re-planning / model-refresh tick.
    Replan,
}

/// A queued shard subtask (the queue key carries stage and shape).
#[derive(Debug, Clone, Copy, PartialEq)]
struct SubtaskRef {
    job: JobId,
}

/// Live state of one admitted job.
#[derive(Debug, Clone)]
struct JobRun {
    job: scan_workload::job::Job,
    plan: ExecutionPlan,
    stage: usize,
    /// Shard subtasks of the current stage still queued or running.
    outstanding: u32,
}

/// The assembled platform; drives itself through [`Engine`].
pub struct Platform {
    cfg: ScanConfig,
    reward: RewardFn,
    true_model: PipelineModel,
    arrivals: ArrivalProcess,
    broker: DataBroker,
    provider: CloudProvider,
    private_tier: TierId,
    public_tier: TierId,
    estimator: EttEstimator,
    allocator: Allocator,
    queues: QueueSet<SubtaskRef>,
    jobs: HashMap<JobId, JobRun>,
    idle_by_size: BTreeMap<u32, BTreeSet<VmId>>,
    busy_until: HashMap<VmId, SimTime>,
    /// Hires/reshapes in flight per class, so a stalled queue does not
    /// hire one VM per dispatch pass.
    pending: BTreeMap<TaskClass, u32>,
    vm_reserved_for: HashMap<VmId, TaskClass>,
    /// Standing worker-pool targets per instance size (VM counts): "the
    /// SCAN Scheduler maintains analytic task queues and pools of SCAN
    /// workers" (§III-A). Sized from the learned model + load forecast.
    standing_target: BTreeMap<u32, u32>,
    exec_noise: SimRng,
    /// §VI learned policy: the ε-greedy bandit and its RNG stream. The
    /// bandit works in *epochs* (one arm per replan period, scored by the
    /// epoch's realised profit per run) so worker pools stay coherent —
    /// mixing many plan shapes job-by-job thrashes the pools.
    learned: Option<EpsilonGreedyPlanner>,
    learned_rng: SimRng,
    learned_arm: Option<usize>,
    epoch_start: (f64, f64, u64), // (reward, cost, completed) at epoch start
    // --- adaptive-policy state ---
    observed_rate: f64,
    observed_size: f64,
    last_arrival_at: SimTime,
    adaptive_ingest_counter: u64,
    // --- metrics ---
    total_reward: f64,
    completed: u64,
    submitted: u64,
    latency_stats: OnlineStats,
    latency_hist: Histogram,
    core_stage_stats: OnlineStats,
    queue_len_tw: TimeWeighted,
    busy_core_tu: f64,
    reshapes: u64,
}

impl Platform {
    /// Builds the platform for one `(config, repetition)` pair.
    pub fn new(cfg: ScanConfig, repetition: u64) -> Self {
        let hub = RngHub::new(cfg.seed, repetition);
        let true_model = cfg.true_model();
        let mut kb_rng = hub.stream("kb-bootstrap");
        let broker = DataBroker::bootstrap(&true_model, cfg.fixed.profile_noise, &mut kb_rng);

        let catalog = TierCatalog::new(vec![
            Tier {
                name: "private".into(),
                cost_per_core_tu: cfg.fixed.private_core_cost,
                capacity_cores: Some(cfg.fixed.private_capacity_cores),
                billing: BillingMode::BusyTime,
            },
            Tier {
                name: "public".into(),
                cost_per_core_tu: cfg.variable.public_core_cost,
                capacity_cores: None,
                billing: BillingMode::HiredTime,
            },
        ]);
        let provider = CloudProvider::new(catalog);

        let arrivals = ArrivalProcess::new(
            cfg.arrival_config(),
            hub.stream("arrival-timing"),
            hub.stream("arrival-sizes"),
        );

        let estimator = EttEstimator::new(broker.learned_model().clone(), cfg.fixed.eqt_alpha);
        let allocator = Allocator::new(cfg.variable.allocation, cfg.fixed.replan_period_tu);
        let learned = (cfg.variable.allocation == AllocationPolicy::Learned).then(|| {
            // Warm-start each arm with its model-predicted profit, so
            // exploration starts from the analytic ranking instead of
            // paying full price to try arms the model knows are bad.
            let arms = candidate_plans(broker.learned_model(), cfg.fixed.mean_job_size);
            let objective = scan_sched::plan::PlanObjective {
                reward: cfg.reward_fn(),
                price_per_core_tu: cfg.fixed.private_core_cost * cfg.fixed.overhead_price_factor,
                overhead_tu: 1.0,
            };
            let priors: Vec<f64> = arms
                .iter()
                .map(|plan| {
                    scan_sched::plan::evaluate_plan(
                        broker.learned_model(),
                        cfg.fixed.mean_job_size,
                        plan,
                        &objective,
                    )
                    .profit
                })
                .collect();
            EpsilonGreedyPlanner::with_priors(arms, priors, 0.05)
        });
        let reward = cfg.reward_fn();
        let observed_rate = cfg.arrival_config().mean_job_rate();
        let observed_size = cfg.fixed.mean_job_size;

        Platform {
            reward,
            true_model,
            arrivals,
            broker,
            provider,
            private_tier: TierId(0),
            public_tier: TierId(1),
            estimator,
            allocator,
            queues: QueueSet::new(),
            jobs: HashMap::new(),
            idle_by_size: BTreeMap::new(),
            busy_until: HashMap::new(),
            pending: BTreeMap::new(),
            vm_reserved_for: HashMap::new(),
            standing_target: BTreeMap::new(),
            exec_noise: hub.stream("exec-noise"),
            learned,
            learned_rng: hub.stream("learned-policy"),
            learned_arm: None,
            epoch_start: (0.0, 0.0, 0),
            observed_rate,
            observed_size,
            last_arrival_at: SimTime::ZERO,
            adaptive_ingest_counter: 0,
            total_reward: 0.0,
            completed: 0,
            submitted: 0,
            latency_stats: OnlineStats::new(),
            latency_hist: Histogram::new(0.0, 400.0, 800),
            core_stage_stats: OnlineStats::new(),
            queue_len_tw: TimeWeighted::new(0.0),
            busy_core_tu: 0.0,
            reshapes: 0,
            cfg,
        }
    }

    /// Runs the full session and returns its metrics.
    pub fn run(mut self) -> SessionMetrics {
        let horizon = SimTime::new(self.cfg.fixed.sim_time_tu);
        let mut engine: Engine<Event> = Engine::with_horizon(horizon);
        let cal = engine.calendar_mut();
        self.resize_standing_pools(SimTime::ZERO, cal);
        cal.schedule(self.arrivals.next_arrival_at().min(horizon), Event::Arrival);
        cal.schedule(SimTime::new(1.0), Event::IdleSweep);
        cal.schedule(SimTime::new(self.cfg.fixed.replan_period_tu), Event::Replan);
        let report = engine.run(&mut self);
        self.finish(report.ended_at, report.events_dispatched)
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        let batch = self.arrivals.next_batch();
        debug_assert_eq!(batch.at, now);

        // Online arrival-rate estimate (jobs/TU) for the adaptive policy.
        let gap = (now - self.last_arrival_at).as_tu().max(1e-6);
        let inst_rate = batch.jobs.len() as f64 / gap;
        self.observed_rate = 0.05 * inst_rate + 0.95 * self.observed_rate;
        self.last_arrival_at = now;

        for job in batch.jobs {
            self.observed_size = 0.05 * job.size_units + 0.95 * self.observed_size;
            self.admit(job, now);
        }
        cal.schedule(self.arrivals.next_arrival_at(), Event::Arrival);
        self.dispatch(now, cal);
    }

    fn admit(&mut self, job: scan_workload::job::Job, now: SimTime) {
        self.submitted += 1;
        let plan = match (&self.cfg.forced_plan, &self.learned) {
            (Some(stages), _) => ExecutionPlan::new(stages.clone()),
            (None, Some(planner)) => {
                // Epoch discipline: reuse the epoch's arm.
                let idx = match self.learned_arm {
                    Some(idx) => idx,
                    None => {
                        let (idx, _) = planner.select(&mut self.learned_rng);
                        self.learned_arm = Some(idx);
                        idx
                    }
                };
                planner.arm_plan(idx).clone()
            }
            (None, None) => {
                // The context borrows the broker's model; clone it locally
                // (7 stage factors) so the allocator can borrow mutably.
                let model = self.broker.learned_model().clone();
                let ctx = self.allocation_context(&model);
                self.allocator.plan_for(job.size_units, now, &ctx)
            }
        };
        // The Data Broker registers the dataset and its stage-1 shards.
        let (stage1_shards, _) = plan.stage(0);
        self.broker.register_job(&job, stage1_shards);

        let run = JobRun { job, plan, stage: 0, outstanding: 0 };
        let id = run.job.id;
        self.jobs.insert(id, run);
        self.enqueue_stage(id, now);
    }

    fn allocation_context<'a>(&self, model: &'a PipelineModel) -> AllocationContext<'a> {
        let adaptive = self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive;
        let (arrival_rate, mean_job_size, steady_overhead) = if adaptive {
            (self.observed_rate, self.observed_size, self.estimator.queue_times().eqt_tail(0))
        } else {
            (self.cfg.arrival_config().mean_job_rate(), self.cfg.fixed.mean_job_size, 1.0)
        };
        // Plans are priced at overhead-inflated rates: a hired core·TU of
        // work costs more than the raw tier price once boot and idle time
        // are amortised in.
        let f = self.cfg.fixed.overhead_price_factor;
        AllocationContext {
            model,
            reward: self.reward,
            private_price: self.cfg.fixed.private_core_cost * f,
            public_price: self.cfg.variable.public_core_cost * f,
            private_capacity: self.cfg.fixed.private_capacity_cores,
            private_free_now: self.provider.free_cores(self.private_tier) > 0,
            current_overhead_tu: self.estimator.queue_times().eqt_tail(0),
            arrival_rate,
            mean_job_size,
            steady_overhead_tu: steady_overhead,
        }
    }

    fn enqueue_stage(&mut self, id: JobId, now: SimTime) {
        let run = self.jobs.get_mut(&id).expect("enqueue_stage for unknown job");
        let (shards, threads) = run.plan.stage(run.stage);
        run.outstanding = shards;
        let class = TaskClass { stage: run.stage, cores: threads };
        for _ in 0..shards {
            self.queues.push(class, SubtaskRef { job: id }, now);
        }
        self.queue_len_tw.set(now, self.queues.total_len() as f64);
    }

    fn on_vm_ready(&mut self, now: SimTime, vm_id: VmId, cal: &mut Calendar<Event>) {
        if let Some(class) = self.vm_reserved_for.remove(&vm_id) {
            if let Some(p) = self.pending.get_mut(&class) {
                *p = p.saturating_sub(1);
            }
        }
        let vm = self.provider.vm_mut(vm_id).expect("ready event for unknown VM");
        vm.finish_boot(now);
        let cores = vm.size.cores();
        self.idle_by_size.entry(cores).or_default().insert(vm_id);
        self.dispatch(now, cal);
    }

    fn on_subtask_done(
        &mut self,
        now: SimTime,
        job: JobId,
        stage: usize,
        vm_id: VmId,
        cal: &mut Calendar<Event>,
    ) {
        // Free the worker.
        self.busy_until.remove(&vm_id);
        let vm = self.provider.vm_mut(vm_id).expect("done event for unknown VM");
        vm.finish_task(now);
        let cores = vm.size.cores();
        self.idle_by_size.entry(cores).or_default().insert(vm_id);

        // Advance the job.
        let run = self.jobs.get_mut(&job).expect("done event for unknown job");
        debug_assert_eq!(run.stage, stage, "stage mismatch in completion event");
        run.outstanding -= 1;
        if run.outstanding == 0 {
            run.stage += 1;
            if run.stage == run.plan.n_stages() {
                let run = self.jobs.remove(&job).expect("just present");
                self.complete(run, now);
            } else {
                self.enqueue_stage(job, now);
            }
        }
        self.dispatch(now, cal);
    }

    fn complete(&mut self, run: JobRun, now: SimTime) {
        let latency = run.job.latency(now);
        let reward = self.reward.reward(run.job.size_units, latency);
        self.total_reward += reward;
        self.completed += 1;
        self.latency_stats.push(latency);
        self.latency_hist.record(latency);
        self.core_stage_stats.push(run.plan.total_core_stages() as f64);
    }

    fn on_idle_sweep(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        let public_timeout = SimDuration::new(self.cfg.fixed.public_idle_timeout_tu);
        let private_timeout = SimDuration::new(self.cfg.fixed.idle_timeout_tu);
        let mut live: BTreeMap<u32, usize> = BTreeMap::new();
        for vm in self.provider.vms() {
            *live.entry(vm.size.cores()).or_insert(0) += 1;
        }
        for vm_id in self.provider.idle_candidates(now, public_timeout.min(private_timeout)) {
            let vm = self.provider.vm(vm_id).expect("candidate exists");
            let timeout =
                if vm.tier == self.public_tier { public_timeout } else { private_timeout };
            if vm.idle_span(now) < timeout {
                continue;
            }
            let cores = vm.size.cores();
            // Private pools never shrink below their standing target;
            // public workers are always releasable.
            if vm.tier == self.private_tier {
                let floor = *self.standing_target.get(&cores).unwrap_or(&0) as usize;
                let alive = live.entry(cores).or_insert(0);
                if *alive <= floor {
                    continue;
                }
                *alive -= 1;
            }
            if let Some(set) = self.idle_by_size.get_mut(&cores) {
                set.remove(&vm_id);
            }
            self.provider.release(vm_id, now);
        }
        cal.schedule(now + SimDuration::new(0.5), Event::IdleSweep);
    }

    fn on_replan(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        if self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive {
            self.broker.refresh_model();
            self.estimator.set_model(self.broker.learned_model().clone());
        }
        // §VI learned policy: close the epoch — score the arm with the
        // epoch's realised profit per completed run, then pick the next
        // epoch's arm.
        if let Some(planner) = &mut self.learned {
            let cost_now = self.provider.total_cost(now);
            let (r0, c0, n0) = self.epoch_start;
            let completed = self.completed - n0;
            if let Some(arm) = self.learned_arm {
                if completed > 0 {
                    let profit = (self.total_reward - r0) - (cost_now - c0);
                    planner.update(arm, profit / completed as f64);
                }
            }
            self.epoch_start = (self.total_reward, cost_now, self.completed);
            let (idx, _) = planner.select(&mut self.learned_rng);
            self.learned_arm = Some(idx);
        }
        self.resize_standing_pools(now, cal);
        cal.schedule(now + SimDuration::new(self.cfg.fixed.replan_period_tu), Event::Replan);
    }

    /// Sizes the per-shape standing pools from the representative plan and
    /// the load forecast: stage `i` keeps `headroom · λ · s_i · T_i`
    /// workers of its shape on standby, so the base flow is served without
    /// boot waits and idle churn. Tops pools up from the private tier
    /// (standing capacity is the owned cluster; the public tier stays
    /// reactive).
    fn resize_standing_pools(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        let plan = match (&self.cfg.forced_plan, &self.learned) {
            (Some(stages), _) => ExecutionPlan::new(stages.clone()),
            (None, Some(planner)) => planner.best_plan().clone(),
            (None, None) => {
                let model = self.broker.learned_model().clone();
                let ctx = self.allocation_context(&model);
                self.allocator.plan_for(self.cfg.fixed.mean_job_size, now, &ctx)
            }
        };
        let adaptive = self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive;
        let (rate, mean_size) = if adaptive {
            (self.observed_rate, self.observed_size)
        } else {
            (self.cfg.arrival_config().mean_job_rate(), self.cfg.fixed.mean_job_size)
        };
        let model = self.broker.learned_model().clone();
        let mut target: BTreeMap<u32, f64> = BTreeMap::new();
        for (i, &(s, t)) in plan.stages.iter().enumerate() {
            let d_gb = model.units_to_gb(mean_size) / s as f64;
            let task_tu = model.stage_latency(i, mean_size, s, t)
                + self.broker.staging_time(d_gb).as_tu();
            *target.entry(t).or_insert(0.0) += rate * s as f64 * task_tu;
        }
        self.standing_target = target
            .into_iter()
            .map(|(c, busy_vms)| (c, (self.cfg.fixed.pool_headroom * busy_vms).ceil() as u32))
            .collect();

        // Top pools up from the private tier.
        let targets: Vec<(u32, u32)> =
            self.standing_target.iter().map(|(&c, &n)| (c, n)).collect();
        for (cores, want) in targets {
            let live = self.live_count_by_size(cores);
            let size = InstanceSize::new(cores).expect("plan shapes are instance sizes");
            for _ in live..(want as usize) {
                match self.provider.hire_on(self.private_tier, size, now) {
                    Ok((vm_id, ready_at)) => cal.schedule(ready_at, Event::VmReady(vm_id)),
                    Err(_) => break, // private tier full: pools stay short
                }
            }
        }
    }

    fn live_count_by_size(&self, cores: u32) -> usize {
        self.provider.vms().filter(|vm| vm.size.cores() == cores).count()
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn take_idle(&mut self, cores: u32) -> Option<VmId> {
        let set = self.idle_by_size.get_mut(&cores)?;
        let id = *set.iter().next()?;
        set.remove(&id);
        Some(id)
    }

    /// Matches queued subtasks to idle workers and takes scaling decisions
    /// for stalled classes.
    fn dispatch(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        for class in self.queues.nonempty_classes() {
            // Serve with idle same-shape workers.
            while self.queues.get(class).map(|q| !q.is_empty()).unwrap_or(false) {
                let Some(vm_id) = self.take_idle(class.cores) else { break };
                self.assign(class, vm_id, now, cal);
            }
            // Stalled: decide whether to grow.
            let queued = self.queues.get(class).map(|q| q.len()).unwrap_or(0);
            if queued == 0 {
                continue;
            }
            let pending = *self.pending.get(&class).unwrap_or(&0);
            let mut deficit = (queued as u32).saturating_sub(pending);
            while deficit > 0 {
                if !self.try_grow(class, now, cal) {
                    break;
                }
                deficit -= 1;
            }
        }
        self.queue_len_tw.set(now, self.queues.total_len() as f64);
    }

    /// Attempts one capacity-growth action (reshape or hire) for a stalled
    /// class. Returns false when the policy says wait (or nothing can be
    /// done).
    fn try_grow(&mut self, class: TaskClass, now: SimTime, cal: &mut Calendar<Event>) -> bool {
        let size = InstanceSize::new(class.cores).expect("class cores are instance sizes");

        // Heterogeneous configuration: reshape an idle worker of another
        // shape instead of hiring, paying the 30 s penalty (§IV-B).
        if self.cfg.allow_reshape {
            if let Some(vm_id) = self.reshape_candidate(class.cores, now) {
                match self.provider.reshape(vm_id, size, now) {
                    Ok(ready_at) => {
                        // The VM is booting again — pull it out of the
                        // idle pool so nothing assigns to it meanwhile.
                        let old_cores =
                            *self.idle_by_size.iter().find(|(_, s)| s.contains(&vm_id)).expect("reshaped VM was idle").0;
                        self.idle_by_size.get_mut(&old_cores).expect("pool exists").remove(&vm_id);
                        self.reshapes += 1;
                        *self.pending.entry(class).or_insert(0) += 1;
                        self.vm_reserved_for.insert(vm_id, class);
                        cal.schedule(ready_at, Event::VmReady(vm_id));
                        return true;
                    }
                    Err(_) => { /* fall through to hire */ }
                }
            }
        }

        // The first `pending` queued items are already covered by hires
        // in flight; the marginal decision looks only at the remainder.
        let covered = *self.pending.get(&class).unwrap_or(&0) as usize;
        let ctx = self.scaling_context(class, now, covered);
        let decision = self.cfg.variable.scaling.decide(&ctx);
        let tier = match decision {
            ScalingDecision::HirePrivate => {
                // "Just enough and just on time" (§I): even free private
                // capacity is only committed when the Eq. 1 delay cost of
                // waiting for an existing worker exceeds the (cheap but
                // non-zero) cost of booting and running a new one. This
                // throttle applies to every policy — Table I's algorithms
                // differ in the *public* hire decision.
                if self.cfg.fixed.private_hire_throttle {
                    let avoided = (ctx.expected_wait_tu - ctx.boot_penalty_tu).max(0.0);
                    let dc =
                        scan_sched::delay_cost::delay_cost(&self.reward, &ctx.queued, avoided);
                    let hire_cost = self.cfg.fixed.private_core_cost
                        * class.cores as f64
                        * (ctx.boot_penalty_tu + ctx.expected_task_tu);
                    if dc <= hire_cost {
                        return false;
                    }
                }
                self.private_tier
            }
            ScalingDecision::HirePublic => self.public_tier,
            ScalingDecision::Wait => return false,
        };
        match self.provider.hire_on(tier, size, now) {
            Ok((vm_id, ready_at)) => {
                *self.pending.entry(class).or_insert(0) += 1;
                self.vm_reserved_for.insert(vm_id, class);
                cal.schedule(ready_at, Event::VmReady(vm_id));
                true
            }
            Err(_) => false,
        }
    }

    /// Picks an idle VM to reshape for a class needing `cores`: a worker
    /// of a shape with more idle machines than queued demand (cannibalise
    /// only surplus shapes), smallest shape first to conserve capacity.
    fn reshape_candidate(&self, cores: u32, now: SimTime) -> Option<VmId> {
        for (&size, set) in &self.idle_by_size {
            if size == cores || set.is_empty() {
                continue;
            }
            let shape_demand: usize = self
                .queues
                .iter()
                .filter(|(c, _)| c.cores == size)
                .map(|(_, q)| q.len())
                .sum();
            if set.len() > shape_demand {
                // Only cannibalise *stably* idle workers: a shape whose
                // pool just drained will be needed again within a batch
                // gap, and flip-flopping shapes pays the 30 s penalty both
                // ways while destroying pool warmth.
                return set
                    .iter()
                    .find(|&&vm| {
                        self.provider
                            .vm(vm)
                            .map(|v| v.idle_span(now).as_tu() >= 1.0)
                            .unwrap_or(false)
                    })
                    .copied();
            }
        }
        None
    }

    /// Cap on the Eq. 1 queue view: past a few hundred distinct jobs the
    /// delay cost dwarfs any hire cost, so enumerating a saturated queue
    /// in full would be pure O(n) waste on every dispatch.
    const MAX_QUEUE_VIEW: usize = 256;

    fn scaling_context(&self, class: TaskClass, now: SimTime, skip: usize) -> ScalingContext {
        // Eq. 1's queue view: distinct jobs waiting in this class, less
        // the first `skip` entries already covered by in-flight hires.
        let mut seen = BTreeSet::new();
        let mut queued = Vec::new();
        if let Some(q) = self.queues.get(class) {
            for entry in q.iter().skip(skip).take(Self::MAX_QUEUE_VIEW) {
                if !seen.insert(entry.item.job) {
                    continue;
                }
                if let Some(run) = self.jobs.get(&entry.item.job) {
                    queued.push(QueuedJobView {
                        size_units: run.job.size_units,
                        ett: self.estimator.ett(&run.job, run.stage, &run.plan.stages, now),
                    });
                }
            }
        }

        // Projected wait: the soonest same-shape worker to free up or
        // finish booting; a long sentinel when none exists at all.
        let mut expected_wait = f64::INFINITY;
        for (&vm_id, &until) in &self.busy_until {
            if let Some(vm) = self.provider.vm(vm_id) {
                if vm.size.cores() == class.cores {
                    expected_wait = expected_wait.min((until - now).as_tu());
                }
            }
        }
        if expected_wait.is_infinite() {
            for vm in self.provider.vms() {
                if vm.is_booting() && vm.size.cores() == class.cores {
                    expected_wait = expected_wait.min(boot_penalty().as_tu());
                }
            }
        }
        if expected_wait.is_infinite() {
            expected_wait = 50.0; // nothing of this shape exists: waiting is hopeless
        }

        // Expected run time of the head task.
        let expected_task_tu = self
            .queues
            .get(class)
            .and_then(|q| q.iter().next())
            .and_then(|e| self.jobs.get(&e.item.job))
            .map(|run| {
                let (shards, threads) = run.plan.stage(run.stage);
                self.estimator.eet(run.stage, run.job.size_units, shards, threads)
            })
            .unwrap_or(1.0);

        ScalingContext {
            private_has_capacity: self
                .provider
                .has_capacity(self.private_tier, InstanceSize::new(class.cores).expect("shape")),
            queued,
            expected_wait_tu: expected_wait,
            public_price_per_core_tu: self.cfg.variable.public_core_cost,
            cores_needed: class.cores,
            boot_penalty_tu: boot_penalty().as_tu(),
            expected_task_tu,
            reward: self.reward,
        }
    }

    fn assign(&mut self, class: TaskClass, vm_id: VmId, now: SimTime, cal: &mut Calendar<Event>) {
        let (subtask, wait) =
            self.queues.pop(class, now).expect("assign called with non-empty queue");
        self.estimator.queue_times_mut().observe(class.stage, wait.as_tu());

        let run = self.jobs.get(&subtask.job).expect("queued subtask has a live job");
        let (shards, threads) = run.plan.stage(run.stage);
        debug_assert_eq!(threads, class.cores);
        let d_gb = self.true_model.units_to_gb(run.job.size_units) / shards as f64;

        // Ground-truth execution time + staging + measurement noise.
        let exec = self.true_model.stages[run.stage].threaded_time(threads, d_gb);
        let noise = (1.0 + 0.02 * self.exec_noise.standard_normal()).max(0.05);
        let staging = self.broker.staging_time(d_gb);
        let duration = SimDuration::clamped(exec * noise) + staging;

        // Live task log for the knowledge base (sampled, adaptive only —
        // "the log information will be used to further populate the SCAN
        // knowledge-base").
        if self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive {
            self.adaptive_ingest_counter += 1;
            if self.adaptive_ingest_counter % 32 == 0 {
                self.broker.ingest_log(&ProfileRecord {
                    application: "GATK".into(),
                    stage: (run.stage + 1) as u32,
                    input_gb: d_gb,
                    threads,
                    ram_gb: 4.0,
                    e_time: exec * noise,
                });
            }
        }

        let vm = self.provider.vm_mut(vm_id).expect("idle VM exists");
        vm.start_task(now);
        let done_at = now + duration;
        self.busy_until.insert(vm_id, done_at);
        self.busy_core_tu += class.cores as f64 * duration.as_tu();
        cal.schedule(done_at, Event::SubtaskDone { job: subtask.job, stage: run.stage, vm: vm_id });
    }

    // ------------------------------------------------------------------
    // Wrap-up
    // ------------------------------------------------------------------

    fn finish(self, ended_at: SimTime, events: u64) -> SessionMetrics {
        let total_cost = self.provider.total_cost(ended_at);
        let total_core_tu = self.provider.total_core_tu(ended_at);
        let public_core_tu = self.provider.core_tu_on_tier(self.public_tier, ended_at);
        let profit_per_run = if self.completed == 0 {
            0.0
        } else {
            (self.total_reward - total_cost) / self.completed as f64
        };
        SessionMetrics {
            jobs_submitted: self.submitted,
            jobs_completed: self.completed,
            total_reward: self.total_reward,
            total_cost,
            profit_per_run,
            reward_to_cost: if total_cost > 0.0 { self.total_reward / total_cost } else { 0.0 },
            mean_latency: self.latency_stats.mean(),
            p95_latency: self.latency_hist.quantile(0.95),
            public_core_tu_share: if total_core_tu > 0.0 {
                public_core_tu / total_core_tu
            } else {
                0.0
            },
            worker_utilisation: if total_core_tu > 0.0 {
                (self.busy_core_tu / total_core_tu).min(1.0)
            } else {
                0.0
            },
            mean_queue_len: self.queue_len_tw.average_until(ended_at),
            peak_queue_len: self.queue_len_tw.peak() as usize,
            mean_core_stages: self.core_stage_stats.mean(),
            vms_hired: self.provider.hired_total(),
            reshapes: self.reshapes,
            events,
        }
    }
}

impl EventHandler for Platform {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, cal: &mut Calendar<Event>) -> StepOutcome {
        match event {
            Event::Arrival => self.on_arrival(now, cal),
            Event::VmReady(vm) => self.on_vm_ready(now, vm, cal),
            Event::SubtaskDone { job, stage, vm } => {
                self.on_subtask_done(now, job, stage, vm, cal)
            }
            Event::IdleSweep => self.on_idle_sweep(now, cal),
            Event::Replan => self.on_replan(now, cal),
        }
        StepOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RewardKind, VariableParams};
    use scan_sched::scaling::ScalingPolicy;

    fn short_config(scaling: ScalingPolicy, interval: f64) -> ScanConfig {
        let mut cfg = ScanConfig::new(VariableParams::fig4(scaling, interval), 99);
        cfg.fixed.sim_time_tu = 300.0;
        cfg
    }

    fn run(cfg: ScanConfig) -> SessionMetrics {
        Platform::new(cfg, 0).run()
    }

    #[test]
    fn session_completes_jobs() {
        let m = run(short_config(ScalingPolicy::Predictive, 2.5));
        assert!(m.jobs_submitted > 200, "submitted {}", m.jobs_submitted);
        assert!(m.jobs_completed > 0, "completed {}", m.jobs_completed);
        assert!(m.completion_rate() > 0.5, "completion {}", m.completion_rate());
        assert!(m.total_cost > 0.0);
        assert!(m.mean_latency > 0.0);
        assert!(m.events > 1000);
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = run(short_config(ScalingPolicy::Predictive, 2.5));
        let b = run(short_config(ScalingPolicy::Predictive, 2.5));
        assert_eq!(a, b, "same seed must give bit-identical metrics");
    }

    #[test]
    fn repetitions_differ() {
        let cfg = short_config(ScalingPolicy::Predictive, 2.5);
        let a = Platform::new(cfg.clone(), 0).run();
        let b = Platform::new(cfg, 1).run();
        assert_ne!(a, b);
    }

    #[test]
    fn never_scale_uses_no_public_cores() {
        let m = run(short_config(ScalingPolicy::NeverScale, 2.0));
        assert_eq!(m.public_core_tu_share, 0.0);
    }

    #[test]
    fn always_scale_buys_public_under_load() {
        let mut cfg = short_config(ScalingPolicy::AlwaysScale, 2.0);
        // Shrink the private tier so bursts spill over.
        cfg.fixed.private_capacity_cores = 64;
        let m = run(cfg);
        assert!(m.public_core_tu_share > 0.0, "share {}", m.public_core_tu_share);
    }

    #[test]
    fn latency_grows_when_capacity_is_starved() {
        let mut quiet = short_config(ScalingPolicy::NeverScale, 3.0);
        quiet.fixed.private_capacity_cores = 624;
        let mut starved = short_config(ScalingPolicy::NeverScale, 2.0);
        starved.fixed.private_capacity_cores = 160;
        let mq = run(quiet);
        let ms = run(starved);
        assert!(
            ms.completion_rate() < mq.completion_rate(),
            "starved completion {} vs quiet {}",
            ms.completion_rate(),
            mq.completion_rate()
        );
        assert!(
            ms.jobs_completed == 0 || ms.mean_latency > mq.mean_latency,
            "starved latency {} vs quiet {}",
            ms.mean_latency,
            mq.mean_latency
        );
    }

    #[test]
    fn forced_plan_is_respected() {
        let mut cfg = short_config(ScalingPolicy::AlwaysScale, 2.5);
        let plan = vec![(1u32, 2u32), (4, 1), (1, 2), (2, 2), (1, 4), (1, 1), (1, 1)];
        cfg.forced_plan = Some(plan.clone());
        let m = run(cfg);
        let expect: u32 = plan.iter().map(|&(s, t)| s * t).sum();
        assert!((m.mean_core_stages - expect as f64).abs() < 1e-9);
    }

    #[test]
    fn reshape_config_reshapes() {
        let mut cfg = short_config(ScalingPolicy::NeverScale, 2.3);
        cfg.allow_reshape = true;
        // Greedy allocation varies plans, creating shape mismatches that
        // reshaping serves by converting surplus idle workers.
        cfg.variable.allocation = AllocationPolicy::Greedy;
        let m = run(cfg);
        assert!(m.reshapes > 0, "expected reshapes, got {}", m.reshapes);
    }

    #[test]
    fn throughput_reward_sessions_work() {
        let mut cfg = short_config(ScalingPolicy::Predictive, 2.5);
        cfg.variable.reward = RewardKind::ThroughputBased;
        let m = run(cfg);
        assert!(m.total_reward > 0.0);
        assert!(m.reward_to_cost > 0.0);
    }

    #[test]
    fn adaptive_policy_runs_and_ingests() {
        let mut cfg = short_config(ScalingPolicy::Predictive, 2.5);
        cfg.variable.allocation = AllocationPolicy::LongTermAdaptive;
        let m = run(cfg);
        assert!(m.jobs_completed > 0);
    }

    #[test]
    fn all_allocation_policies_run() {
        for alloc in AllocationPolicy::all() {
            let mut cfg = short_config(ScalingPolicy::Predictive, 2.6);
            cfg.variable.allocation = alloc;
            let m = run(cfg);
            assert!(m.jobs_completed > 0, "{:?} completed nothing", alloc);
        }
    }

    #[test]
    fn utilisation_and_shares_are_fractions() {
        let m = run(short_config(ScalingPolicy::AlwaysScale, 2.2));
        assert!((0.0..=1.0).contains(&m.worker_utilisation));
        assert!((0.0..=1.0).contains(&m.public_core_tu_share));
    }
}

#[cfg(test)]
mod learned_tests {
    use super::*;
    use crate::config::VariableParams;
    use scan_sched::scaling::ScalingPolicy;

    #[test]
    fn learned_policy_runs_and_converges_on_profitable_arms() {
        let mut cfg =
            ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 321);
        cfg.variable.allocation = AllocationPolicy::Learned;
        cfg.fixed.sim_time_tu = 1_000.0;
        let m = Platform::new(cfg, 0).run();
        assert!(m.jobs_completed > 500, "learned policy must complete work");
        // After exploration the bandit should be at least in the ballpark
        // of the best-constant baseline (same seed, same workload).
        let mut base =
            ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.0), 321);
        base.fixed.sim_time_tu = 1_000.0;
        let mb = Platform::new(base, 0).run();
        assert!(
            m.profit_per_run > 0.4 * mb.profit_per_run,
            "learned {} too far behind best-constant {}",
            m.profit_per_run,
            mb.profit_per_run
        );
    }

    #[test]
    fn learned_policy_is_deterministic() {
        let mut cfg =
            ScanConfig::new(VariableParams::fig4(ScalingPolicy::Predictive, 2.4), 322);
        cfg.variable.allocation = AllocationPolicy::Learned;
        cfg.fixed.sim_time_tu = 400.0;
        let a = Platform::new(cfg.clone(), 0).run();
        let b = Platform::new(cfg, 0).run();
        assert_eq!(a, b);
    }

    #[test]
    fn learned_is_not_in_the_table_i_grid() {
        assert!(!AllocationPolicy::all().contains(&AllocationPolicy::Learned));
        assert_eq!(AllocationPolicy::Learned.name(), "learned");
    }
}
