//! Worker lifecycle: boot completion, the idle-release sweep, and the
//! standing per-shape worker pools topped up from the private tier.

use super::events::{Event, EventSink};
use super::Platform;
use scan_cloud::instance::InstanceSize;
use scan_cloud::vm::VmId;
use scan_sched::alloc::AllocationPolicy;
use scan_sched::plan::ExecutionPlan;
use scan_sched::queue::{shape_slot, N_SHAPES};
use scan_sim::{SimDuration, SimTime, TraceEvent};

impl Platform {
    pub(super) fn on_vm_ready(&mut self, now: SimTime, vm_id: VmId, sink: &mut impl EventSink) {
        if let Some(class) = self.vm_reserved_for.remove(vm_id.slot()) {
            self.pending.decrement_saturating(class.stage, class.cores);
        }
        let vm = self.provider.vm_mut(vm_id).expect("ready event for unknown VM");
        vm.finish_boot(now);
        let cores = vm.size.cores();
        self.booting.dec(cores);
        self.tracer.emit(now, TraceEvent::VmBooted { vm: vm_id.0 as u64, cores });
        if self.finished() {
            // The tenant drained while this worker was booting: return it
            // (and its shared cores) straight to the provider.
            self.provider.release(vm_id, now);
            return;
        }
        self.idle.insert(cores, vm_id);
        self.dispatch(now, sink);
    }

    pub(super) fn on_idle_sweep(&mut self, now: SimTime, sink: &mut impl EventSink) {
        self.sample_series(now);
        let public_timeout = SimDuration::new(self.cfg.fixed.public_idle_timeout_tu);
        let private_timeout = SimDuration::new(self.cfg.fixed.idle_timeout_tu);
        let mut live = [0usize; N_SHAPES];
        for vm in self.provider.vms() {
            live[shape_slot(vm.size.cores())] += 1;
        }
        for vm_id in self.provider.idle_candidates(now, public_timeout.min(private_timeout)) {
            let vm = self.provider.vm(vm_id).expect("candidate exists");
            let timeout =
                if vm.tier == self.public_tier { public_timeout } else { private_timeout };
            if vm.idle_span(now) < timeout {
                continue;
            }
            let cores = vm.size.cores();
            // Private pools never shrink below their standing target;
            // public workers are always releasable.
            if vm.tier == self.private_tier {
                let floor = self.standing_target.floor_for(cores) as usize;
                let alive = &mut live[shape_slot(cores)];
                if *alive <= floor {
                    continue;
                }
                *alive -= 1;
            }
            self.idle.remove(cores, vm_id);
            self.provider.release(vm_id, now);
        }
        // Fleet tenants: releases above may have freed shared cores, so
        // the fair-share gate gets a chance to re-admit deferred jobs.
        self.drain_backlog(now, sink);
        if self.arrivals_exhausted() && !self.finished() {
            // Past the arrival cap there is no next arrival to re-trigger
            // dispatch, so a queue whose last scaling decision was "wait"
            // (e.g. while the surged public price was prohibitive) would
            // starve. Re-evaluate on the sweep cadence instead: as other
            // tenants drain and contention falls, waiting queues get
            // their hire.
            self.dispatch(now, sink);
        }
        if self.finished() {
            // Run-to-completion teardown: release every idle worker
            // (floors included) so billing stops and the shared pool gets
            // its cores back, and stop the periodic tick — a drained
            // tenant schedules nothing further.
            self.teardown(now);
        } else {
            sink.schedule(now + SimDuration::new(0.5), Event::IdleSweep);
        }
    }

    /// Releases every idle worker of a drained fleet tenant. Workers
    /// still booting release from `on_vm_ready`; nothing can be busy
    /// (`finished()` implies no live jobs).
    fn teardown(&mut self, now: SimTime) {
        for vm_id in self.provider.idle_candidates(now, SimDuration::new(0.0)) {
            let cores = self.provider.vm(vm_id).expect("candidate exists").size.cores();
            self.idle.remove(cores, vm_id);
            self.provider.release(vm_id, now);
        }
    }

    /// Sizes the per-shape standing pools from the representative plan and
    /// the load forecast: stage `i` keeps `headroom · λ · s_i · T_i`
    /// workers of its shape on standby, so the base flow is served without
    /// boot waits and idle churn. Tops pools up from the private tier
    /// (standing capacity is the owned cluster; the public tier stays
    /// reactive).
    pub(super) fn resize_standing_pools(&mut self, now: SimTime, sink: &mut impl EventSink) {
        if self.arrivals_exhausted() {
            // Capped fleet tenant past its last arrival: stop forecasting
            // standing demand so the floors drop and the idle sweep can
            // wind the pools down as the tail of jobs drains.
            self.standing_target.clear();
            return;
        }
        let plan = match (&self.cfg.forced_plan, &self.learned) {
            (Some(stages), _) => ExecutionPlan::new(stages.clone()),
            (None, Some(planner)) => planner.best_plan().clone(),
            (None, None) => {
                let model = self.broker.learned_model().clone();
                let ctx = self.allocation_context(&model);
                self.allocator.plan_for(self.cfg.fixed.mean_job_size, now, &ctx)
            }
        };
        let adaptive = self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive;
        let (rate, mean_size) = if adaptive {
            (self.observed_rate, self.observed_size)
        } else {
            (self.cfg.arrival_config().mean_job_rate(), self.cfg.fixed.mean_job_size)
        };
        let model = self.broker.learned_model().clone();
        let mut target = [0.0f64; N_SHAPES];
        for (i, &(s, t)) in plan.stages.iter().enumerate() {
            let d_gb = model.units_to_gb(mean_size) / s as f64;
            let task_tu =
                model.stage_latency(i, mean_size, s, t) + self.broker.staging_time(d_gb).as_tu();
            target[shape_slot(t)] += rate * s as f64 * task_tu;
        }
        self.standing_target.clear();
        for (slot, &busy_vms) in target.iter().enumerate() {
            if busy_vms > 0.0 {
                self.standing_target.set(
                    scan_sched::queue::SHAPE_CORES[slot],
                    (self.cfg.fixed.pool_headroom * busy_vms).ceil() as u32,
                );
            }
        }

        // Top pools up from the private tier (ascending shapes, the old
        // keyed iteration order).
        for (cores, want) in self.standing_target.iter().collect::<Vec<_>>() {
            if want == 0 {
                continue;
            }
            let live = self.live_count_by_size(cores);
            let size = InstanceSize::new(cores).expect("plan shapes are instance sizes");
            for _ in live..(want as usize) {
                match self.provider.hire_on(self.private_tier, size, now) {
                    Ok((vm_id, ready_at)) => {
                        self.booting.inc(cores);
                        sink.schedule(ready_at, Event::VmReady(vm_id));
                    }
                    Err(_) => break, // private tier full: pools stay short
                }
            }
        }
    }

    fn live_count_by_size(&self, cores: u32) -> usize {
        self.provider.vms().filter(|vm| vm.size.cores() == cores).count()
    }

    /// Feeds the sim-time-windowed series on the idle-sweep cadence
    /// (every 0.5 TU): fleet utilisation, busy cores, queue depth, and
    /// the per-tier spend rate from cumulative-cost deltas.
    fn sample_series(&mut self, now: SimTime) {
        let Some(mm) = &self.meters else {
            return;
        };
        let busy = self.busy.total_cores() as f64;
        let hired: u32 = self.provider.vms().map(|vm| vm.size.cores()).sum();
        let util = if hired > 0 { busy / hired as f64 } else { 0.0 };
        let t = now.as_tu();
        mm.metrics.sample(mm.util, t, util);
        mm.metrics.sample(mm.busy_cores, t, busy);
        mm.metrics.sample(mm.queue_depth, t, self.queues.total_len() as f64);
        for (i, tier) in [self.private_tier, self.public_tier].into_iter().enumerate() {
            let cost = self.provider.cost_on_tier(tier, now);
            mm.metrics.rate_add(mm.spend_rate[i], t, cost - self.last_tier_cost[i]);
            self.last_tier_cost[i] = cost;
        }
    }
}
