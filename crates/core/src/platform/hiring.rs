//! Capacity growth for stalled classes: the horizontal-scaling decision
//! (Table I) priced from the incremental Eq. 1 aggregates, the
//! private-hire throttle, and reshape-instead-of-hire for heterogeneous
//! configurations. The naive full-walk queue view survives as the
//! debug-build oracle cross-checking the aggregates.

use super::events::{Event, EventSink};
use super::meters::ChoiceMeter;
use super::Platform;
use scan_cloud::instance::InstanceSize;
use scan_cloud::vm::{boot_penalty, VmId};
use scan_sched::delay_cost::{delay_cost, QueuedJobView};
use scan_sched::queue::{TaskClass, SHAPE_CORES};
use scan_sched::scaling::{ScalingContext, ScalingDecision};
use scan_sim::{prof, ScalingChoice, SimTime, TraceEvent};

/// The scalar inputs of one scaling decision (everything except the
/// Eq. 1 pricer, which borrows the platform's per-class aggregates).
#[derive(Debug, Clone, Copy)]
pub(super) struct ScalingInputs {
    pub(super) private_has_capacity: bool,
    pub(super) expected_wait_tu: f64,
    pub(super) expected_task_tu: f64,
}

impl Platform {
    /// Cap on the Eq. 1 queue view, in queue *entries*: past a few
    /// hundred the delay cost dwarfs any hire cost, so pricing a deeper
    /// window buys nothing. The incremental aggregates and the debug
    /// oracle's full walk both honour the same entry window.
    pub(super) const MAX_QUEUE_VIEW: usize = 256;

    /// Attempts one capacity-growth action (reshape or hire) for a stalled
    /// class. Returns false when the policy says wait (or nothing can be
    /// done).
    pub(super) fn try_grow(
        &mut self,
        class: TaskClass,
        now: SimTime,
        sink: &mut impl EventSink,
    ) -> bool {
        prof::scope!("try_grow");
        let size = InstanceSize::new(class.cores).expect("class cores are instance sizes");

        // Heterogeneous configuration: reshape an idle worker of another
        // shape instead of hiring, paying the 30 s penalty (§IV-B).
        if self.cfg.allow_reshape {
            if let Some(vm_id) = self.reshape_candidate(class.cores, now) {
                // The candidate's current shape, read from its VM record
                // *before* the reshape overwrites it — this is the pool it
                // must leave (the old code searched every pool for the id).
                let old_cores = self.provider.vm(vm_id).expect("candidate is live").size.cores();
                match self.provider.reshape(vm_id, size, now) {
                    Ok(ready_at) => {
                        // The VM is booting again — pull it out of the
                        // idle pool so nothing assigns to it meanwhile.
                        let removed = self.idle.remove(old_cores, vm_id);
                        debug_assert!(removed, "reshaped VM was idle");
                        self.booting.inc(class.cores);
                        self.pending.increment(class.stage, class.cores);
                        self.vm_reserved_for.insert(vm_id.slot(), class);
                        // Narrate the decision after the action (whether a
                        // candidate can actually reshape is only known from
                        // the provider's answer).
                        self.tracer.emit_with(now, || TraceEvent::ScalingDecision {
                            stage: class.stage as u32,
                            cores: class.cores,
                            queued_jobs: self
                                .queues
                                .get(class)
                                .map(|q| q.len() as u32)
                                .unwrap_or(0),
                            delay_cost: f64::NAN,
                            hire_cost: f64::NAN,
                            choice: ScalingChoice::Reshape,
                        });
                        if let Some(mm) = &self.meters {
                            mm.metrics.counter_add(mm.choice[ChoiceMeter::Reshape as usize], 1);
                        }
                        sink.schedule(ready_at, Event::VmReady(vm_id));
                        return true;
                    }
                    Err(_) => { /* fall through to hire */ }
                }
            }
        }

        // The first `pending` queued items are already covered by hires
        // in flight; the marginal decision looks only at the remainder.
        let covered = self.pending.get(class.stage, class.cores) as usize;
        let inputs = self.scaling_inputs(class, now);
        if self.reward.depends_on_ett() {
            // Lazy revalidation: refresh the cached future-stage terms in
            // the priced window iff the estimator changed since they were
            // computed. Stage advances are structural (a new stage is a
            // new class, hence fresh terms), so only `observe` and
            // `set_model` can stale a term — between estimator changes
            // this loop matches revisions and touches nothing.
            let Platform { queue_agg, estimator, jobs, .. } = self;
            let revision = estimator.revision();
            queue_agg.revalidate_window(class, covered, Self::MAX_QUEUE_VIEW, revision, |job| {
                let run = jobs.get(job as usize).expect("queued job is live");
                estimator.remaining(&run.job, run.stage, &run.plan.stages)
            });
        }
        if cfg!(debug_assertions) {
            self.check_eq1_oracle(class, covered, inputs.expected_wait_tu, now);
        }
        let ctx = ScalingContext {
            private_has_capacity: inputs.private_has_capacity,
            eq1: self.queue_agg.pricer(class, covered, Self::MAX_QUEUE_VIEW, now),
            queue_depth: self.queue_agg.entries(class) as u32,
            expected_wait_tu: inputs.expected_wait_tu,
            // The provider's live quote: the catalogue price solo, the
            // contention-surged on-demand price under a fleet lease — so
            // Eq. 1 prices public hires at what they would actually cost.
            public_price_per_core_tu: self.provider.quoted_price(self.public_tier),
            stage: class.stage as u32,
            cores_needed: class.cores,
            boot_penalty_tu: boot_penalty().as_tu(),
            expected_task_tu: inputs.expected_task_tu,
            reward: self.reward,
        };
        let (decision, costs) =
            self.cfg.variable.scaling.decide_priced_traced(&ctx, now, &self.tracer);
        let tier = match decision {
            ScalingDecision::HirePrivate => {
                // "Just enough and just on time" (§I): even free private
                // capacity is only committed when the Eq. 1 delay cost of
                // waiting for an existing worker exceeds the (cheap but
                // non-zero) cost of booting and running a new one. This
                // throttle applies to every policy — Table I's algorithms
                // differ in the *public* hire decision.
                if self.cfg.fixed.private_hire_throttle {
                    let avoided = (ctx.expected_wait_tu - ctx.boot_penalty_tu).max(0.0);
                    let dc = ctx.eq1.delay_cost(&self.reward, avoided);
                    let hire_cost = self.cfg.fixed.private_core_cost
                        * class.cores as f64
                        * (ctx.boot_penalty_tu + ctx.expected_task_tu);
                    if dc <= hire_cost {
                        // Overrides the HirePrivate just narrated — the
                        // second event records the veto and its numbers.
                        self.tracer.emit(
                            now,
                            TraceEvent::ScalingDecision {
                                stage: class.stage as u32,
                                cores: class.cores,
                                queued_jobs: ctx.queue_depth,
                                delay_cost: dc,
                                hire_cost,
                                choice: ScalingChoice::ThrottledPrivate,
                            },
                        );
                        if let Some(mm) = &self.meters {
                            mm.metrics
                                .counter_add(mm.choice[ChoiceMeter::ThrottledPrivate as usize], 1);
                            mm.metrics.record(mm.margin_wait, (dc - hire_cost).abs());
                        }
                        return false;
                    }
                    if let Some(mm) = &self.meters {
                        mm.metrics.record(mm.margin_hire, (dc - hire_cost).abs());
                    }
                }
                if let Some(mm) = &self.meters {
                    mm.metrics.counter_add(mm.choice[ChoiceMeter::HirePrivate as usize], 1);
                }
                self.private_tier
            }
            ScalingDecision::HirePublic => {
                if let Some(mm) = &self.meters {
                    mm.metrics.counter_add(mm.choice[ChoiceMeter::HirePublic as usize], 1);
                    if costs.delay_cost.is_finite() {
                        mm.metrics
                            .record(mm.margin_hire, (costs.delay_cost - costs.hire_cost).abs());
                    }
                }
                self.public_tier
            }
            ScalingDecision::Wait => {
                if let Some(mm) = &self.meters {
                    mm.metrics.counter_add(mm.choice[ChoiceMeter::Wait as usize], 1);
                    if costs.delay_cost.is_finite() {
                        mm.metrics
                            .record(mm.margin_wait, (costs.delay_cost - costs.hire_cost).abs());
                    }
                }
                return false;
            }
        };
        match self.provider.hire_on(tier, size, now) {
            Ok((vm_id, ready_at)) => {
                self.booting.inc(class.cores);
                self.pending.increment(class.stage, class.cores);
                self.vm_reserved_for.insert(vm_id.slot(), class);
                sink.schedule(ready_at, Event::VmReady(vm_id));
                true
            }
            Err(_) => false,
        }
    }

    /// Debug-build oracle: reprices Eq. 1 with the naive full-walk queue
    /// view and asserts the incremental aggregates agree — bit-for-bit
    /// for ETT-dependent rewards (same terms, same fold order), to 1e-9
    /// relative for the time-based closed form (`Σd · rpenalty · delay`
    /// sums `d` in a different order than the fused walk). Also
    /// cross-checks the mirrored window and entry counts. Called from
    /// [`Platform::try_grow`] under `cfg!(debug_assertions)` only, so
    /// release builds keep the O(log n) path alone.
    fn check_eq1_oracle(
        &mut self,
        class: TaskClass,
        covered: usize,
        expected_wait_tu: f64,
        now: SimTime,
    ) {
        self.fill_queue_view(class, covered, now);
        let pricer = self.queue_agg.pricer(class, covered, Self::MAX_QUEUE_VIEW, now);
        debug_assert_eq!(
            pricer.window_len(),
            self.scaling_scratch.len(),
            "aggregate window mirrors the deduped queue view"
        );
        debug_assert_eq!(
            self.queue_agg.entries(class),
            self.queues.get(class).map(|q| q.len()).unwrap_or(0),
            "aggregate entry count mirrors the live queue"
        );
        let avoided = (expected_wait_tu - boot_penalty().as_tu()).max(0.0);
        let walk = delay_cost(&self.reward, &self.scaling_scratch, avoided);
        let fast = pricer.delay_cost(&self.reward, avoided);
        if self.reward.depends_on_ett() {
            debug_assert!(
                fast.to_bits() == walk.to_bits(),
                "incremental Eq. 1 drifted from the walk: fast={fast:e} walk={walk:e}"
            );
        } else {
            debug_assert!(
                (fast - walk).abs() <= 1e-9 * walk.abs().max(1.0),
                "time-based Eq. 1 outside tolerance: fast={fast:e} walk={walk:e}"
            );
        }
    }

    /// Fills the scratch buffer with Eq. 1's queue view: distinct jobs
    /// waiting in `class`, less the first `skip` entries already covered
    /// by in-flight hires. Reuses the platform's scratch allocations; the
    /// per-job dedup is a stamp array over the job-id space (bumping the
    /// stamp clears it in O(1) — no per-fill set rebuild).
    pub(super) fn fill_queue_view(&mut self, class: TaskClass, skip: usize, now: SimTime) {
        prof::scope!("queue_view");
        self.scaling_scratch.clear();
        self.scaling_stamp = self.scaling_stamp.wrapping_add(1);
        if self.scaling_stamp == 0 {
            // Stamp wrapped: stale entries could alias the fresh epoch.
            self.scaling_seen.fill(0);
            self.scaling_stamp = 1;
        }
        self.scaling_seen.resize(self.jobs.slot_bound().max(self.scaling_seen.len()), 0);
        if let Some(q) = self.queues.get(class) {
            for entry in q.iter().skip(skip).take(Self::MAX_QUEUE_VIEW) {
                let slot = entry.item.job.slot();
                if self.scaling_seen[slot] == self.scaling_stamp {
                    continue;
                }
                self.scaling_seen[slot] = self.scaling_stamp;
                if let Some(run) = self.jobs.get(slot) {
                    self.scaling_scratch.push(QueuedJobView {
                        size_units: run.job.size_units,
                        ett: self.estimator.ett(&run.job, run.stage, &run.plan.stages, now),
                    });
                }
            }
        }
    }

    /// The scalar half of the scaling context for `class`.
    pub(super) fn scaling_inputs(&self, class: TaskClass, now: SimTime) -> ScalingInputs {
        // Projected wait: the soonest same-shape worker to free up or
        // finish booting; a long sentinel when none exists at all. The
        // busy table caches each worker's shape, so this is one linear
        // scan with no per-entry provider lookup.
        let mut expected_wait =
            self.busy.min_wait_for_cores(class.cores, now).unwrap_or(f64::INFINITY);
        if expected_wait.is_infinite() && self.booting.get(class.cores) > 0 {
            // A worker of this shape is already booting: the wait is one
            // boot penalty. The per-shape counter replaces what used to be
            // a scan over every live VM on each stalled decision.
            expected_wait = boot_penalty().as_tu();
        }
        if expected_wait.is_infinite() {
            expected_wait = 50.0; // nothing of this shape exists: waiting is hopeless
        }

        // Expected run time of the head task.
        let expected_task_tu = self
            .queues
            .get(class)
            .and_then(|q| q.iter().next())
            .and_then(|e| self.jobs.get(e.item.job.slot()))
            .map(|run| {
                let (shards, threads) = run.plan.stage(run.stage);
                self.estimator.eet(run.stage, run.job.size_units, shards, threads)
            })
            .unwrap_or(1.0);

        ScalingInputs {
            private_has_capacity: self.provider.has_capacity(
                self.private_tier,
                InstanceSize::new(class.cores).expect("job classes declare nonzero cores"),
            ),
            expected_wait_tu: expected_wait,
            expected_task_tu,
        }
    }

    /// Picks an idle VM to reshape for a class needing `cores`: a worker
    /// of a shape with more idle machines than queued demand (cannibalise
    /// only surplus shapes), smallest shape first to conserve capacity.
    fn reshape_candidate(&self, cores: u32, now: SimTime) -> Option<VmId> {
        for (slot, &size) in SHAPE_CORES.iter().enumerate() {
            if size == cores || self.idle.len_of_slot(slot) == 0 {
                continue;
            }
            let shape_demand = self.queues.shape_len(slot);
            if self.idle.len_of_slot(slot) > shape_demand {
                // Only cannibalise *stably* idle workers: a shape whose
                // pool just drained will be needed again within a batch
                // gap, and flip-flopping shapes pays the 30 s penalty both
                // ways while destroying pool warmth.
                return self.idle.iter_slot_asc(slot).find(|&vm| {
                    self.provider.vm(vm).map(|v| v.idle_span(now).as_tu() >= 1.0).unwrap_or(false)
                });
            }
        }
        None
    }
}
