//! Dispatch: matching queued shard subtasks to idle same-shape workers
//! and advancing jobs as their subtasks finish.

use super::events::{Event, EventSink};
use super::Platform;
use scan_cloud::vm::VmId;
use scan_kb::ProfileRecord;
use scan_sched::alloc::AllocationPolicy;
use scan_sched::queue::{TaskClass, SHAPE_CORES};
use scan_sim::{prof, SimDuration, SimTime, TraceEvent};
use scan_workload::job::JobId;
use std::borrow::Cow;

impl Platform {
    pub(super) fn take_idle(&mut self, cores: u32) -> Option<VmId> {
        self.idle.take_min(cores)
    }

    /// Matches queued subtasks to idle workers and takes scaling decisions
    /// for stalled classes.
    ///
    /// Walks the dense `(stage, shape)` queue grid directly — the same
    /// ascending `(stage, cores)` order the old keyed iteration had,
    /// without materialising a class list per pass. Nothing inside the
    /// loop enqueues new subtasks, so reading lengths live is equivalent
    /// to snapshotting them up front.
    pub(super) fn dispatch(&mut self, now: SimTime, sink: &mut impl EventSink) {
        prof::scope!("dispatch");
        for stage in 0..self.queues.n_stages() {
            for (slot, &cores) in SHAPE_CORES.iter().enumerate() {
                if self.queues.at(stage, slot).map(|q| q.is_empty()).unwrap_or(true) {
                    continue;
                }
                let class = TaskClass { stage, cores };
                // Serve with idle same-shape workers.
                while self.queues.get(class).map(|q| !q.is_empty()).unwrap_or(false) {
                    let Some(vm_id) = self.take_idle(class.cores) else {
                        break;
                    };
                    self.assign(class, vm_id, now, sink);
                }
                // Stalled: decide whether to grow.
                let queued = self.queues.get(class).map(|q| q.len()).unwrap_or(0);
                if queued == 0 {
                    continue;
                }
                let pending = self.pending.get(class.stage, class.cores);
                let mut deficit = (queued as u32).saturating_sub(pending);
                while deficit > 0 {
                    if !self.try_grow(class, now, sink) {
                        break;
                    }
                    deficit -= 1;
                }
            }
        }
        self.tracer.emit_with(now, || TraceEvent::QueueDepthSampled {
            depth: self.queues.total_len() as u32,
        });
    }

    pub(super) fn on_subtask_done(
        &mut self,
        now: SimTime,
        job: JobId,
        stage: usize,
        vm_id: VmId,
        sink: &mut impl EventSink,
    ) {
        self.tracer.emit(
            now,
            TraceEvent::SubtaskDone { job: job.0 as u64, stage: stage as u32, vm: vm_id.0 as u64 },
        );
        // Free the worker.
        self.busy.remove(vm_id);
        let vm = self.provider.vm_mut(vm_id).expect("done event for unknown VM");
        vm.finish_task(now);
        let cores = vm.size.cores();
        self.idle.insert(cores, vm_id);

        // Advance the job.
        let run = self.jobs.get_mut(job.slot()).expect("done event for unknown job");
        debug_assert_eq!(run.stage, stage, "stage mismatch in completion event");
        run.outstanding -= 1;
        if run.outstanding == 0 {
            // The broker gathers this stage's shards back into one dataset.
            let (shards, _) = run.plan.stage(stage);
            if let Some(mm) = &self.meters {
                mm.metrics.record(mm.merge_fanout, shards as f64);
            }
            run.stage += 1;
            if run.stage == run.plan.n_stages() {
                let run = self.jobs.remove(job.slot()).expect("just present");
                self.live_jobs -= 1;
                self.complete(run, now);
            } else {
                self.enqueue_stage(job, now);
            }
        }
        self.dispatch(now, sink);
    }

    pub(super) fn assign(
        &mut self,
        class: TaskClass,
        vm_id: VmId,
        now: SimTime,
        sink: &mut impl EventSink,
    ) {
        prof::scope!("assign");
        let (subtask, wait) =
            self.queues.pop(class, now).expect("assign called with non-empty queue");
        self.queue_agg.on_pop(class);
        self.estimator.queue_times_mut().observe(class.stage, wait.as_tu());
        if let Some(mm) = &self.meters {
            mm.metrics.record(mm.queue_wait[class.stage], wait.as_tu());
        }

        let run = self.jobs.get(subtask.job.slot()).expect("queued subtask has a live job");
        let (shards, threads) = run.plan.stage(run.stage);
        debug_assert_eq!(threads, class.cores);
        let stage = run.stage;
        let d_gb = self.true_model.units_to_gb(run.job.size_units) / shards as f64;

        // Ground-truth execution time + staging + measurement noise.
        let exec = self.true_model.stages[stage].threaded_time(threads, d_gb);
        let noise = (1.0 + 0.02 * self.exec_noise.standard_normal()).max(0.05);
        let staging = self.broker.staging_time(d_gb);
        let duration = SimDuration::clamped(exec * noise) + staging;

        // Live task log for the knowledge base (sampled, adaptive only —
        // "the log information will be used to further populate the SCAN
        // knowledge-base").
        if self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive {
            self.adaptive_ingest_counter += 1;
            if self.adaptive_ingest_counter.is_multiple_of(32) {
                self.broker.ingest_log(&ProfileRecord {
                    application: Cow::Borrowed("GATK"),
                    stage: (stage + 1) as u32,
                    input_gb: d_gb,
                    threads,
                    ram_gb: 4.0,
                    e_time: exec * noise,
                });
            }
        }

        if let Some(mm) = &self.meters {
            mm.metrics.record(mm.service_time[stage], duration.as_tu());
        }
        let vm = self.provider.vm_mut(vm_id).expect("idle VM exists");
        vm.start_task(now);
        let done_at = now + duration;
        self.busy.insert(vm_id, done_at, class.cores);
        self.tracer.emit(
            now,
            TraceEvent::SubtaskDispatched {
                job: subtask.job.0 as u64,
                stage: stage as u32,
                vm: vm_id.0 as u64,
                cores: class.cores,
                waited_tu: wait.as_tu(),
                busy_tu: duration.as_tu(),
            },
        );
        sink.schedule(
            done_at,
            Event::SubtaskDone { job: subtask.job, stage: stage as u32, vm: vm_id },
        );
    }
}
