//! Admission and planning: batch arrivals, plan selection per job, stage
//! enqueueing, and the periodic replan tick that refreshes models and
//! closes learned-policy epochs.

use super::events::{Event, JobRun, SubtaskRef};
use super::Platform;
use scan_sched::alloc::{AllocationContext, AllocationPolicy};
use scan_sched::plan::ExecutionPlan;
use scan_sched::queue::TaskClass;
use scan_sim::{Calendar, SimDuration, SimTime, TraceEvent};
use scan_workload::gatk::PipelineModel;
use scan_workload::job::{Job, JobId};

impl Platform {
    pub(super) fn on_arrival(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        let batch = self.arrivals.next_batch();
        debug_assert_eq!(batch.at, now);

        // Online arrival-rate estimate (jobs/TU) for the adaptive policy.
        let gap = (now - self.last_arrival_at).as_tu().max(1e-6);
        let inst_rate = batch.jobs.len() as f64 / gap;
        self.observed_rate = 0.05 * inst_rate + 0.95 * self.observed_rate;
        self.last_arrival_at = now;

        for job in batch.jobs {
            self.observed_size = 0.05 * job.size_units + 0.95 * self.observed_size;
            self.admit(job, now);
        }
        cal.schedule(self.arrivals.next_arrival_at(), Event::Arrival);
        self.dispatch(now, cal);
    }

    fn admit(&mut self, job: Job, now: SimTime) {
        self.tracer
            .emit(now, TraceEvent::JobArrived { job: job.id.0 as u64, size_units: job.size_units });
        let plan = match (&self.cfg.forced_plan, &self.learned) {
            (Some(stages), _) => ExecutionPlan::new(stages.clone()),
            (None, Some(planner)) => {
                // Epoch discipline: reuse the epoch's arm.
                let idx = match self.learned_arm {
                    Some(idx) => idx,
                    None => {
                        let (idx, _) = planner.select(&mut self.learned_rng);
                        self.learned_arm = Some(idx);
                        idx
                    }
                };
                planner.arm_plan(idx).clone()
            }
            (None, None) => {
                // The context borrows the broker's model; clone it locally
                // (7 stage factors) so the allocator can borrow mutably.
                let model = self.broker.learned_model().clone();
                let ctx = self.allocation_context(&model);
                self.allocator.plan_for(job.size_units, now, &ctx)
            }
        };
        // The Data Broker registers the dataset and its stage-1 shards.
        let (stage1_shards, _) = plan.stage(0);
        self.broker.register_job(&job, stage1_shards);
        if let Some(mm) = &self.meters {
            mm.metrics.record(mm.split_fanout, stage1_shards as f64);
        }

        let run = JobRun { job, plan, stage: 0, outstanding: 0 };
        let id = run.job.id;
        self.jobs.insert(id.slot(), run);
        self.enqueue_stage(id, now);
    }

    pub(super) fn allocation_context<'a>(&self, model: &'a PipelineModel) -> AllocationContext<'a> {
        let adaptive = self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive;
        let (arrival_rate, mean_job_size, steady_overhead) = if adaptive {
            (self.observed_rate, self.observed_size, self.estimator.queue_times().eqt_tail(0))
        } else {
            (self.cfg.arrival_config().mean_job_rate(), self.cfg.fixed.mean_job_size, 1.0)
        };
        // Plans are priced at overhead-inflated rates: a hired core·TU of
        // work costs more than the raw tier price once boot and idle time
        // are amortised in.
        let f = self.cfg.fixed.overhead_price_factor;
        AllocationContext {
            model,
            reward: self.reward,
            private_price: self.cfg.fixed.private_core_cost * f,
            public_price: self.cfg.variable.public_core_cost * f,
            private_capacity: self.cfg.fixed.private_capacity_cores,
            private_free_now: self.provider.free_cores(self.private_tier) > 0,
            current_overhead_tu: self.estimator.queue_times().eqt_tail(0),
            arrival_rate,
            mean_job_size,
            steady_overhead_tu: steady_overhead,
        }
    }

    pub(super) fn enqueue_stage(&mut self, id: JobId, now: SimTime) {
        let run = self.jobs.get_mut(id.slot()).expect("enqueue_stage for unknown job");
        let (shards, threads) = run.plan.stage(run.stage);
        run.outstanding = shards;
        let stage = run.stage;
        let class = TaskClass { stage, cores: threads };
        for _ in 0..shards {
            self.queues.push(class, SubtaskRef { job: id }, now);
        }
        self.tracer.emit(
            now,
            TraceEvent::JobStageAdvanced {
                job: id.0 as u64,
                stage: stage as u32,
                shards,
                cores: threads,
            },
        );
        self.tracer.emit_with(now, || TraceEvent::QueueDepthSampled {
            depth: self.queues.total_len() as u32,
        });
    }

    pub(super) fn on_replan(&mut self, now: SimTime, cal: &mut Calendar<Event>) {
        if self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive {
            self.broker.refresh_model();
            self.estimator.set_model(self.broker.learned_model().clone());
        }
        // §VI learned policy: close the epoch — score the arm with the
        // epoch's realised profit per completed run, then pick the next
        // epoch's arm.
        if let Some(planner) = &mut self.learned {
            let cost_now = self.provider.total_cost(now);
            let (r0, c0, n0) = self.epoch_start;
            let completed = self.completed - n0;
            if let Some(arm) = self.learned_arm {
                if completed > 0 {
                    let profit = (self.total_reward - r0) - (cost_now - c0);
                    planner.update(arm, profit / completed as f64);
                }
            }
            self.epoch_start = (self.total_reward, cost_now, self.completed);
            let (idx, _) = planner.select(&mut self.learned_rng);
            self.learned_arm = Some(idx);
        }
        self.resize_standing_pools(now, cal);
        cal.schedule(now + SimDuration::new(self.cfg.fixed.replan_period_tu), Event::Replan);
    }
}
