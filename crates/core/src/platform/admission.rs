//! Admission and planning: batch arrivals, plan selection per job, stage
//! enqueueing, and the periodic replan tick that refreshes models and
//! closes learned-policy epochs.

use super::events::{Event, EventSink, JobRun, SubtaskRef};
use super::Platform;
use scan_sched::alloc::{AllocationContext, AllocationPolicy};
use scan_sched::plan::ExecutionPlan;
use scan_sched::queue::TaskClass;
use scan_sim::{SimDuration, SimTime, TraceEvent};
use scan_workload::gatk::PipelineModel;
use scan_workload::job::{Job, JobId};

impl Platform {
    pub(super) fn on_arrival(&mut self, now: SimTime, sink: &mut impl EventSink) {
        let batch = self.arrivals.next_batch();
        debug_assert_eq!(batch.at, now);

        // Online arrival-rate estimate (jobs/TU) for the adaptive policy.
        let gap = (now - self.last_arrival_at).as_tu().max(1e-6);
        let inst_rate = batch.jobs.len() as f64 / gap;
        self.observed_rate = 0.05 * inst_rate + 0.95 * self.observed_rate;
        self.last_arrival_at = now;

        let mut deferred = 0u32;
        for job in batch.jobs {
            if self.arrivals_exhausted() {
                // Capped tenant: the batch tail past the cap never enters
                // the system.
                break;
            }
            self.taken_jobs += 1;
            self.observed_size = 0.05 * job.size_units + 0.95 * self.observed_size;
            if self.should_defer() {
                self.backlog.push(job);
                deferred += 1;
            } else {
                self.admit(job, now);
            }
        }
        if deferred > 0 {
            self.tracer.emit(
                now,
                TraceEvent::AdmissionDeferred {
                    tenant: self.tenant.0 as u32,
                    jobs: deferred,
                    backlog: self.backlog.len() as u32,
                },
            );
        }
        if !self.arrivals_exhausted() {
            sink.schedule(self.arrivals.next_arrival_at(), Event::Arrival);
        }
        self.dispatch(now, sink);
    }

    /// The fair-share admission gate (fleet tenants only): defer new
    /// jobs while the shared private pool is exhausted and this tenant
    /// already holds at least its fair share of it. The gate never
    /// closes on a tenant with nothing in flight — an idle tenant always
    /// makes progress (its jobs can still buy public cores), which is
    /// what keeps every deferred job's eventual admission live.
    fn should_defer(&self) -> bool {
        if !self.fair_share || self.live_jobs == 0 {
            return false;
        }
        let Some(lease) = self.provider.shared() else {
            return false;
        };
        let pool = lease.borrow();
        pool.free_private() == 0 && pool.used_by(self.tenant) >= pool.fair_share()
    }

    /// Re-admits deferred jobs once the fair-share gate has cleared
    /// (called from the idle sweep, right after worker releases have
    /// returned cores to the shared pool).
    pub(super) fn drain_backlog(&mut self, now: SimTime, sink: &mut impl EventSink) {
        if self.backlog.is_empty() {
            return;
        }
        let mut resumed = 0u32;
        while !self.backlog.is_empty() && !self.should_defer() {
            let job = self.backlog.pop().expect("backlog checked non-empty");
            self.admit(job, now);
            resumed += 1;
        }
        if resumed > 0 {
            self.tracer.emit(
                now,
                TraceEvent::AdmissionResumed {
                    tenant: self.tenant.0 as u32,
                    jobs: resumed,
                    backlog: self.backlog.len() as u32,
                },
            );
            self.dispatch(now, sink);
        }
    }

    fn admit(&mut self, job: Job, now: SimTime) {
        self.tracer.emit(
            now,
            TraceEvent::JobArrived {
                job: job.id.0 as u64,
                size_units: job.size_units,
                submitted_tu: job.submitted_at.as_tu(),
            },
        );
        let plan = match (&self.cfg.forced_plan, &self.learned) {
            (Some(stages), _) => ExecutionPlan::new(stages.clone()),
            (None, Some(planner)) => {
                // Epoch discipline: reuse the epoch's arm.
                let idx = match self.learned_arm {
                    Some(idx) => idx,
                    None => {
                        let (idx, _) = planner.select(&mut self.learned_rng);
                        self.learned_arm = Some(idx);
                        idx
                    }
                };
                planner.arm_plan(idx).clone()
            }
            (None, None) => {
                // The context borrows the broker's model; clone it locally
                // (7 stage factors) so the allocator can borrow mutably.
                let model = self.broker.learned_model().clone();
                let ctx = self.allocation_context(&model);
                self.allocator.plan_for(job.size_units, now, &ctx)
            }
        };
        // The Data Broker registers the dataset and its stage-1 shards.
        let (stage1_shards, _) = plan.stage(0);
        self.broker.register_job(&job, stage1_shards);
        if let Some(mm) = &self.meters {
            mm.metrics.record(mm.split_fanout, stage1_shards as f64);
        }

        let run = JobRun { job, plan, stage: 0, outstanding: 0 };
        let id = run.job.id;
        self.jobs.insert(id.slot(), run);
        self.live_jobs += 1;
        self.enqueue_stage(id, now);
    }

    pub(super) fn allocation_context<'a>(&self, model: &'a PipelineModel) -> AllocationContext<'a> {
        let adaptive = self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive;
        let (arrival_rate, mean_job_size, steady_overhead) = if adaptive {
            (self.observed_rate, self.observed_size, self.estimator.queue_times().eqt_tail(0))
        } else {
            (self.cfg.arrival_config().mean_job_rate(), self.cfg.fixed.mean_job_size, 1.0)
        };
        // Plans are priced at overhead-inflated rates: a hired core·TU of
        // work costs more than the raw tier price once boot and idle time
        // are amortised in.
        let f = self.cfg.fixed.overhead_price_factor;
        AllocationContext {
            model,
            reward: self.reward,
            private_price: self.cfg.fixed.private_core_cost * f,
            public_price: self.cfg.variable.public_core_cost * f,
            private_capacity: self.cfg.fixed.private_capacity_cores,
            private_free_now: self.provider.free_cores(self.private_tier) > 0,
            current_overhead_tu: self.estimator.queue_times().eqt_tail(0),
            arrival_rate,
            mean_job_size,
            steady_overhead_tu: steady_overhead,
        }
    }

    pub(super) fn enqueue_stage(&mut self, id: JobId, now: SimTime) {
        let run = self.jobs.get_mut(id.slot()).expect("enqueue_stage for unknown job");
        let (shards, threads) = run.plan.stage(run.stage);
        run.outstanding = shards;
        let stage = run.stage;
        let (d, submitted) = (run.job.size_units, run.job.submitted_at);
        let class = TaskClass { stage, cores: threads };
        for _ in 0..shards {
            self.queues.push(class, SubtaskRef { job: id }, now);
        }
        self.queue_agg.on_enqueue(class, id.0, d, submitted, shards);
        self.tracer.emit(
            now,
            TraceEvent::JobStageAdvanced {
                job: id.0 as u64,
                stage: stage as u32,
                shards,
                cores: threads,
            },
        );
        self.tracer.emit_with(now, || TraceEvent::QueueDepthSampled {
            depth: self.queues.total_len() as u32,
        });
    }

    pub(super) fn on_replan(&mut self, now: SimTime, sink: &mut impl EventSink) {
        if self.cfg.variable.allocation == AllocationPolicy::LongTermAdaptive {
            self.broker.refresh_model();
            self.estimator.set_model(self.broker.learned_model().clone());
        }
        // §VI learned policy: close the epoch — score the arm with the
        // epoch's realised profit per completed run, then pick the next
        // epoch's arm.
        if let Some(planner) = &mut self.learned {
            let cost_now = self.provider.total_cost(now);
            let (r0, c0, n0) = self.epoch_start;
            let completed = self.completed - n0;
            if let Some(arm) = self.learned_arm {
                if completed > 0 {
                    let profit = (self.total_reward - r0) - (cost_now - c0);
                    planner.update(arm, profit / completed as f64);
                }
            }
            self.epoch_start = (self.total_reward, cost_now, self.completed);
            let (idx, _) = planner.select(&mut self.learned_rng);
            self.learned_arm = Some(idx);
        }
        if self.finished() {
            // A drained fleet tenant stops ticking: no pools to resize,
            // and rescheduling would keep the shared calendar alive.
            return;
        }
        self.resize_standing_pools(now, sink);
        sink.schedule(now + SimDuration::new(self.cfg.fixed.replan_period_tu), Event::Replan);
    }
}
